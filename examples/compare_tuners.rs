//! Head-to-head: ROBOTune vs BestConfig, Gunther and Random Search on
//! ConnectedComponents — a miniature of the paper's Figs. 3–4.
//!
//! ```sh
//! cargo run --release --example compare_tuners
//! ```

use robotune::{RoboTune, RoboTuneOptions};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;
use robotune_tuners::{BestConfig, Gunther, RandomSearch, Tuner, TuningSession};
use std::sync::Arc;

const BUDGET: usize = 100;

fn main() {
    let space = Arc::new(spark_space());
    let workload = Workload::ConnectedComponents;
    let dataset = Dataset::D2;
    println!(
        "tuning {:?} D2 with every tuner, budget {BUDGET} evaluations each\n",
        workload
    );

    let mut sessions: Vec<TuningSession> = Vec::new();

    // ROBOTune runs its full pipeline (selection + memoized sampling + BO).
    {
        let mut job = SparkJob::new((*space).clone(), workload, dataset, 1);
        let mut tuner = RoboTune::new(RoboTuneOptions::default());
        let mut rng = rng_from_seed(11);
        let outcome = tuner.tune_workload(&space, "cc", &mut job, BUDGET, &mut rng);
        sessions.push(outcome.session);
    }
    // The baselines search the full 44-dimensional space directly.
    let mut baselines: Vec<Box<dyn Tuner>> = vec![
        Box::new(BestConfig::default()),
        Box::new(Gunther::default()),
        Box::new(RandomSearch::default()),
    ];
    for (i, tuner) in baselines.iter_mut().enumerate() {
        let mut job = SparkJob::new((*space).clone(), workload, dataset, 2 + i as u64);
        let mut rng = rng_from_seed(20 + i as u64);
        sessions.push(tuner.tune(space.as_ref(), &mut job, BUDGET, &mut rng));
    }

    println!(
        "{:<12} {:>10} {:>14} {:>16}",
        "tuner", "best (s)", "search cost", "within 5% after"
    );
    let rs_cost = sessions.last().expect("4 sessions").search_cost();
    for s in &sessions {
        println!(
            "{:<12} {:>10} {:>11.0}s ({:>4.2}x RS) {:>11}",
            s.tuner,
            s.best_time().map(|t| format!("{t:.1}")).unwrap_or_else(|| "—".into()),
            s.search_cost(),
            s.search_cost() / rs_cost,
            s.iterations_to_within(0.05)
                .map(|i| format!("{i} iters"))
                .unwrap_or_else(|| "—".into()),
        );
    }
}
