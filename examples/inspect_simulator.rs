//! Peek inside the Spark simulator: stage breakdowns, bottleneck
//! diagnosis, cache behaviour, and what-if comparisons.
//!
//! ```sh
//! cargo run --release --example inspect_simulator
//! ```
//!
//! Useful when extending the substrate: shows exactly where a
//! configuration's time goes and which resource bounds each stage.

use robotune::parse_conf;
use robotune_space::spark::spark_space;
use robotune_sparksim::{simulate, Cluster, Outcome, SparkParams, Workload};
use robotune_sparksim::workload::ALL_DATASETS;

const TUNED: &str = "\
spark.executor.cores=8
spark.executor.memory=24576m
spark.executor.instances=20
spark.default.parallelism=400
spark.serializer=kryo
";

fn main() {
    let space = spark_space();
    let cluster = Cluster::noleland();
    let config = parse_conf(&space, TUNED).expect("valid conf");
    let params = SparkParams::extract(&space, &config);

    println!("hand-tuned configuration (everything else at space defaults):\n{TUNED}");
    for w in [Workload::PageRank, Workload::KMeans, Workload::TeraSort] {
        for d in ALL_DATASETS {
            let report = simulate(&cluster, &params, w, d);
            match report.outcome {
                Outcome::Completed(total) => {
                    let layout = report.layout.as_ref().expect("launched");
                    println!(
                        "{}-D{}: {total:6.1}s | {} executors x {} slots, cache fit {:.0}%",
                        w.short_name(),
                        d.index() + 1,
                        layout.executors,
                        layout.slots_per_executor,
                        report.cache_fit * 100.0
                    );
                    // Collapse repeated iteration stages into one line.
                    let mut shown = std::collections::HashSet::new();
                    for s in &report.stages {
                        if shown.insert(s.name) {
                            let count =
                                report.stages.iter().filter(|t| t.name == s.name).count();
                            println!(
                                "    {:<18} {:6.1}s x{count:<2} bound by {:?}{}",
                                s.name,
                                s.seconds,
                                s.bottleneck,
                                if s.spilled { " (spilling)" } else { "" }
                            );
                        }
                    }
                }
                other => println!(
                    "{}-D{}: {:?}",
                    w.short_name(),
                    d.index() + 1,
                    other
                ),
            }
        }
        println!();
    }

    // What-if: turn shuffle compression off for TeraSort.
    let mut raw = params.clone();
    raw.shuffle_compress = false;
    let with = simulate(&cluster, &params, Workload::TeraSort, robotune_sparksim::Dataset::D2);
    let without = simulate(&cluster, &raw, Workload::TeraSort, robotune_sparksim::Dataset::D2);
    println!(
        "what-if on TS-D2: shuffle compression {:.1}s -> {:.1}s without it",
        with.elapsed_s(),
        without.elapsed_s()
    );
}
