//! Quickstart: tune PageRank on the simulated NoleLand cluster.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the full ROBOTune pipeline once: Random-Forests parameter
//! selection over 100 generic LHS samples, a 20-point LHS initial design,
//! then GP-Hedge Bayesian optimisation for the rest of a 100-evaluation
//! budget — and prints the best configuration it found as a
//! `spark-defaults.conf` snippet.

use robotune::{encode_to_conf, RoboTune, RoboTuneOptions};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;
use std::sync::Arc;

fn main() {
    let space = Arc::new(spark_space());
    let mut job = SparkJob::new((*space).clone(), Workload::PageRank, Dataset::D1, 2024);
    let mut tuner = RoboTune::new(RoboTuneOptions::default());
    let mut rng = rng_from_seed(42);

    println!("tuning PageRank (D1 = 5M pages) with a budget of 100 evaluations...\n");
    let outcome = tuner.tune_workload(&space, "pagerank", &mut job, 100, &mut rng);

    if let Some(selection) = &outcome.selection {
        println!(
            "parameter selection: {} samples, one-time cost {:.0}s of cluster time",
            selection.samples_used, outcome.selection_cost_s
        );
        println!("selected high-impact parameters:");
        for name in selection.selected_names(&space) {
            println!("  - {name}");
        }
        println!();
    }

    let best = outcome.session.best().expect("at least one run completed");
    println!(
        "best configuration: {:.1}s (found at iteration {} of {}, search cost {:.0}s)",
        best.eval.time_s,
        best.index + 1,
        outcome.session.len(),
        outcome.session.search_cost()
    );
    println!("\n--- tuned spark-defaults.conf ---");
    print!("{}", encode_to_conf(&space, &best.config));
}
