//! Parameter selection on its own: which of the 44 Spark parameters
//! actually matter for a workload? (Paper §3.3 / §5.5.)
//!
//! ```sh
//! cargo run --release --example parameter_selection
//! ```

use robotune::select::{ParameterSelector, SelectorOptions};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;

fn main() {
    let space = spark_space();
    let mut job = SparkJob::new(space.clone(), Workload::TeraSort, Dataset::D2, 99);
    let selector = ParameterSelector::new(SelectorOptions::default());
    let mut rng = rng_from_seed(5);

    println!("evaluating 100 generic LHS samples of TeraSort (30 GB input)...\n");
    let result = selector.select(&space, &mut job, &mut rng);

    println!(
        "forest OOB R² = {:.3}; sampling cost {:.0}s of cluster time (one-time)\n",
        result.oob_r2, result.sampling_cost_s
    );
    println!("grouped MDA importances (drop in OOB R² when permuted):");
    for g in result.importances.iter().take(12) {
        let marker = if g.importance >= selector.options().threshold {
            "SELECTED"
        } else {
            ""
        };
        println!("  {:<42} {:>7.4}  {marker}", g.name, g.importance);
    }
    println!(
        "\nselected set ({} of 44 parameters): {:?}",
        result.selected.len(),
        result.selected_names(&space)
    );
    println!(
        "\nBO will now search a {}-dimensional space instead of 44 dimensions.",
        result.selected.len()
    );
}
