//! Tuning something that isn't Spark: ROBOTune over a custom
//! configuration space and a user-supplied objective function.
//!
//! ```sh
//! cargo run --release --example custom_objective
//! ```
//!
//! §4 of the paper notes the framework is modular: swap the configuration
//! encoder and parameter list and the same selection + BO machinery tunes
//! any system. Here we define an 8-parameter "database server" space with
//! a synthetic latency model and let ROBOTune find its optimum.

use robotune::{RoboTune, RoboTuneOptions};
use robotune_space::{ConfigSpace, Configuration, ParamDef, ParamGroup, ParamKind, ParamValue, Unit};
use robotune_stats::rng_from_seed;
use robotune_tuners::FnObjective;
use std::sync::Arc;

fn db_space() -> ConfigSpace {
    let params = vec![
        ParamDef::new(
            "db.buffer_pool_mb",
            ParamKind::Int { min: 128, max: 65_536, log: true },
            ParamValue::Int(1024),
            Unit::MiB,
        ),
        ParamDef::new(
            "db.worker_threads",
            ParamKind::Int { min: 1, max: 64, log: true },
            ParamValue::Int(8),
            Unit::Count,
        ),
        ParamDef::new(
            "db.wal_sync",
            ParamKind::categorical(["off", "normal", "paranoid"]),
            ParamValue::Cat(1),
            Unit::None,
        ),
        ParamDef::new(
            "db.checkpoint_interval_s",
            ParamKind::Int { min: 5, max: 600, log: false },
            ParamValue::Int(60),
            Unit::Seconds,
        ),
        ParamDef::new(
            "db.compression",
            ParamKind::Bool,
            ParamValue::Bool(false),
            Unit::None,
        ),
        ParamDef::new(
            "db.page_size_kb",
            ParamKind::Int { min: 4, max: 64, log: true },
            ParamValue::Int(8),
            Unit::KiB,
        ),
        ParamDef::new(
            "db.vacuum_aggressiveness",
            ParamKind::Float { min: 0.0, max: 1.0 },
            ParamValue::Float(0.2),
            Unit::Ratio,
        ),
        ParamDef::new(
            "db.statement_cache",
            ParamKind::Int { min: 0, max: 4096, log: false },
            ParamValue::Int(256),
            Unit::Count,
        ),
    ];
    let wal = params.iter().position(|p| p.name == "db.wal_sync").expect("wal");
    let ckpt = params
        .iter()
        .position(|p| p.name == "db.checkpoint_interval_s")
        .expect("ckpt");
    ConfigSpace::new(
        "toy-db",
        params,
        vec![ParamGroup { name: "durability".into(), members: vec![wal, ckpt] }],
    )
}

/// Synthetic p99 latency (ms): buffer pool and threads dominate, WAL mode
/// trades latency for durability, everything else is second-order.
fn latency_ms(c: &Configuration, space: &ConfigSpace) -> f64 {
    let get = |name: &str| c.get_by_name(space, name).expect("known param");
    let pool = get("db.buffer_pool_mb").as_int() as f64;
    let threads = get("db.worker_threads").as_int() as f64;
    let wal = get("db.wal_sync").as_cat() as f64;
    let compress = get("db.compression").as_bool();
    let vacuum = get("db.vacuum_aggressiveness").as_float();

    let misses = 40.0 * (1.0 - (pool / 65_536.0).powf(0.35));
    let contention = 8.0 * ((threads / 16.0).ln().abs());
    let durability = wal * 6.0;
    let compression = if compress { -3.0 } else { 0.0 };
    let vacuum_drag = 5.0 * (vacuum - 0.5).abs();
    20.0 + misses + contention + durability + compression + vacuum_drag
}

fn main() {
    let space = Arc::new(db_space());
    let inner = Arc::clone(&space);
    let mut objective = FnObjective::new(move |c: &Configuration| latency_ms(c, &inner));
    let mut tuner = RoboTune::new(RoboTuneOptions::default());
    let mut rng = rng_from_seed(3);

    println!("tuning an 8-parameter database space (objective: p99 latency, ms)\n");
    let outcome = tuner.tune_workload(&space, "oltp", &mut objective, 80, &mut rng);

    if let Some(sel) = &outcome.selection {
        println!("selected parameters: {:?}\n", sel.selected_names(&space));
    }
    let best = outcome.session.best().expect("completed runs");
    println!("best p99 latency: {:.1} ms\n", best.eval.time_s);
    println!("--- tuned settings ---");
    print!("{}", best.config.render(&space));
    println!(
        "\n(default configuration scores {:.1} ms)",
        latency_ms(&space.default_configuration(), &space)
    );
}
