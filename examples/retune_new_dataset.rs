//! Memoized retuning: the paper's repeated-workload scenario (§3.2, §5.4).
//!
//! ```sh
//! cargo run --release --example retune_new_dataset
//! ```
//!
//! Most analytics workloads recur with different input sizes. ROBOTune
//! keeps two cross-session stores: the parameter-selection cache (the
//! high-impact parameter set is stable across dataset sizes) and the
//! configuration-memoization buffer (the last session's best configs seed
//! the next session's initial design). This example tunes KMeans on D1
//! cold, then retunes on D2 and D3 warm, and shows how much earlier the
//! warm sessions reach a near-optimal configuration.

use robotune::{RoboTune, RoboTuneOptions};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;
use std::sync::Arc;

fn main() {
    let space = Arc::new(spark_space());
    let mut tuner = RoboTune::new(RoboTuneOptions::default());
    let mut rng = rng_from_seed(7);

    println!("KMeans across three dataset sizes with one shared ROBOTune instance\n");
    for (dataset, label) in [
        (Dataset::D1, "200M points"),
        (Dataset::D2, "300M points"),
        (Dataset::D3, "400M points"),
    ] {
        let mut job = SparkJob::new(
            (*space).clone(),
            Workload::KMeans,
            dataset,
            100 + dataset.index() as u64,
        );
        let outcome = tuner.tune_workload(&space, "kmeans", &mut job, 100, &mut rng);
        let within5 = outcome
            .session
            .iterations_to_within(0.05)
            .map(|i| i.to_string())
            .unwrap_or_else(|| "—".into());
        println!(
            "D{} ({label:>11}): {}, best {:.1}s, within 5% of best after {} iterations{}",
            dataset.index() + 1,
            if outcome.warm_start { "warm start" } else { "cold start" },
            outcome.session.best_time().unwrap_or(f64::NAN),
            within5,
            if outcome.selection.is_some() {
                format!(" (paid one-time selection: {:.0}s)", outcome.selection_cost_s)
            } else {
                String::from(" (selection cache hit)")
            }
        );
    }

    let store = tuner.store();
    println!(
        "\nmemoized configurations stored for \"kmeans\": {}",
        store.best_recent("kmeans", usize::MAX).len()
    );
}
