//! Golden-format and structural tests for the Chrome trace-event
//! exporter.
//!
//! The golden fixture is built from hand-written events with fixed
//! timestamps so the rendering is byte-deterministic; the golden lives
//! in `tests/golden/`. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p robotune-obs --test trace_golden`
//! and review the diff. A second test drives the real registry through
//! a [`robotune_obs::ChromeTraceSink`] and checks the structural
//! invariants a Perfetto load depends on: valid JSON, monotone
//! timestamps, balanced `B`/`E` events, and a span set that matches the
//! registry's own report.

use std::collections::BTreeMap;
use std::sync::Arc;

use robotune_obs::event::{Event, EventData};
use robotune_obs::{render_chrome_trace, ChromeTraceSink};
use serde_json::Value;

fn ev(seq: u64, t_us: u64, thread: u64, data: EventData) -> Event {
    Event { seq, t_us, thread, data }
}

fn start(name: &'static str, id: u64, parent: Option<u64>) -> EventData {
    EventData::SpanStart { name, id, parent, trace: 0, link: 0 }
}

fn fixture() -> Vec<Event> {
    vec![
        ev(0, 100, 0, start("session.tune", 1, None)),
        ev(1, 150, 0, start("gp.hyperfit", 2, Some(1))),
        ev(2, 200, 0, EventData::Counter { name: "gp.fit", delta: 1, total: 1 }),
        ev(3, 900, 0, EventData::SpanEnd { name: "gp.hyperfit", id: 2, dur_us: 750 }),
        // Cross-thread handoff: the suggest on thread 1 was caused by
        // the session span on thread 0 — rendered as an s/f flow pair.
        ev(
            4,
            950,
            1,
            EventData::SpanStart { name: "bo.suggest", id: 3, parent: None, trace: 5, link: 1 },
        ),
        ev(5, 980, 1, EventData::Hist { name: "eval.time_s", value: 12.5 }),
        ev(
            6,
            1000,
            1,
            EventData::Mark { name: "phase.switch", data: serde_json::json!({"to": "bo"}) },
        ),
        ev(
            7,
            1100,
            1,
            EventData::Diag {
                name: "diag.bo.observe",
                iter: 3,
                data: serde_json::json!({"best": 41.5}),
            },
        ),
        ev(8, 1200, 1, EventData::SpanEnd { name: "bo.suggest", id: 3, dur_us: 250 }),
        ev(9, 1500, 0, EventData::SpanEnd { name: "session.tune", id: 1, dur_us: 1400 }),
        // Still open at export time: must be excluded from the trace.
        ev(10, 1600, 0, start("unclosed", 4, None)),
    ]
}

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        rendered,
        expected,
        "trace export drifted from golden {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

/// Asserts the Chrome-trace structural invariants and returns the set of
/// span names with their completed-pair counts.
fn assert_well_formed(text: &str) -> BTreeMap<String, u64> {
    let doc: Value = serde_json::from_str(text).expect("trace output must be valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let mut last_ts = 0u64;
    // Per-tid stack of open span names: B pushes, E must pop its own name.
    let mut open: BTreeMap<u64, Vec<String>> = BTreeMap::new();
    let mut spans: BTreeMap<String, u64> = BTreeMap::new();
    // Flow pairing: every `f` (finish) must follow a matching `s`
    // (start) with the same id, and every `s` must be consumed.
    let mut flow_started: BTreeMap<u64, u64> = BTreeMap::new();
    for e in events {
        let ts = e["ts"].as_u64().expect("every event has a u64 ts");
        assert!(ts >= last_ts, "timestamps must be monotone: {ts} after {last_ts}");
        last_ts = ts;
        let name = e["name"].as_str().expect("every event has a name").to_string();
        let tid = e["tid"].as_u64().expect("every event has a tid");
        match e["ph"].as_str().expect("every event has a phase") {
            "B" => open.entry(tid).or_default().push(name),
            "E" => {
                let top = open.entry(tid).or_default().pop();
                assert_eq!(top.as_deref(), Some(name.as_str()), "E must close the innermost B");
                *spans.entry(name).or_insert(0) += 1;
            }
            "s" => {
                let id = e["id"].as_u64().expect("flow s has an id");
                *flow_started.entry(id).or_insert(0) += 1;
            }
            "f" => {
                let id = e["id"].as_u64().expect("flow f has an id");
                assert_eq!(e["bp"].as_str(), Some("e"), "flow f binds to its enclosing slice");
                let pending = flow_started.get_mut(&id);
                let Some(n) = pending.filter(|n| **n > 0) else {
                    panic!("flow f id {id} without a preceding matching s");
                };
                *n -= 1;
                assert!(
                    open.get(&tid).is_some_and(|s| !s.is_empty()),
                    "flow f id {id} must land inside an open span on tid {tid}"
                );
            }
            "C" | "i" => {}
            other => panic!("unexpected phase {other:?}"),
        }
    }
    for (tid, stack) in &open {
        assert!(stack.is_empty(), "unbalanced B events on tid {tid}: {stack:?}");
    }
    for (id, n) in &flow_started {
        assert_eq!(*n, 0, "flow s id {id} never consumed by an f");
    }
    spans
}

#[test]
fn trace_export_matches_golden() {
    check_golden("chrome_trace.json", &render_chrome_trace(&fixture()));
}

#[test]
fn golden_fixture_is_well_formed() {
    let spans = assert_well_formed(&render_chrome_trace(&fixture()));
    let names: Vec<&str> = spans.keys().map(String::as_str).collect();
    assert_eq!(names, ["bo.suggest", "gp.hyperfit", "session.tune"]);
}

#[test]
fn live_capture_is_balanced_and_matches_the_report_span_set() {
    robotune_obs::reset();
    let sink = Arc::new(ChromeTraceSink::default());
    robotune_obs::enable(sink.clone());
    for _ in 0..3 {
        let _outer = robotune_obs::span("trace.outer");
        robotune_obs::incr("trace.count", 1);
        {
            let _inner = robotune_obs::span("trace.inner");
            robotune_obs::record("trace.value", 1.0);
        }
    }
    robotune_obs::disable();

    let spans = assert_well_formed(&sink.render());
    assert_eq!(spans.get("trace.outer"), Some(&3));
    assert_eq!(spans.get("trace.inner"), Some(&3));

    // The exported span set must agree with the obs report's own view
    // of the same run: same names, same counts.
    let snap = robotune_obs::snapshot();
    let report_spans: BTreeMap<String, u64> =
        snap.spans.iter().map(|(n, s)| (n.clone(), s.count)).collect();
    assert_eq!(spans, report_spans);

    // Self-time: outer self excludes inner, totals match counts.
    let st = robotune_obs::self_times(&sink.events());
    let outer = st.iter().find(|s| s.name == "trace.outer").expect("outer present");
    let inner = st.iter().find(|s| s.name == "trace.inner").expect("inner present");
    assert_eq!(outer.count, 3);
    assert!(outer.self_us <= outer.total_us);
    assert!(inner.total_us <= outer.total_us);
}
