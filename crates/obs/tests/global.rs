//! Integration tests against the process-global registry.
//!
//! Every test here toggles the same global switch and sink, so they all
//! serialize on one lock and restore the disabled state before
//! releasing it.

use std::sync::{Mutex, MutexGuard};

use robotune_obs::EventData;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    // A panicking test poisons the lock; the shared state it guards is
    // re-initialized by each test, so poison is safe to ignore.
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn span_nesting_parents_and_monotone_time() {
    let _guard = exclusive();
    let ring = robotune_obs::enable_ring(1024);
    robotune_obs::reset();

    {
        let _outer = robotune_obs::span("test.outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = robotune_obs::span("test.inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    robotune_obs::disable();

    let events = ring.drain();
    let mut outer_id = None;
    let mut inner_parent = None;
    let mut outer_dur = None;
    let mut inner_dur = None;
    for e in &events {
        match e.data {
            EventData::SpanStart { name: "test.outer", id, parent, .. } => {
                outer_id = Some(id);
                assert_eq!(parent, None, "outer span must be a root");
            }
            EventData::SpanStart { name: "test.inner", parent, .. } => {
                inner_parent = Some(parent);
            }
            EventData::SpanEnd { name: "test.outer", dur_us, .. } => outer_dur = Some(dur_us),
            EventData::SpanEnd { name: "test.inner", dur_us, .. } => inner_dur = Some(dur_us),
            _ => {}
        }
    }
    assert_eq!(
        inner_parent.expect("inner span_start seen"),
        outer_id,
        "inner span must record the outer as parent"
    );

    // Timing is monotone: wall-clock durations nest, and timestamps
    // never decrease in sequence order.
    let (outer_dur, inner_dur) = (outer_dur.unwrap(), inner_dur.unwrap());
    assert!(
        outer_dur >= inner_dur,
        "outer ({outer_dur} us) must contain inner ({inner_dur} us)"
    );
    assert!(inner_dur >= 1_000, "inner slept 2 ms, got {inner_dur} us");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must strictly increase");
        assert!(pair[0].t_us <= pair[1].t_us, "t_us must not decrease");
    }

    // The aggregated span histograms saw exactly one closure each.
    let snap = robotune_obs::snapshot();
    assert_eq!(snap.span("test.outer").unwrap().count, 1);
    assert_eq!(snap.span("test.inner").unwrap().count, 1);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = exclusive();
    robotune_obs::enable_null();
    robotune_obs::reset();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 1_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    robotune_obs::incr("test.concurrent", 1);
                }
            });
        }
    });
    robotune_obs::disable();

    let snap = robotune_obs::snapshot();
    assert_eq!(
        snap.counter("test.concurrent"),
        (THREADS * PER_THREAD) as u64
    );
}

#[test]
fn jsonl_sink_round_trips_through_the_parser() {
    let _guard = exclusive();
    let path =
        std::env::temp_dir().join(format!("robotune-obs-roundtrip-{}.jsonl", std::process::id()));
    robotune_obs::enable_jsonl(&path).expect("create trace file");
    robotune_obs::reset();

    {
        let _span = robotune_obs::span("test.work");
        robotune_obs::incr("test.count", 3);
        robotune_obs::record("test.value", 0.125);
        robotune_obs::mark("test.note", || {
            serde_json::json!({"answer": 42, "label": "hi"})
        });
    }
    robotune_obs::disable(); // flushes

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "span_start + counter + hist + mark + span_end");

    let mut kinds = Vec::new();
    let mut last_seq = None;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("every line parses");
        let obj = v.as_object().expect("every line is an object");
        let seq = obj.get("seq").and_then(|s| s.as_u64()).expect("seq");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq must strictly increase across lines");
        }
        last_seq = Some(seq);
        assert!(obj.get("t_us").and_then(|t| t.as_u64()).is_some());
        assert!(obj.get("thread").and_then(|t| t.as_u64()).is_some());
        assert!(obj.get("name").and_then(|n| n.as_str()).is_some());
        kinds.push(obj.get("kind").and_then(|k| k.as_str()).unwrap().to_string());
        match obj["kind"].as_str().unwrap() {
            "span_start" => assert!(obj.contains_key("id") && obj.contains_key("parent")),
            "span_end" => {
                assert!(obj.get("dur_us").and_then(|d| d.as_u64()).is_some());
            }
            "counter" => {
                assert_eq!(obj["delta"].as_u64(), Some(3));
                assert_eq!(obj["total"].as_u64(), Some(3));
            }
            "hist" => assert_eq!(obj["value"].as_f64(), Some(0.125)),
            "mark" => {
                assert_eq!(obj["data"]["answer"].as_i64(), Some(42));
                assert_eq!(obj["data"]["label"].as_str(), Some("hi"));
            }
            other => panic!("unexpected kind {other}"),
        }
    }
    assert_eq!(
        kinds,
        ["span_start", "counter", "hist", "mark", "span_end"]
    );
}

/// Satellite: no registry lock may be held across a sink call. A sink
/// whose emit/flush sleeps while other threads hammer snapshot + incr +
/// flush must still finish promptly and losslessly; with a lock held
/// during sink I/O this test times out (each of the 4000 emits would
/// serialize every incr behind a 50 µs sleep) or deadlocks outright.
#[test]
fn snapshot_incr_flush_hammer_with_a_slow_sink() {
    struct SlowSink {
        emitted: std::sync::atomic::AtomicU64,
        flushes: std::sync::atomic::AtomicU64,
    }
    impl robotune_obs::EventSink for SlowSink {
        fn emit(&self, _event: &robotune_obs::Event) {
            // Simulated serialization/I/O latency.
            std::thread::sleep(std::time::Duration::from_micros(50));
            self.emitted.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn flush(&self) {
            std::thread::sleep(std::time::Duration::from_micros(200));
            self.flushes.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    let _guard = exclusive();
    let sink = std::sync::Arc::new(SlowSink {
        emitted: std::sync::atomic::AtomicU64::new(0),
        flushes: std::sync::atomic::AtomicU64::new(0),
    });
    robotune_obs::enable(sink.clone());
    robotune_obs::reset();

    const WRITERS: usize = 4;
    const PER_WRITER: usize = 500;
    let start = std::time::Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..WRITERS {
            scope.spawn(|| {
                for i in 0..PER_WRITER {
                    robotune_obs::incr("test.hammer", 1);
                    robotune_obs::record("test.hammer_v", i as f64);
                }
            });
        }
        // Concurrent readers and flushers.
        for _ in 0..2 {
            scope.spawn(|| {
                for _ in 0..200 {
                    let snap = robotune_obs::snapshot();
                    assert!(snap.counter("test.hammer") <= (WRITERS * PER_WRITER) as u64);
                    robotune_obs::flush();
                }
            });
        }
    });
    robotune_obs::disable();

    let snap = robotune_obs::snapshot();
    assert_eq!(snap.counter("test.hammer"), (WRITERS * PER_WRITER) as u64);
    assert_eq!(
        snap.hist("test.hammer_v").map(|h| h.count),
        Some((WRITERS * PER_WRITER) as u64)
    );
    assert_eq!(
        sink.emitted.load(std::sync::atomic::Ordering::Relaxed),
        2 * (WRITERS * PER_WRITER) as u64,
        "every event reached the sink exactly once"
    );
    assert!(sink.flushes.load(std::sync::atomic::Ordering::Relaxed) >= 400);
    // 4000 slow emits at 50 µs across 4 writers ≈ 50 ms serialized per
    // writer; far under this bound unless emits serialize *globally*
    // behind a registry lock (≥ 200 ms) plus flush stalls.
    assert!(
        start.elapsed() < std::time::Duration::from_secs(20),
        "hammer took {:?}; is a registry lock held across sink I/O?",
        start.elapsed()
    );
}

/// Tentpole: events attribute to the innermost entered scope with no
/// changes at the instrumentation call sites, scopes nest, and the
/// global registry still sees everything.
#[test]
fn scoped_attribution_is_per_thread_and_nested() {
    let _guard = exclusive();
    robotune_obs::enable_null();
    robotune_obs::reset();

    let outer = robotune_obs::Scope::new(robotune_obs::ScopeLabels {
        session_id: "s-outer".into(),
        workload: "join".into(),
    });
    let inner = robotune_obs::Scope::new(robotune_obs::ScopeLabels {
        session_id: "s-inner".into(),
        workload: "sort".into(),
    });

    {
        let _o = outer.enter();
        robotune_obs::incr("test.scoped", 1);
        robotune_obs::record("test.scoped_v", 2.0);
        {
            let _i = inner.enter();
            // Innermost wins: these go to `inner`, not `outer`.
            robotune_obs::incr("test.scoped", 10);
        }
        robotune_obs::incr("test.scoped", 100);
    }
    // Outside any scope: global only.
    robotune_obs::incr("test.scoped", 1000);

    // A different thread entering a scope is independent.
    std::thread::scope(|s| {
        s.spawn(|| {
            let _o = outer.enter();
            robotune_obs::incr("test.scoped", 5);
        });
    });
    robotune_obs::disable();

    assert_eq!(outer.snapshot().counter("test.scoped"), 1 + 100 + 5);
    assert_eq!(outer.snapshot().hist("test.scoped_v").map(|h| h.count), Some(1));
    assert_eq!(inner.snapshot().counter("test.scoped"), 10);
    assert_eq!(robotune_obs::snapshot().counter("test.scoped"), 1116);
    assert_eq!(outer.labels().session_id, "s-outer");

    // The scope ring captured the attributed events, oldest first.
    let events: Vec<_> = outer
        .recent_events()
        .iter()
        .filter(|e| e.name() == "test.scoped")
        .map(|e| match e.data {
            EventData::Counter { delta, .. } => delta,
            _ => 0,
        })
        .collect();
    assert_eq!(events, [1, 100, 5]);
    assert_eq!(outer.dropped_events(), 0);
}

/// Ring overflow surfaces in the global snapshot as obs.dropped_events.
#[test]
fn ring_sink_overflow_counts_dropped_events_in_snapshot() {
    let _guard = exclusive();
    let ring = robotune_obs::enable_ring(4);
    robotune_obs::reset();
    for _ in 0..10 {
        robotune_obs::incr("test.overflow", 1);
    }
    robotune_obs::disable();
    assert_eq!(ring.dropped(), 6);
    let snap = robotune_obs::snapshot();
    assert_eq!(snap.counter("obs.dropped_events"), 6);
    assert_eq!(snap.counter("test.overflow"), 10, "aggregates are unaffected");
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = exclusive();
    robotune_obs::disable();
    robotune_obs::reset();

    let _span = robotune_obs::span("test.ghost");
    robotune_obs::incr("test.ghost_count", 7);
    robotune_obs::record("test.ghost_value", 1.0);
    robotune_obs::mark("test.ghost_mark", || unreachable!("must not run"));

    let snap = robotune_obs::snapshot();
    assert_eq!(snap.counter("test.ghost_count"), 0);
    assert!(snap.hist("test.ghost_value").is_none());
}
