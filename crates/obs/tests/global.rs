//! Integration tests against the process-global registry.
//!
//! Every test here toggles the same global switch and sink, so they all
//! serialize on one lock and restore the disabled state before
//! releasing it.

use std::sync::{Mutex, MutexGuard};

use robotune_obs::EventData;

static TEST_LOCK: Mutex<()> = Mutex::new(());

fn exclusive() -> MutexGuard<'static, ()> {
    // A panicking test poisons the lock; the shared state it guards is
    // re-initialized by each test, so poison is safe to ignore.
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn span_nesting_parents_and_monotone_time() {
    let _guard = exclusive();
    let ring = robotune_obs::enable_ring(1024);
    robotune_obs::reset();

    {
        let _outer = robotune_obs::span("test.outer");
        std::thread::sleep(std::time::Duration::from_millis(2));
        {
            let _inner = robotune_obs::span("test.inner");
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
    }
    robotune_obs::disable();

    let events = ring.drain();
    let mut outer_id = None;
    let mut inner_parent = None;
    let mut outer_dur = None;
    let mut inner_dur = None;
    for e in &events {
        match e.data {
            EventData::SpanStart { name: "test.outer", id, parent } => {
                outer_id = Some(id);
                assert_eq!(parent, None, "outer span must be a root");
            }
            EventData::SpanStart { name: "test.inner", parent, .. } => {
                inner_parent = Some(parent);
            }
            EventData::SpanEnd { name: "test.outer", dur_us, .. } => outer_dur = Some(dur_us),
            EventData::SpanEnd { name: "test.inner", dur_us, .. } => inner_dur = Some(dur_us),
            _ => {}
        }
    }
    assert_eq!(
        inner_parent.expect("inner span_start seen"),
        outer_id,
        "inner span must record the outer as parent"
    );

    // Timing is monotone: wall-clock durations nest, and timestamps
    // never decrease in sequence order.
    let (outer_dur, inner_dur) = (outer_dur.unwrap(), inner_dur.unwrap());
    assert!(
        outer_dur >= inner_dur,
        "outer ({outer_dur} us) must contain inner ({inner_dur} us)"
    );
    assert!(inner_dur >= 1_000, "inner slept 2 ms, got {inner_dur} us");
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "seq must strictly increase");
        assert!(pair[0].t_us <= pair[1].t_us, "t_us must not decrease");
    }

    // The aggregated span histograms saw exactly one closure each.
    let snap = robotune_obs::snapshot();
    assert_eq!(snap.span("test.outer").unwrap().count, 1);
    assert_eq!(snap.span("test.inner").unwrap().count, 1);
}

#[test]
fn concurrent_counter_increments_are_lossless() {
    let _guard = exclusive();
    robotune_obs::enable_null();
    robotune_obs::reset();

    const THREADS: usize = 8;
    const PER_THREAD: usize = 1_000;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..PER_THREAD {
                    robotune_obs::incr("test.concurrent", 1);
                }
            });
        }
    });
    robotune_obs::disable();

    let snap = robotune_obs::snapshot();
    assert_eq!(
        snap.counter("test.concurrent"),
        (THREADS * PER_THREAD) as u64
    );
}

#[test]
fn jsonl_sink_round_trips_through_the_parser() {
    let _guard = exclusive();
    let path =
        std::env::temp_dir().join(format!("robotune-obs-roundtrip-{}.jsonl", std::process::id()));
    robotune_obs::enable_jsonl(&path).expect("create trace file");
    robotune_obs::reset();

    {
        let _span = robotune_obs::span("test.work");
        robotune_obs::incr("test.count", 3);
        robotune_obs::record("test.value", 0.125);
        robotune_obs::mark("test.note", || {
            serde_json::json!({"answer": 42, "label": "hi"})
        });
    }
    robotune_obs::disable(); // flushes

    let text = std::fs::read_to_string(&path).expect("read trace back");
    std::fs::remove_file(&path).ok();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 5, "span_start + counter + hist + mark + span_end");

    let mut kinds = Vec::new();
    let mut last_seq = None;
    for line in &lines {
        let v: serde_json::Value = serde_json::from_str(line).expect("every line parses");
        let obj = v.as_object().expect("every line is an object");
        let seq = obj.get("seq").and_then(|s| s.as_u64()).expect("seq");
        if let Some(prev) = last_seq {
            assert!(seq > prev, "seq must strictly increase across lines");
        }
        last_seq = Some(seq);
        assert!(obj.get("t_us").and_then(|t| t.as_u64()).is_some());
        assert!(obj.get("thread").and_then(|t| t.as_u64()).is_some());
        assert!(obj.get("name").and_then(|n| n.as_str()).is_some());
        kinds.push(obj.get("kind").and_then(|k| k.as_str()).unwrap().to_string());
        match obj["kind"].as_str().unwrap() {
            "span_start" => assert!(obj.contains_key("id") && obj.contains_key("parent")),
            "span_end" => {
                assert!(obj.get("dur_us").and_then(|d| d.as_u64()).is_some());
            }
            "counter" => {
                assert_eq!(obj["delta"].as_u64(), Some(3));
                assert_eq!(obj["total"].as_u64(), Some(3));
            }
            "hist" => assert_eq!(obj["value"].as_f64(), Some(0.125)),
            "mark" => {
                assert_eq!(obj["data"]["answer"].as_i64(), Some(42));
                assert_eq!(obj["data"]["label"].as_str(), Some("hi"));
            }
            other => panic!("unexpected kind {other}"),
        }
    }
    assert_eq!(
        kinds,
        ["span_start", "counter", "hist", "mark", "span_end"]
    );
}

#[test]
fn disabled_instrumentation_records_nothing() {
    let _guard = exclusive();
    robotune_obs::disable();
    robotune_obs::reset();

    let _span = robotune_obs::span("test.ghost");
    robotune_obs::incr("test.ghost_count", 7);
    robotune_obs::record("test.ghost_value", 1.0);
    robotune_obs::mark("test.ghost_mark", || unreachable!("must not run"));

    let snap = robotune_obs::snapshot();
    assert_eq!(snap.counter("test.ghost_count"), 0);
    assert!(snap.hist("test.ghost_value").is_none());
}
