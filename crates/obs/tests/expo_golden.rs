//! Golden-format tests for the Prometheus text exposition.
//!
//! The snapshot is constructed by hand from fixed values so the
//! rendering is byte-deterministic; the goldens live in
//! `tests/golden/`. Regenerate with
//! `UPDATE_GOLDEN=1 cargo test -p robotune-obs --test expo_golden`
//! and review the diff.

use robotune_obs::histogram::Histogram;
use robotune_obs::{render_prometheus, render_prometheus_labeled, Snapshot};

fn fixture() -> Snapshot {
    let mut hist = Histogram::new();
    for v in [0.25, 0.5, 1.0, 2.0, 4.0] {
        hist.record(v);
    }
    let mut span = Histogram::new();
    for v in [100.0, 200.0, 700.0] {
        span.record(v);
    }
    Snapshot {
        counters: vec![
            ("bo.suggest".into(), 12),
            ("gp.fit".into(), 7),
            ("obs.dropped_events".into(), 3),
            ("service.requests".into(), 40),
        ],
        hists: vec![("eval.time_s".into(), hist.summary())],
        spans: vec![("gp.hyperfit".into(), span.summary())],
    }
}

fn check_golden(name: &str, rendered: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}; run with UPDATE_GOLDEN=1", path.display()));
    assert_eq!(
        rendered,
        expected,
        "exposition drifted from golden {}; if intentional, regenerate with UPDATE_GOLDEN=1",
        path.display()
    );
}

#[test]
fn exposition_matches_golden() {
    check_golden("exposition.txt", &render_prometheus(&fixture()));
}

#[test]
fn labeled_exposition_matches_golden() {
    check_golden(
        "exposition_labeled.txt",
        &render_prometheus_labeled(
            &fixture(),
            &[("session", "s-1a2b"), ("workload", "join \"heavy\"\n")],
        ),
    );
}

#[test]
fn exposition_lines_are_well_formed() {
    // Structural sanity independent of the golden bytes: every
    // non-comment line is `name{labels} value` with a parseable value.
    let text = render_prometheus_labeled(&fixture(), &[("session", "s-1")]);
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(line.starts_with("# TYPE robotune_"), "{line}");
            continue;
        }
        let (name_part, value) = line.rsplit_once(' ').expect("space-separated sample");
        assert!(name_part.starts_with("robotune_"), "{line}");
        assert!(
            value == "NaN" || value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in {line}"
        );
        assert!(name_part.contains("session=\"s-1\""), "label missing in {line}");
    }
}
