//! Rolling-window SLO tracking: exact percentiles over the last N
//! observations.
//!
//! Unlike the streaming P² estimators in [`crate::histogram`] (constant
//! memory over an unbounded stream), a [`RollingWindow`] keeps the last
//! `capacity` samples verbatim, so its quantiles are *exact* for the
//! window and respond immediately when behaviour shifts — exactly what
//! a `health` endpoint wants ("suggest p99 over the last 256
//! requests"), at a bounded, small memory cost.

use std::collections::VecDeque;

/// Fixed-capacity sliding window of `f64` samples with exact quantiles.
#[derive(Debug, Clone)]
pub struct RollingWindow {
    capacity: usize,
    samples: VecDeque<f64>,
    /// Total samples ever pushed (including ones that have slid out).
    total: u64,
}

impl RollingWindow {
    /// Creates a window holding the last `capacity` samples (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RollingWindow {
            capacity,
            samples: VecDeque::with_capacity(capacity),
            total: 0,
        }
    }

    /// Pushes one sample, evicting the oldest when full. NaN is
    /// ignored (it would poison every quantile).
    pub fn push(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(value);
        self.total += 1;
    }

    /// Samples currently in the window.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The window's capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total samples ever pushed (monotone; not bounded by capacity).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Exact quantile `p` in `[0, 1]` over the current window
    /// (nearest-rank on the sorted samples; `None` when empty).
    pub fn quantile(&self, p: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = self.samples.iter().copied().collect();
        sorted.sort_unstable_by(f64::total_cmp);
        let p = p.clamp(0.0, 1.0);
        let rank = (p * (sorted.len() as f64 - 1.0)).round() as usize;
        Some(sorted[rank.min(sorted.len() - 1)])
    }

    /// Median over the window.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// 99th percentile over the window.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_slides_and_quantiles_are_exact() {
        let mut w = RollingWindow::new(4);
        assert!(w.quantile(0.5).is_none());
        for v in [1.0, 2.0, 3.0, 4.0] {
            w.push(v);
        }
        assert_eq!(w.p50(), Some(3.0)); // nearest-rank on [1,2,3,4]
        assert_eq!(w.quantile(0.0), Some(1.0));
        assert_eq!(w.quantile(1.0), Some(4.0));
        // Slide: 1.0 falls out, 100.0 enters.
        w.push(100.0);
        assert_eq!(w.len(), 4);
        assert_eq!(w.total(), 5);
        assert_eq!(w.quantile(1.0), Some(100.0));
        assert_eq!(w.quantile(0.0), Some(2.0), "oldest sample evicted");
    }

    #[test]
    fn nan_is_ignored() {
        let mut w = RollingWindow::new(8);
        w.push(f64::NAN);
        assert!(w.is_empty());
        w.push(1.0);
        w.push(f64::NAN);
        assert_eq!(w.len(), 1);
        assert_eq!(w.p99(), Some(1.0));
    }

    #[test]
    fn shift_detection_beats_unbounded_stream() {
        // 1000 fast samples then 256 slow ones: the window's p50 tracks
        // the new regime completely.
        let mut w = RollingWindow::new(256);
        for _ in 0..1000 {
            w.push(1.0);
        }
        for _ in 0..256 {
            w.push(50.0);
        }
        assert_eq!(w.p50(), Some(50.0));
    }
}
