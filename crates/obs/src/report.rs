//! Per-run summary report rendered from a metrics [`Snapshot`].

use crate::histogram::HistSummary;
use crate::registry::Snapshot;

/// Aggregated per-run summary; `render` produces an aligned text table
/// with one section each for spans, counters, and histograms.
#[derive(Debug, Clone)]
pub struct Report {
    snapshot: Snapshot,
}

fn fmt_us(us: f64) -> String {
    if !us.is_finite() {
        "-".to_string()
    } else if us < 1_000.0 {
        format!("{us:.0}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1e3)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

fn fmt_val(v: f64) -> String {
    if !v.is_finite() {
        "-".to_string()
    } else if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1e6 || v.abs() < 1e-3 {
        format!("{v:.2e}")
    } else if v == v.trunc() {
        format!("{v:.0}")
    } else {
        format!("{v:.3}")
    }
}

fn render_table(title: &str, header: &[&str], rows: &[Vec<String>], out: &mut String) {
    if rows.is_empty() {
        return;
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    out.push_str(title);
    out.push('\n');
    let mut line = String::new();
    for (i, h) in header.iter().enumerate() {
        if i == 0 {
            line.push_str(&format!("  {h:<w$}", w = widths[i]));
        } else {
            line.push_str(&format!("  {h:>w$}", w = widths[i]));
        }
    }
    out.push_str(line.trim_end());
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (i, cell) in row.iter().enumerate().take(cols) {
            if i == 0 {
                line.push_str(&format!("  {cell:<w$}", w = widths[i]));
            } else {
                line.push_str(&format!("  {cell:>w$}", w = widths[i]));
            }
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out.push('\n');
}

fn span_row(name: &str, s: &HistSummary) -> Vec<String> {
    vec![
        name.to_string(),
        s.count.to_string(),
        fmt_us(s.sum),
        fmt_us(s.mean),
        fmt_us(s.p50),
        fmt_us(s.p90),
        fmt_us(s.p99),
        fmt_us(s.max),
    ]
}

fn hist_row(name: &str, s: &HistSummary) -> Vec<String> {
    vec![
        name.to_string(),
        s.count.to_string(),
        fmt_val(s.mean),
        fmt_val(s.min),
        fmt_val(s.p50),
        fmt_val(s.p90),
        fmt_val(s.p99),
        fmt_val(s.max),
    ]
}

impl Report {
    /// Builds a report from a snapshot.
    pub fn from_snapshot(snapshot: Snapshot) -> Self {
        Report { snapshot }
    }

    /// Builds a report from the global registry's current state.
    pub fn from_global() -> Self {
        Report::from_snapshot(crate::registry::snapshot())
    }

    /// Whether the underlying snapshot has no data at all.
    pub fn is_empty(&self) -> bool {
        self.snapshot.counters.is_empty()
            && self.snapshot.hists.is_empty()
            && self.snapshot.spans.is_empty()
    }

    /// The underlying snapshot.
    pub fn snapshot(&self) -> &Snapshot {
        &self.snapshot
    }

    /// Renders the summary table.
    pub fn render(&self) -> String {
        let mut out = String::from("== observability report ==\n\n");
        if self.is_empty() {
            out.push_str("(no metrics recorded; was tracing enabled?)\n");
            return out;
        }
        let span_rows: Vec<Vec<String>> = self
            .snapshot
            .spans
            .iter()
            .map(|(n, s)| span_row(n, s))
            .collect();
        render_table(
            "spans (wall clock)",
            &["name", "count", "total", "mean", "p50", "p90", "p99", "max"],
            &span_rows,
            &mut out,
        );
        let counter_rows: Vec<Vec<String>> = self
            .snapshot
            .counters
            .iter()
            .map(|(n, v)| vec![n.clone(), v.to_string()])
            .collect();
        render_table("counters", &["name", "total"], &counter_rows, &mut out);
        let hist_rows: Vec<Vec<String>> = self
            .snapshot
            .hists
            .iter()
            .map(|(n, s)| hist_row(n, s))
            .collect();
        render_table(
            "histograms",
            &["name", "count", "mean", "min", "p50", "p90", "p99", "max"],
            &hist_rows,
            &mut out,
        );
        let dropped = self.snapshot.counter("obs.dropped_events");
        if dropped > 0 {
            out.push_str(&format!(
                "WARNING: {dropped} trace event(s) dropped (ring overflow); \
                 counters/histograms above are complete, the event stream is not.\n"
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn renders_all_sections() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        let snap = Snapshot {
            counters: vec![("memo.hit".into(), 4), ("threshold.kill".into(), 2)],
            hists: vec![("sim.stage_s".into(), h.summary())],
            spans: vec![("gp.fit".into(), {
                let mut s = Histogram::new();
                s.record(1500.0);
                s.record(2500.0);
                s.summary()
            })],
        };
        let text = Report::from_snapshot(snap).render();
        assert!(text.contains("spans (wall clock)"));
        assert!(text.contains("gp.fit"));
        assert!(text.contains("counters"));
        assert!(text.contains("memo.hit"));
        assert!(text.contains("histograms"));
        assert!(text.contains("sim.stage_s"));
    }

    #[test]
    fn dropped_events_surface_as_a_warning_footer() {
        let snap = Snapshot {
            counters: vec![("obs.dropped_events".into(), 17)],
            ..Snapshot::default()
        };
        let text = Report::from_snapshot(snap).render();
        assert!(text.contains("17 trace event(s) dropped"), "{text}");
        let clean = Snapshot {
            counters: vec![("memo.hit".into(), 1)],
            ..Snapshot::default()
        };
        assert!(!Report::from_snapshot(clean).render().contains("dropped"));
    }

    #[test]
    fn empty_report_says_so() {
        let text = Report::from_snapshot(Snapshot::default()).render();
        assert!(text.contains("no metrics recorded"));
    }
}
