//! Telemetry scopes: per-session attribution of the global event
//! stream.
//!
//! A [`Scope`] is a handle carrying labels (session id, workload). When
//! a thread [`enter`](Scope::enter)s a scope, every event that thread
//! emits through the global registry is *also* applied to the scope's
//! own aggregates and appended to its bounded event ring — the existing
//! `obs::incr`/`record`/`span` call sites in gp/bo/core need no
//! changes. Scopes nest; attribution goes to the innermost scope on the
//! current thread. The same `Scope` handle may be entered on several
//! threads at once (e.g. a service worker running the session plus the
//! connection thread handling its requests).
//!
//! Attribution happens inside the registry's emit path, so it is active
//! only while tracing is enabled: with tracing disabled the
//! instrumented code pays exactly the same single relaxed atomic load
//! as before, and trajectories are bit-identical with scopes on or off
//! (telemetry never touches RNG or evaluation state).
//!
//! The event ring doubles as a flight recorder: on failure the last
//! `capacity` events (default 256) can be dumped for a post-mortem.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::event::Event;
use crate::registry::{Aggregates, Snapshot};

/// Default bound on a scope's recent-event ring.
pub const DEFAULT_RING_CAPACITY: usize = 256;

/// Identifying labels attached to a [`Scope`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScopeLabels {
    /// The owning session's id, if any.
    pub session_id: String,
    /// The workload the session is tuning, if known.
    pub workload: String,
}

#[derive(Debug)]
pub(crate) struct ScopeInner {
    labels: ScopeLabels,
    agg: Mutex<Aggregates>,
    ring: Mutex<VecDeque<Event>>,
    capacity: usize,
    dropped: AtomicU64,
}

impl ScopeInner {
    fn apply(&self, event: &Event) {
        self.agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .apply(&event.data);
        let mut ring = self.ring.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if ring.len() == self.capacity {
            ring.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event.clone());
    }
}

/// A labelled telemetry scope. Cheap to clone (shared handle).
#[derive(Debug, Clone)]
pub struct Scope {
    inner: Arc<ScopeInner>,
}

impl Scope {
    /// Creates a scope with the default ring capacity.
    pub fn new(labels: ScopeLabels) -> Self {
        Scope::with_capacity(labels, DEFAULT_RING_CAPACITY)
    }

    /// Creates a scope keeping up to `capacity` recent events
    /// (minimum 1).
    pub fn with_capacity(labels: ScopeLabels, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Scope {
            inner: Arc::new(ScopeInner {
                labels,
                agg: Mutex::new(Aggregates::default()),
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                capacity,
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The scope's labels.
    pub fn labels(&self) -> &ScopeLabels {
        &self.inner.labels
    }

    /// Installs this scope as the innermost scope on the current thread
    /// until the returned guard drops.
    pub fn enter(&self) -> ScopeGuard {
        CURRENT.with(|stack| stack.borrow_mut().push(self.inner.clone()));
        ScopeGuard {
            inner: self.inner.clone(),
            _not_send: PhantomData,
        }
    }

    /// Copies out the metrics attributed to this scope so far.
    pub fn snapshot(&self) -> Snapshot {
        self.inner
            .agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .to_snapshot()
    }

    /// The most recent events attributed to this scope, oldest first
    /// (bounded by the ring capacity; the ring is left intact).
    pub fn recent_events(&self) -> Vec<Event> {
        self.inner
            .ring
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Events evicted from the ring because it was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }
}

thread_local! {
    static CURRENT: RefCell<Vec<Arc<ScopeInner>>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`Scope::enter`]; removes the scope from the
/// current thread's stack on drop. Deliberately `!Send`: a guard must
/// drop on the thread that entered the scope.
#[derive(Debug)]
pub struct ScopeGuard {
    inner: Arc<ScopeInner>,
    _not_send: PhantomData<*const ()>,
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Remove the innermost matching entry; guards normally drop
            // in LIFO order but out-of-order drops stay correct.
            if let Some(i) = stack.iter().rposition(|s| Arc::ptr_eq(s, &self.inner)) {
                stack.remove(i);
            }
        });
    }
}

/// Applies `event` to the innermost scope on the current thread, if
/// any. Called from the registry's emit path, i.e. only while tracing
/// is enabled.
pub(crate) fn attribute(event: &Event) {
    CURRENT.with(|stack| {
        if let Some(scope) = stack.borrow().last() {
            scope.apply(event);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn guard_restores_stack_on_nested_and_out_of_order_drop() {
        let a = Scope::new(ScopeLabels::default());
        let b = Scope::new(ScopeLabels::default());
        let ga = a.enter();
        let gb = b.enter();
        drop(ga); // out of order
        CURRENT.with(|s| assert_eq!(s.borrow().len(), 1));
        drop(gb);
        CURRENT.with(|s| assert!(s.borrow().is_empty()));
    }

    #[test]
    fn ring_bounds_and_counts_drops() {
        let scope = Scope::with_capacity(ScopeLabels::default(), 2);
        for seq in 0..5 {
            scope.inner.apply(&Event {
                seq,
                t_us: 0,
                thread: 0,
                data: crate::event::EventData::Counter { name: "x", delta: 1, total: seq + 1 },
            });
        }
        let events = scope.recent_events();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3);
        assert_eq!(scope.dropped_events(), 3);
        assert_eq!(scope.snapshot().counter("x"), 5);
    }
}
