//! Event sinks: where trace events go once emitted.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::event::Event;

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// never panic: sinks run inside instrumented hot paths.
pub trait EventSink: Send + Sync {
    /// Handles one event.
    fn emit(&self, event: &Event);

    /// Flushes buffered output, if any.
    fn flush(&self) {}

    /// Number of events this sink has discarded (e.g. ring overflow).
    /// Surfaced by [`crate::snapshot`] as the `obs.dropped_events`
    /// counter so overflow is never silent.
    fn dropped_events(&self) -> u64 {
        0
    }
}

/// Discards everything. With this sink installed the only per-event
/// costs are the registry's aggregation (a map update under a mutex).
#[derive(Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &Event) {}
}

/// Keeps the most recent `capacity` events in memory; older events are
/// dropped (and counted) once the buffer is full.
#[derive(Debug)]
pub struct RingBufferSink {
    capacity: usize,
    buf: Mutex<VecDeque<Event>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// Creates a ring holding up to `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingBufferSink {
            capacity,
            buf: Mutex::new(VecDeque::with_capacity(capacity)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<Event> {
        self.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner).drain(..).collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl EventSink for RingBufferSink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() == self.capacity {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Writes one compact JSON object per line to a file (the `--trace`
/// output format).
pub struct JsonlSink {
    writer: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Creates (truncating) the file at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> std::io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(BufWriter::new(file)),
        })
    }
}

impl EventSink for JsonlSink {
    fn emit(&self, event: &Event) {
        let line = serde_json::to_string(&event.to_json()).unwrap_or_default();
        let mut w = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Trace output is best-effort: a full disk must not kill the run.
        let _ = writeln!(w, "{line}");
    }

    fn flush(&self) {
        let _ = self.writer.lock().unwrap_or_else(std::sync::PoisonError::into_inner).flush();
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Fans every event out to several sinks — how `--trace` (JSONL stream)
/// and `--profile` (Chrome trace buffer) coexist on one run.
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn EventSink>>,
}

impl TeeSink {
    /// Creates a tee over `sinks`; events are delivered in order.
    pub fn new(sinks: Vec<std::sync::Arc<dyn EventSink>>) -> Self {
        TeeSink { sinks }
    }
}

impl EventSink for TeeSink {
    fn emit(&self, event: &Event) {
        for s in &self.sinks {
            s.emit(event);
        }
    }

    fn flush(&self) {
        for s in &self.sinks {
            s.flush();
        }
    }

    fn dropped_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.dropped_events()).sum()
    }
}
