//! Prometheus-style text exposition of a [`Snapshot`].
//!
//! The format follows the Prometheus 0.0.4 text conventions closely
//! enough for standard scrapers and for stable golden-file tests:
//!
//! - metric names are the registry names with every character outside
//!   `[a-zA-Z0-9_:]` replaced by `_` and a `robotune_` prefix
//!   (`gp.fit` → `robotune_gp_fit`);
//! - counters render as `# TYPE … counter` with one sample;
//! - histograms and spans render as `# TYPE … summary` with
//!   `quantile="0.5|0.9|0.99"` samples plus `_sum` and `_count`; span
//!   names get a `_us` suffix because span durations are microseconds;
//! - optional labels (e.g. `session`/`workload` from a
//!   [`Scope`](crate::scope::Scope)) are attached to every sample with
//!   `\\`, `"`, and newline escaped per the spec;
//! - non-finite values render as `NaN`/`+Inf`/`-Inf`.
//!
//! Output order is deterministic: counters, then histograms, then
//! spans, each sorted by name (the order [`Snapshot`] already holds).

use crate::registry::Snapshot;
use std::fmt::Write as _;

/// Prefix applied to every exposed metric name.
const PREFIX: &str = "robotune_";

/// Renders `snapshot` in the Prometheus text format with no labels.
pub fn render_prometheus(snapshot: &Snapshot) -> String {
    render_prometheus_labeled(snapshot, &[])
}

/// Renders `snapshot` with `labels` attached to every sample.
///
/// Label values are escaped; label *names* are sanitized like metric
/// names, so callers can pass human-oriented keys directly.
pub fn render_prometheus_labeled(snapshot: &Snapshot, labels: &[(&str, &str)]) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let metric = sanitize(name);
        let _ = writeln!(out, "# TYPE {metric} counter");
        let _ = writeln!(out, "{metric}{} {value}", label_block(labels, &[]));
    }
    for (name, summary) in &snapshot.hists {
        write_summary(&mut out, &sanitize(name), summary, labels);
    }
    for (name, summary) in &snapshot.spans {
        write_summary(&mut out, &format!("{}_us", sanitize(name)), summary, labels);
    }
    out
}

fn write_summary(
    out: &mut String,
    metric: &str,
    summary: &crate::histogram::HistSummary,
    labels: &[(&str, &str)],
) {
    let _ = writeln!(out, "# TYPE {metric} summary");
    for (q, v) in [("0.5", summary.p50), ("0.9", summary.p90), ("0.99", summary.p99)] {
        let _ = writeln!(
            out,
            "{metric}{} {}",
            label_block(labels, &[("quantile", q)]),
            fmt_value(v)
        );
    }
    let _ = writeln!(out, "{metric}_sum{} {}", label_block(labels, &[]), fmt_value(summary.sum));
    let _ = writeln!(out, "{metric}_count{} {}", label_block(labels, &[]), summary.count);
}

/// Replaces every character outside `[a-zA-Z0-9_:]` with `_` and
/// prefixes `robotune_`; a leading digit gets an extra `_`.
pub fn sanitize(name: &str) -> String {
    let mut s = String::with_capacity(PREFIX.len() + name.len());
    s.push_str(PREFIX);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            if i == 0 && c.is_ascii_digit() {
                s.push('_');
            }
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

/// Builds `{k="v",…}` from base labels plus extras; empty string when
/// there are none.
fn label_block(labels: &[(&str, &str)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().chain(extra.iter()) {
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{}=\"{}\"", sanitize_label_name(k), escape_label_value(v));
    }
    s.push('}');
    s
}

fn sanitize_label_name(name: &str) -> String {
    name.chars()
        .enumerate()
        .map(|(i, c)| {
            if c.is_ascii_alphanumeric() || c == '_' {
                if i == 0 && c.is_ascii_digit() {
                    '_'
                } else {
                    c
                }
            } else {
                '_'
            }
        })
        .collect()
}

fn escape_label_value(value: &str) -> String {
    let mut s = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Prometheus float formatting: `NaN`, `+Inf`, `-Inf`, else decimal.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_maps_dots_and_leading_digits() {
        assert_eq!(sanitize("gp.fit"), "robotune_gp_fit");
        assert_eq!(sanitize("service.req_ns.suggest"), "robotune_service_req_ns_suggest");
        assert_eq!(sanitize("9lives"), "robotune__9lives");
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
