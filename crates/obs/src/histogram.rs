//! Histograms: fixed log2-spaced buckets for distribution shape plus
//! P² streaming estimators for p50/p90/p99 — constant memory, no
//! stored samples.

/// Smallest bucketed exponent: values below `2^MIN_EXP` (and all
/// non-positive values) land in the underflow bucket 0.
const MIN_EXP: i32 = -20;
/// Largest bucketed exponent: values at or above `2^MAX_EXP` land in the
/// final overflow bucket.
const MAX_EXP: i32 = 43;
/// Bucket count: underflow + one per exponent in `[MIN_EXP, MAX_EXP)` +
/// overflow.
pub const NUM_BUCKETS: usize = (MAX_EXP - MIN_EXP) as usize + 2;

/// Maps a value to its bucket index.
///
/// Bucket 0 catches everything below `2^MIN_EXP`; bucket `i` (for
/// `1 <= i <= NUM_BUCKETS-2`) catches `[2^(MIN_EXP+i-1), 2^(MIN_EXP+i))`;
/// the last bucket catches `>= 2^MAX_EXP`, infinities, and NaN maps to 0.
pub fn bucket_index(value: f64) -> usize {
    if value <= 0.0 || value.is_nan() {
        return 0;
    }
    let exp = value.log2().floor() as i32;
    if exp < MIN_EXP {
        0
    } else if exp >= MAX_EXP {
        NUM_BUCKETS - 1
    } else {
        (exp - MIN_EXP) as usize + 1
    }
}

/// The `[low, high)` value range covered by bucket `i`.
pub fn bucket_bounds(i: usize) -> (f64, f64) {
    assert!(i < NUM_BUCKETS);
    if i == 0 {
        (0.0, (MIN_EXP as f64).exp2())
    } else if i == NUM_BUCKETS - 1 {
        ((MAX_EXP as f64).exp2(), f64::INFINITY)
    } else {
        let lo = MIN_EXP + (i as i32 - 1);
        ((lo as f64).exp2(), ((lo + 1) as f64).exp2())
    }
}

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm):
/// tracks one quantile with five markers, O(1) memory and update.
#[derive(Debug, Clone)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Desired position increments per observation.
    dn: [f64; 5],
    /// Observations seen so far.
    count: u64,
}

impl P2Quantile {
    /// Creates an estimator for quantile `p` in `(0, 1)`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1)");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
        }
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Records one observation.
    pub fn record(&mut self, x: f64) {
        if x.is_nan() {
            return;
        }
        if self.count < 5 {
            self.q[self.count as usize] = x;
            self.count += 1;
            if self.count == 5 {
                // NaN is filtered on entry, but total_cmp keeps the sort
                // a total order no matter what reaches it.
                self.q.sort_unstable_by(f64::total_cmp);
            }
            return;
        }
        self.count += 1;

        // Find the cell containing x and update extreme heights.
        let k: usize = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else if x <= self.q[4] {
            3
        } else {
            self.q[4] = x;
            3
        };

        for n in self.n.iter_mut().skip(k + 1) {
            *n += 1.0;
        }
        for (np, dn) in self.np.iter_mut().zip(self.dn.iter()) {
            *np += dn;
        }

        // Adjust interior markers toward their desired positions.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] = if self.q[i - 1] < qp && qp < self.q[i + 1] {
                    qp
                } else {
                    self.linear(i, d)
                };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let q = &self.q;
        let n = &self.n;
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = (i as f64 + d) as usize;
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// Current estimate of the tracked quantile (exact while fewer than
    /// five observations have been seen; NaN with none).
    pub fn quantile(&self) -> f64 {
        match self.count {
            0 => f64::NAN,
            c if c < 5 => {
                let mut head: Vec<f64> = self.q[..c as usize].to_vec();
                head.sort_unstable_by(f64::total_cmp);
                let rank = (self.p * (c as f64 - 1.0)).round() as usize;
                head[rank.min(c as usize - 1)]
            }
            _ => self.q[2],
        }
    }
}

/// Summary statistics extracted from a [`Histogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Mean of recorded values (NaN when empty).
    pub mean: f64,
    /// Minimum recorded value.
    pub min: f64,
    /// Maximum recorded value.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 90th percentile.
    pub p90: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

/// Fixed-bucket log2 histogram with exact count/sum/min/max and
/// streaming p50/p90/p99.
#[derive(Debug, Clone)]
pub struct Histogram {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    buckets: [u64; NUM_BUCKETS],
    p50: P2Quantile,
    p90: P2Quantile,
    p99: P2Quantile,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: [0; NUM_BUCKETS],
            p50: P2Quantile::new(0.5),
            p90: P2Quantile::new(0.9),
            p99: P2Quantile::new(0.99),
        }
    }

    /// Records one value (NaN is ignored).
    pub fn record(&mut self, value: f64) {
        if value.is_nan() {
            return;
        }
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        self.buckets[bucket_index(value)] += 1;
        self.p50.record(value);
        self.p90.record(value);
        self.p99.record(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Count in bucket `i` (see [`bucket_bounds`]).
    pub fn bucket_count(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Snapshot of the summary statistics.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.count,
            sum: self.sum,
            mean: if self.count == 0 {
                f64::NAN
            } else {
                self.sum / self.count as f64
            },
            min: self.min,
            max: self.max,
            p50: self.p50.quantile(),
            p90: self.p90.quantile(),
            p99: self.p99.quantile(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_half_open_powers_of_two() {
        // Exactly 2^k belongs to the bucket whose low bound is 2^k.
        for exp in [-3i32, 0, 1, 10] {
            let v = (exp as f64).exp2();
            let i = bucket_index(v);
            let (lo, hi) = bucket_bounds(i);
            assert_eq!(lo, v, "2^{exp} must open its own bucket");
            assert!(v < hi);
            // Just below the boundary falls one bucket lower.
            let below = v * (1.0 - 1e-12);
            assert_eq!(bucket_index(below), i - 1);
        }
        // Underflow and overflow.
        assert_eq!(bucket_index(0.0), 0);
        assert_eq!(bucket_index(-5.0), 0);
        assert_eq!(bucket_index(1e-30), 0);
        assert_eq!(bucket_index(f64::NAN), 0);
        assert_eq!(bucket_index(1e30), NUM_BUCKETS - 1);
        assert_eq!(bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_partition_the_positive_axis() {
        for i in 1..NUM_BUCKETS - 1 {
            let (lo, hi) = bucket_bounds(i);
            let (next_lo, _) = bucket_bounds(i + 1);
            assert_eq!(hi, next_lo, "buckets must tile without gaps");
            assert!(lo < hi);
        }
    }

    #[test]
    fn histogram_counts_land_in_the_right_buckets() {
        let mut h = Histogram::new();
        for v in [0.5, 0.5, 1.0, 1.5, 3.0, 1000.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.bucket_count(bucket_index(0.5)), 2);
        assert_eq!(h.bucket_count(bucket_index(1.0)), 2); // 1.0 and 1.5
        assert_eq!(h.bucket_count(bucket_index(3.0)), 1);
        assert_eq!(h.bucket_count(bucket_index(1000.0)), 1);
        let s = h.summary();
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 1000.0);
    }

    #[test]
    fn p2_matches_exact_quantiles_on_uniform_stream() {
        // Deterministic low-discrepancy stream in (0, 1).
        let mut h = Histogram::new();
        let mut x = 0.5f64;
        for _ in 0..10_000 {
            x = (x + 0.618_033_988_749_895) % 1.0;
            h.record(x);
        }
        let s = h.summary();
        assert!((s.p50 - 0.5).abs() < 0.05, "p50 = {}", s.p50);
        assert!((s.p90 - 0.9).abs() < 0.05, "p90 = {}", s.p90);
        assert!((s.p99 - 0.99).abs() < 0.03, "p99 = {}", s.p99);
        assert!((s.mean - 0.5).abs() < 0.01);
    }

    /// Asserts the invariant every quantile estimate must satisfy:
    /// finite and inside the observed [min, max].
    fn assert_in_range(q: &P2Quantile, min: f64, max: f64, what: &str) {
        let v = q.quantile();
        assert!(v.is_finite(), "{what}: quantile must be finite, got {v}");
        assert!(
            (min..=max).contains(&v),
            "{what}: quantile {v} outside observed range [{min}, {max}]"
        );
    }

    #[test]
    fn p2_fewer_than_five_samples_stays_exact_and_in_range() {
        for p in [0.5, 0.9, 0.99] {
            for n in 1..5usize {
                let mut q = P2Quantile::new(p);
                let vals: Vec<f64> = (0..n).map(|i| (n - i) as f64 * 3.5).collect();
                for &v in &vals {
                    q.record(v);
                }
                assert_eq!(q.count(), n as u64);
                assert_in_range(&q, 3.5, n as f64 * 3.5, &format!("p={p} n={n}"));
            }
        }
    }

    #[test]
    fn p2_all_duplicate_stream_returns_the_duplicate() {
        for p in [0.5, 0.9, 0.99] {
            for n in [1usize, 4, 5, 6, 100, 10_000] {
                let mut q = P2Quantile::new(p);
                for _ in 0..n {
                    q.record(42.0);
                }
                // Duplicates make every P² cell width zero; the linear /
                // parabolic adjustments must not divide their way to NaN.
                assert_eq!(q.quantile(), 42.0, "p={p} n={n}");
            }
        }
    }

    #[test]
    fn p2_monotone_streams_stay_finite_and_in_range() {
        for p in [0.5, 0.9, 0.99] {
            // Increasing, decreasing, and increasing-with-plateaus.
            let inc: Vec<f64> = (0..5000).map(|i| i as f64).collect();
            let dec: Vec<f64> = (0..5000).map(|i| (5000 - i) as f64).collect();
            let plateau: Vec<f64> = (0..5000).map(|i| (i / 50) as f64).collect();
            for (name, stream) in [("inc", &inc), ("dec", &dec), ("plateau", &plateau)] {
                let mut q = P2Quantile::new(p);
                let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
                for &v in stream.iter() {
                    q.record(v);
                    min = min.min(v);
                    max = max.max(v);
                    assert_in_range(&q, min, max, &format!("p={p} {name}"));
                }
                // On a long uniform ramp the estimate should also be
                // roughly at the right rank, not just in range.
                let expect = min + p * (max - min);
                let tol = 0.05 * (max - min);
                if name != "plateau" {
                    let v = q.quantile();
                    assert!(
                        (v - expect).abs() < tol,
                        "p={p} {name}: {v} vs expected ~{expect}"
                    );
                }
            }
        }
    }

    #[test]
    fn small_sample_quantiles_are_exact() {
        let mut q = P2Quantile::new(0.5);
        q.record(3.0);
        q.record(1.0);
        q.record(2.0);
        assert_eq!(q.quantile(), 2.0);
        let mut e = P2Quantile::new(0.9);
        assert!(e.quantile().is_nan());
        e.record(7.0);
        assert_eq!(e.quantile(), 7.0);
    }
}
