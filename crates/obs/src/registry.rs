//! The metrics registry: aggregates counters, histograms, and span
//! timings, and forwards every event to the installed sink.
//!
//! A process-wide global registry sits behind an `AtomicBool` master
//! switch. When tracing is disabled (the default) every instrumentation
//! call is one relaxed atomic load and a branch; no locks, no
//! allocation, no time-stamping.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use serde_json::Value;

use crate::event::{Event, EventData};
use crate::histogram::{HistSummary, Histogram};
use crate::sink::{EventSink, NullSink, RingBufferSink};

static ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL: OnceLock<Registry> = OnceLock::new();
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    // (span id, trace id) per open span; the trace id is inherited from
    // the enclosing span or the adopted TraceCtx at span start.
    static SPAN_STACK: RefCell<Vec<(u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// The innermost open span id on this thread (0 = none). Feeds
/// [`crate::TraceCtx::mint`]/[`crate::TraceCtx::current`].
pub(crate) fn current_span_id() -> u64 {
    SPAN_STACK.with(|s| s.borrow().last().map_or(0, |&(id, _)| id))
}

/// The causal context covering this thread right now: the innermost
/// open span as parent under its trace, falling back to the adopted
/// ambient context when no local span carries a trace.
pub(crate) fn current_ctx() -> crate::tracectx::TraceCtx {
    let ambient = crate::tracectx::ambient();
    SPAN_STACK.with(|s| match s.borrow().last() {
        Some(&(id, trace)) => crate::tracectx::TraceCtx {
            trace: if trace != 0 { trace } else { ambient.trace },
            parent: id,
        },
        None => ambient,
    })
}

/// Point-in-time copy of all aggregated metrics.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Value histograms, sorted by name.
    pub hists: Vec<(String, HistSummary)>,
    /// Span duration statistics in microseconds, sorted by name.
    pub spans: Vec<(String, HistSummary)>,
}

impl Snapshot {
    /// Looks up a counter total (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Looks up a histogram summary by name.
    pub fn hist(&self, name: &str) -> Option<&HistSummary> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Looks up a span duration summary by name.
    pub fn span(&self, name: &str) -> Option<&HistSummary> {
        self.spans.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }
}

/// The mutable aggregation state shared by the global registry and by
/// per-session [`Scope`](crate::scope::Scope)s.
#[derive(Debug, Default)]
pub(crate) struct Aggregates {
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<&'static str, Histogram>,
}

impl Aggregates {
    /// Folds one event payload into the aggregates. This is how scopes
    /// mirror the registry's own bookkeeping: every enabled event passes
    /// through [`Registry::emit`], which applies it to the innermost
    /// entered scope as well.
    pub(crate) fn apply(&mut self, data: &EventData) {
        match data {
            EventData::Counter { name, delta, .. } => {
                *self.counters.entry(name).or_insert(0) += delta;
            }
            EventData::Hist { name, value } => {
                self.hists.entry(name).or_default().record(*value);
            }
            EventData::SpanEnd { name, dur_us, .. } => {
                self.spans.entry(name).or_default().record(*dur_us as f64);
            }
            EventData::SpanStart { .. } | EventData::Mark { .. } | EventData::Diag { .. } => {}
        }
    }

    /// Copies the aggregates out into an owned [`Snapshot`].
    pub(crate) fn to_snapshot(&self) -> Snapshot {
        Snapshot {
            counters: self
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(k, h)| (k.to_string(), h.summary()))
                .collect(),
            spans: self
                .spans
                .iter()
                .map(|(k, h)| (k.to_string(), h.summary()))
                .collect(),
        }
    }
}

/// Thread-safe metrics registry. Most code uses the process-global one
/// through the crate-level free functions; a local `Registry` is useful
/// in tests.
pub struct Registry {
    start: Instant,
    seq: AtomicU64,
    next_span: AtomicU64,
    agg: Mutex<Aggregates>,
    sink: Mutex<Arc<dyn EventSink>>,
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl Registry {
    /// Creates a registry with a [`NullSink`] installed.
    pub fn new() -> Self {
        Registry {
            start: Instant::now(),
            seq: AtomicU64::new(0),
            next_span: AtomicU64::new(0),
            agg: Mutex::new(Aggregates::default()),
            sink: Mutex::new(Arc::new(NullSink)),
        }
    }

    fn now_us(&self) -> u64 {
        self.start.elapsed().as_micros() as u64
    }

    /// Replaces the installed sink.
    pub fn set_sink(&self, sink: Arc<dyn EventSink>) {
        *self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = sink;
    }

    /// Flushes the installed sink.
    ///
    /// The sink `Arc` is cloned out first so the flush (which may do
    /// real I/O) runs without any registry lock held — a concurrent
    /// `incr`/`record`/`snapshot` never waits on a disk write.
    pub fn flush(&self) {
        let sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        sink.flush();
    }

    /// Clears all aggregated metrics (the sink is left installed).
    pub fn reset(&self) {
        *self.agg.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Aggregates::default();
    }

    fn emit(&self, data: EventData) {
        let event = Event {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            t_us: self.now_us(),
            thread: THREAD_ID.with(|id| *id),
            data,
        };
        // Attribute to the innermost entered scope (if any) before the
        // sink sees the event; scope state is thread-local, no locks.
        crate::scope::attribute(&event);
        // Clone the Arc so the sink call runs outside the lock.
        let sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        sink.emit(&event);
    }

    /// Adds `delta` to the named counter and returns the new total.
    pub fn incr(&self, name: &'static str, delta: u64) -> u64 {
        let total = {
            let mut agg = self.agg.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let c = agg.counters.entry(name).or_insert(0);
            *c += delta;
            *c
        };
        self.emit(EventData::Counter { name, delta, total });
        total
    }

    /// Records `value` into the named histogram.
    pub fn record(&self, name: &'static str, value: f64) {
        self.agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .hists
            .entry(name)
            .or_default()
            .record(value);
        self.emit(EventData::Hist { name, value });
    }

    /// Emits a point-in-time mark with structured data.
    pub fn mark(&self, name: &'static str, data: Value) {
        self.emit(EventData::Mark { name, data });
    }

    /// Emits a tuner-health diagnostic series point.
    pub fn diag(&self, name: &'static str, iter: u64, data: Value) {
        self.emit(EventData::Diag { name, iter, data });
    }

    fn span_start(&self, name: &'static str) -> u64 {
        let id = self.next_span.fetch_add(1, Ordering::Relaxed);
        let ambient = crate::tracectx::ambient();
        let (parent, trace, link) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let (parent, trace, link) = match s.last() {
                // Nested span: local parent. It stays in the enclosing
                // trace unless the adopted context has moved on to a
                // newer request — then this span joins the new trace
                // and records the cross-thread handoff as its link.
                Some(&(pid, ptrace)) => {
                    if ambient.trace != 0 && ambient.trace != ptrace {
                        (Some(pid), ambient.trace, ambient.parent)
                    } else {
                        (Some(pid), ptrace, 0)
                    }
                }
                // Root span on this thread: the adopted context is the
                // only causal anchor.
                None => (None, ambient.trace, ambient.parent),
            };
            s.push((id, trace));
            (parent, trace, link)
        });
        // A link equal to the local parent adds nothing.
        let link = if Some(link) == parent { 0 } else { link };
        self.emit(EventData::SpanStart { name, id, parent, trace, link });
        id
    }

    fn span_end(&self, name: &'static str, id: u64, start: Instant) {
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            // Guards drop in LIFO order on each thread, so the top of
            // the stack is this span; be defensive anyway.
            if s.last().map(|&(sid, _)| sid) == Some(id) {
                s.pop();
            } else if let Some(pos) = s.iter().rposition(|&(sid, _)| sid == id) {
                s.remove(pos);
            }
        });
        let dur_us = start.elapsed().as_micros() as u64;
        self.agg
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .spans
            .entry(name)
            .or_default()
            .record(dur_us as f64);
        self.emit(EventData::SpanEnd { name, id, dur_us });
    }

    /// Copies out all aggregated metrics.
    ///
    /// Events the installed sink had to evict (see
    /// [`EventSink::dropped_events`]) surface as the
    /// `obs.dropped_events` counter, so a full ring buffer never loses
    /// data silently. The sink is consulted *after* the aggregate lock
    /// is released — no registry lock is ever held across a sink call.
    pub fn snapshot(&self) -> Snapshot {
        let mut snap = {
            let agg = self.agg.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            agg.to_snapshot()
        };
        let sink = self.sink.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone();
        let dropped = sink.dropped_events();
        if dropped > 0 {
            match snap
                .counters
                .binary_search_by(|(n, _)| n.as_str().cmp("obs.dropped_events"))
            {
                Ok(i) => snap.counters[i].1 += dropped,
                Err(i) => snap.counters.insert(i, ("obs.dropped_events".into(), dropped)),
            }
        }
        snap
    }
}

/// RAII handle for an open span; closing (dropping) it records the
/// duration and emits the `span_end` event.
#[must_use = "a span measures the scope it is bound to; dropping it immediately records ~0 duration"]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

struct ActiveSpan {
    name: &'static str,
    id: u64,
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(active) = self.inner.take() {
            if let Some(reg) = GLOBAL.get() {
                reg.span_end(active.name, active.id, active.start);
            }
        }
    }
}

/// The process-global registry (created on first use).
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Whether tracing is enabled. Inlined to a relaxed load so disabled
/// instrumentation costs one branch.
#[inline(always)]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Installs `sink` on the global registry and turns tracing on.
pub fn enable(sink: Arc<dyn EventSink>) {
    global().set_sink(sink);
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns tracing on with a [`NullSink`]: metrics aggregate, events are
/// discarded.
pub fn enable_null() {
    enable(Arc::new(NullSink));
}

/// Turns tracing on with an in-memory ring buffer; the returned handle
/// drains captured events.
pub fn enable_ring(capacity: usize) -> Arc<RingBufferSink> {
    let ring = Arc::new(RingBufferSink::new(capacity));
    enable(ring.clone());
    ring
}

/// Turns tracing off and flushes the sink. Spans opened before the
/// disable still finalize normally when their guards drop; new
/// instrumentation calls become no-ops.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
    if let Some(reg) = GLOBAL.get() {
        reg.flush();
    }
}

/// Clears the global registry's aggregates (test isolation helper).
pub fn reset() {
    if let Some(reg) = GLOBAL.get() {
        reg.reset();
    }
}

/// Opens a span; bind the guard (`let _span = obs::span("gp.fit");`) so
/// it closes at end of scope. Free when tracing is disabled.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard { inner: None };
    }
    let reg = global();
    let start = Instant::now();
    let id = reg.span_start(name);
    SpanGuard {
        inner: Some(ActiveSpan { name, id, start }),
    }
}

/// Adds `delta` to a named counter. Free when tracing is disabled.
#[inline]
pub fn incr(name: &'static str, delta: u64) {
    if is_enabled() {
        global().incr(name, delta);
    }
}

/// Records a value into a named histogram. Free when tracing is
/// disabled.
#[inline]
pub fn record(name: &'static str, value: f64) {
    if is_enabled() {
        global().record(name, value);
    }
}

/// Emits a point-in-time mark with structured data. The closure runs
/// only when tracing is enabled, so payload construction is free when
/// disabled.
#[inline]
pub fn mark<F: FnOnce() -> Value>(name: &'static str, data: F) {
    if is_enabled() {
        global().mark(name, data());
    }
}

/// Emits a tuner-health diagnostic series point. `iter` must be
/// monotone within the named series (flight dumps are validated on
/// that). The closure runs only when tracing is enabled, so payload
/// construction is free when disabled.
#[inline]
pub fn diag<F: FnOnce() -> Value>(name: &'static str, iter: u64, data: F) {
    if is_enabled() {
        global().diag(name, iter, data());
    }
}

/// Snapshot of the global registry's aggregates.
pub fn snapshot() -> Snapshot {
    match GLOBAL.get() {
        Some(reg) => reg.snapshot(),
        None => Snapshot::default(),
    }
}

/// Flushes the global registry's sink.
pub fn flush() {
    if let Some(reg) = GLOBAL.get() {
        reg.flush();
    }
}
