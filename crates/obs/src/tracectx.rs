//! Causal trace contexts: request-scoped parent/child links that
//! survive thread crossings.
//!
//! Span parentage in [`crate::registry`] is thread-local — an RAII
//! guard stack. That is exactly right for nesting on one thread and
//! exactly wrong for the service pipeline, where one request hops from
//! the reactor thread to a dispatch worker to a session worker to GP
//! scoped threads. A [`TraceCtx`] is the explicit baton for those hops:
//! a `Copy` pair of (trace id, parent span id) minted once per request
//! and handed across thread boundaries by value.
//!
//! On the receiving thread the context is *adopted* — either scoped
//! ([`adopt`], RAII) or ambient ([`set_ambient`], for worker loops
//! whose continuation outlives any lexical scope). The registry then
//! tags every new span with the trace id, and when a span starts on a
//! thread whose local span stack does not already belong to that trace
//! it records the context's parent as its causal `link`. Links render
//! as Chrome trace flow arrows (`s`/`f` events), which is what turns a
//! per-thread stack soup into one connected arc from wire read to GP
//! solve.
//!
//! Everything here is telemetry-only and free when tracing is
//! disabled: [`TraceCtx::mint`] and [`TraceCtx::current`] return
//! [`TraceCtx::NONE`] without touching any state, and adopting `NONE`
//! is a pair of thread-local `Cell` writes.

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide trace id allocator; 0 is reserved for "no trace".
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static AMBIENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

/// A causal trace context: the trace id a request was minted under and
/// the span id of the causal parent. Cheap `Copy`; send it across
/// threads by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceCtx {
    /// Trace id (0 = none).
    pub trace: u64,
    /// Causal parent span id (0 = none).
    pub parent: u64,
}

impl TraceCtx {
    /// The null context: no trace, no parent.
    pub const NONE: TraceCtx = TraceCtx { trace: 0, parent: 0 };

    /// Whether this is the null context.
    #[inline]
    pub fn is_none(self) -> bool {
        self.trace == 0
    }

    /// Mints a fresh trace id, rooted at the innermost span currently
    /// open on this thread (if any). Call once per request at the edge
    /// of the system. Returns [`TraceCtx::NONE`] when tracing is
    /// disabled.
    pub fn mint() -> TraceCtx {
        if !crate::registry::is_enabled() {
            return TraceCtx::NONE;
        }
        TraceCtx {
            trace: NEXT_TRACE.fetch_add(1, Ordering::Relaxed),
            parent: crate::registry::current_span_id(),
        }
    }

    /// The context a child task spawned from this thread should carry:
    /// the innermost open span as parent, under the active trace
    /// (inherited through the span stack or the adopted context).
    /// Returns [`TraceCtx::NONE`] when tracing is disabled or no trace
    /// is active.
    pub fn current() -> TraceCtx {
        if !crate::registry::is_enabled() {
            return TraceCtx::NONE;
        }
        crate::registry::current_ctx()
    }
}

/// Reads this thread's ambient context.
pub(crate) fn ambient() -> TraceCtx {
    AMBIENT.with(Cell::get)
}

/// Installs `ctx` as this thread's ambient trace context until the
/// returned guard drops (the previous context is restored). Use around
/// a bounded unit of work handed over from another thread — e.g. one
/// dispatched request, one scoped-thread restart.
pub fn adopt(ctx: TraceCtx) -> AdoptGuard {
    let prev = AMBIENT.with(|c| c.replace(ctx));
    AdoptGuard { prev, _not_send: PhantomData }
}

/// Replaces this thread's ambient trace context with no restore point.
/// For long-lived worker loops whose "current request" changes at a
/// channel receive rather than at a lexical boundary; pass
/// [`TraceCtx::NONE`] to clear.
pub fn set_ambient(ctx: TraceCtx) {
    AMBIENT.with(|c| c.set(ctx));
}

/// RAII guard from [`adopt`]: restores the previous ambient context on
/// drop. Deliberately `!Send` — it must drop on the adopting thread.
#[derive(Debug)]
pub struct AdoptGuard {
    prev: TraceCtx,
    _not_send: PhantomData<*const ()>,
}

impl Drop for AdoptGuard {
    fn drop(&mut self) {
        AMBIENT.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adopt_nests_and_restores() {
        assert_eq!(ambient(), TraceCtx::NONE);
        let a = TraceCtx { trace: 7, parent: 3 };
        let b = TraceCtx { trace: 8, parent: 4 };
        {
            let _ga = adopt(a);
            assert_eq!(ambient(), a);
            {
                let _gb = adopt(b);
                assert_eq!(ambient(), b);
            }
            assert_eq!(ambient(), a);
        }
        assert_eq!(ambient(), TraceCtx::NONE);
    }

    #[test]
    fn set_ambient_is_sticky() {
        let a = TraceCtx { trace: 9, parent: 1 };
        set_ambient(a);
        assert_eq!(ambient(), a);
        set_ambient(TraceCtx::NONE);
        assert_eq!(ambient(), TraceCtx::NONE);
    }

    #[test]
    fn mint_is_null_while_disabled() {
        // Tests in this crate run with tracing disabled unless a test
        // enables it; `mint` must not burn ids or touch thread state.
        if !crate::registry::is_enabled() {
            assert!(TraceCtx::mint().is_none());
            assert!(TraceCtx::current().is_none());
        }
    }
}
