//! Trace events: the wire-level unit every sink receives.

use serde_json::{Map, Value};

/// One trace event, stamped with a global sequence number, microseconds
/// since registry start, and a small per-process thread index.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global monotonically increasing sequence number.
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub t_us: u64,
    /// Dense per-process thread index (0 = first thread to emit).
    pub thread: u64,
    /// The payload.
    pub data: EventData,
}

/// Event payload variants.
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// A span opened.
    SpanStart {
        /// Span name.
        name: &'static str,
        /// Unique span id.
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
    },
    /// A span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Id matching the corresponding [`EventData::SpanStart`].
        id: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A counter was incremented.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Running total after the increment.
        total: u64,
    },
    /// A value was recorded into a histogram.
    Hist {
        /// Histogram name.
        name: &'static str,
        /// The observed value.
        value: f64,
    },
    /// A point-in-time annotation with structured data.
    Mark {
        /// Mark name.
        name: &'static str,
        /// Arbitrary structured payload.
        data: Value,
    },
}

impl Event {
    /// The JSONL `kind` discriminator for this event.
    pub fn kind(&self) -> &'static str {
        match self.data {
            EventData::SpanStart { .. } => "span_start",
            EventData::SpanEnd { .. } => "span_end",
            EventData::Counter { .. } => "counter",
            EventData::Hist { .. } => "hist",
            EventData::Mark { .. } => "mark",
        }
    }

    /// The event's name (span/counter/histogram/mark name).
    pub fn name(&self) -> &'static str {
        match self.data {
            EventData::SpanStart { name, .. }
            | EventData::SpanEnd { name, .. }
            | EventData::Counter { name, .. }
            | EventData::Hist { name, .. }
            | EventData::Mark { name, .. } => name,
        }
    }

    /// Renders the event as one JSON object (the JSONL schema).
    ///
    /// Common fields: `seq`, `t_us`, `thread`, `kind`, `name`; variant
    /// fields: `id`/`parent` (span_start), `id`/`dur_us` (span_end),
    /// `delta`/`total` (counter), `value` (hist), `data` (mark).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("t_us".into(), Value::from(self.t_us));
        m.insert("thread".into(), Value::from(self.thread));
        m.insert("kind".into(), Value::from(self.kind()));
        m.insert("name".into(), Value::from(self.name()));
        match &self.data {
            EventData::SpanStart { id, parent, .. } => {
                m.insert("id".into(), Value::from(*id));
                m.insert("parent".into(), Value::from(*parent));
            }
            EventData::SpanEnd { id, dur_us, .. } => {
                m.insert("id".into(), Value::from(*id));
                m.insert("dur_us".into(), Value::from(*dur_us));
            }
            EventData::Counter { delta, total, .. } => {
                m.insert("delta".into(), Value::from(*delta));
                m.insert("total".into(), Value::from(*total));
            }
            EventData::Hist { value, .. } => {
                m.insert("value".into(), Value::from(*value));
            }
            EventData::Mark { data, .. } => {
                m.insert("data".into(), data.clone());
            }
        }
        Value::Object(m)
    }
}
