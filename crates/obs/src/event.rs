//! Trace events: the wire-level unit every sink receives.

use serde_json::{Map, Value};

/// One trace event, stamped with a global sequence number, microseconds
/// since registry start, and a small per-process thread index.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global monotonically increasing sequence number.
    pub seq: u64,
    /// Microseconds since the registry was created.
    pub t_us: u64,
    /// Dense per-process thread index (0 = first thread to emit).
    pub thread: u64,
    /// The payload.
    pub data: EventData,
}

/// Event payload variants.
#[derive(Debug, Clone, PartialEq)]
pub enum EventData {
    /// A span opened.
    SpanStart {
        /// Span name.
        name: &'static str,
        /// Unique span id.
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// The causal trace this span belongs to (0 = none). Minted per
        /// request by [`crate::TraceCtx::mint`] and inherited through
        /// span nesting and adopted contexts.
        trace: u64,
        /// Causal parent span id when it differs from the local
        /// `parent` — i.e. the span that handed work to this thread
        /// (0 = none). Rendered as a Chrome trace flow arrow.
        link: u64,
    },
    /// A span closed.
    SpanEnd {
        /// Span name.
        name: &'static str,
        /// Id matching the corresponding [`EventData::SpanStart`].
        id: u64,
        /// Wall-clock duration in microseconds.
        dur_us: u64,
    },
    /// A counter was incremented.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Running total after the increment.
        total: u64,
    },
    /// A value was recorded into a histogram.
    Hist {
        /// Histogram name.
        name: &'static str,
        /// The observed value.
        value: f64,
    },
    /// A point-in-time annotation with structured data.
    Mark {
        /// Mark name.
        name: &'static str,
        /// Arbitrary structured payload.
        data: Value,
    },
    /// A tuner-health diagnostic sample: a named series point with a
    /// monotone per-series iteration number and a structured payload.
    /// Diag events never fold into aggregates; they live in scope rings
    /// and flight dumps so `diagnose`/`experiments doctor` can read the
    /// optimizer's internal state after the fact.
    Diag {
        /// Series name (e.g. `diag.bo.observe`).
        name: &'static str,
        /// Monotone iteration number within the series.
        iter: u64,
        /// Structured payload.
        data: Value,
    },
}

impl Event {
    /// The JSONL `kind` discriminator for this event.
    pub fn kind(&self) -> &'static str {
        match self.data {
            EventData::SpanStart { .. } => "span_start",
            EventData::SpanEnd { .. } => "span_end",
            EventData::Counter { .. } => "counter",
            EventData::Hist { .. } => "hist",
            EventData::Mark { .. } => "mark",
            EventData::Diag { .. } => "diag",
        }
    }

    /// The event's name (span/counter/histogram/mark name).
    pub fn name(&self) -> &'static str {
        match self.data {
            EventData::SpanStart { name, .. }
            | EventData::SpanEnd { name, .. }
            | EventData::Counter { name, .. }
            | EventData::Hist { name, .. }
            | EventData::Mark { name, .. }
            | EventData::Diag { name, .. } => name,
        }
    }

    /// Renders the event as one JSON object (the JSONL schema).
    ///
    /// Common fields: `seq`, `t_us`, `thread`, `kind`, `name`; variant
    /// fields: `id`/`parent` plus `trace`/`link` when causally tagged
    /// (span_start), `id`/`dur_us` (span_end), `delta`/`total`
    /// (counter), `value` (hist), `data` (mark), `iter`/`data` (diag).
    pub fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("seq".into(), Value::from(self.seq));
        m.insert("t_us".into(), Value::from(self.t_us));
        m.insert("thread".into(), Value::from(self.thread));
        m.insert("kind".into(), Value::from(self.kind()));
        m.insert("name".into(), Value::from(self.name()));
        match &self.data {
            EventData::SpanStart { id, parent, trace, link, .. } => {
                m.insert("id".into(), Value::from(*id));
                m.insert("parent".into(), Value::from(*parent));
                if *trace != 0 {
                    m.insert("trace".into(), Value::from(*trace));
                }
                if *link != 0 {
                    m.insert("link".into(), Value::from(*link));
                }
            }
            EventData::SpanEnd { id, dur_us, .. } => {
                m.insert("id".into(), Value::from(*id));
                m.insert("dur_us".into(), Value::from(*dur_us));
            }
            EventData::Counter { delta, total, .. } => {
                m.insert("delta".into(), Value::from(*delta));
                m.insert("total".into(), Value::from(*total));
            }
            EventData::Hist { value, .. } => {
                m.insert("value".into(), Value::from(*value));
            }
            EventData::Mark { data, .. } => {
                m.insert("data".into(), data.clone());
            }
            EventData::Diag { iter, data, .. } => {
                m.insert("iter".into(), Value::from(*iter));
                m.insert("data".into(), data.clone());
            }
        }
        Value::Object(m)
    }
}
