//! Span-timeline profiling export: renders the trace-event stream to
//! Chrome trace-event JSON, loadable in Perfetto or `chrome://tracing`.
//!
//! [`ChromeTraceSink`] buffers the raw events (bounded; overflow is
//! counted, never silent) and [`render_chrome_trace`] turns any event
//! slice into the JSON object format: spans become balanced `B`/`E`
//! duration events, counters become `C` counter tracks, and marks become
//! `i` instants. Only spans whose start *and* end both made it into the
//! buffer are emitted, so the output is always balanced even when the
//! process is profiled mid-flight.
//!
//! The same event slice also yields a per-phase *self-time* breakdown
//! ([`self_times`]): for every span name, total wall time minus the time
//! spent in child spans — the number that says where a phase actually
//! burns its cycles, rather than what it happens to enclose.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use serde_json::{json, Value};

use crate::event::{Event, EventData};
use crate::sink::EventSink;

/// Default event capacity of a [`ChromeTraceSink`] (about 100 MB of
/// buffered events in the worst case; plenty for an experiments run).
pub const DEFAULT_TRACE_CAPACITY: usize = 1_000_000;

/// An [`EventSink`] that buffers events in memory for later rendering to
/// Chrome trace-event JSON. Install it with [`crate::enable`] (or tee it
/// next to a [`crate::JsonlSink`] with [`crate::sink::TeeSink`]), run the
/// workload, then call [`ChromeTraceSink::write_to`].
pub struct ChromeTraceSink {
    capacity: usize,
    events: Mutex<Vec<Event>>,
    dropped: AtomicU64,
}

impl Default for ChromeTraceSink {
    fn default() -> Self {
        ChromeTraceSink::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl ChromeTraceSink {
    /// Creates a sink buffering up to `capacity` events (minimum 1);
    /// further events are dropped and counted.
    pub fn new(capacity: usize) -> Self {
        ChromeTraceSink {
            capacity: capacity.max(1),
            events: Mutex::new(Vec::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Copies out the buffered events in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
    }

    /// Renders the buffered events as Chrome trace-event JSON.
    pub fn render(&self) -> String {
        render_chrome_trace(&self.events())
    }

    /// Writes the Chrome trace JSON to `path`.
    pub fn write_to<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.render())
    }

    /// Per-span-name self-time breakdown of the buffered events.
    pub fn self_times(&self) -> Vec<SelfTime> {
        self_times(&self.events())
    }

    /// Renders the self-time breakdown as an aligned text table, the
    /// section the `--profile` report appends below the span summary.
    pub fn render_self_time(&self) -> String {
        render_self_time(&self.self_times())
    }
}

impl EventSink for ChromeTraceSink {
    fn emit(&self, event: &Event) {
        // Histogram samples carry no timeline information; skip them so
        // hot paths recording per-evaluation values don't flood the
        // span buffer.
        if matches!(event.data, EventData::Hist { .. }) {
            return;
        }
        let mut buf = self.events.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if buf.len() >= self.capacity {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return;
        }
        buf.push(event.clone());
    }

    fn dropped_events(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// Renders an event slice to the Chrome trace-event JSON object format
/// (`{"traceEvents": [...], "displayTimeUnit": "ms"}`).
///
/// Spans are emitted as `B`/`E` pairs — only when both endpoints are
/// present in `events`, so the stream is always balanced — with the `E`
/// timestamp computed as `start + dur_us`, keeping every pair exactly as
/// long as the duration the registry aggregated. Counters become `C`
/// events and marks become thread-scoped `i` instants. Events are sorted
/// by timestamp (stable, so per-thread emission order breaks ties),
/// which Perfetto requires for well-formed nesting.
pub fn render_chrome_trace(events: &[Event]) -> String {
    // First pass: pair up span endpoints by id, and index the start
    // events of completed spans so flow arrows can anchor on them.
    let mut ends: std::collections::BTreeMap<u64, (u64, u64)> = std::collections::BTreeMap::new();
    for e in events {
        if let EventData::SpanEnd { id, dur_us, .. } = e.data {
            ends.insert(id, (dur_us, e.seq));
        }
    }
    // id → (start t_us, start seq, thread) for spans that completed.
    let mut starts: std::collections::BTreeMap<u64, (u64, u64, u64)> =
        std::collections::BTreeMap::new();
    for e in events {
        if let EventData::SpanStart { id, .. } = e.data {
            if ends.contains_key(&id) {
                starts.insert(id, (e.t_us, e.seq, e.thread));
            }
        }
    }

    // Second pass: synthesize the trace records with sortable keys.
    // Key = (ts, seq) so same-timestamp events keep emission order and a
    // synthesized E never precedes its own B.
    let mut records: Vec<(u64, u64, Value)> = Vec::new();
    for e in events {
        match &e.data {
            EventData::SpanStart { name, id, link, .. } => {
                let Some(&(dur_us, end_seq)) = ends.get(id) else { continue };
                records.push((
                    e.t_us,
                    e.seq,
                    trace_record(name, "B", e.t_us, e.thread, None),
                ));
                // A causal link to a span on another thread renders as
                // a flow arrow: `s` anchored inside the producing span,
                // `f` (binding to the enclosing slice) at this span's
                // start. Perfetto matches the pair by (cat, name, id);
                // the consuming span's id is unique, so use it.
                if *link != 0 {
                    if let Some(&(lt, _lseq, ltid)) = starts.get(link) {
                        if ltid != e.thread {
                            let mut s = trace_record("handoff", "s", lt, ltid, None);
                            let mut f = trace_record("handoff", "f", e.t_us, e.thread, None);
                            for rec in [&mut s, &mut f] {
                                if let Value::Object(m) = rec {
                                    m.insert("cat".into(), Value::from("flow"));
                                    m.insert("id".into(), Value::from(*id));
                                }
                            }
                            if let Value::Object(m) = &mut f {
                                m.insert("bp".into(), Value::from("e"));
                            }
                            // The `s` sorts after the producing B (same
                            // ts, larger seq); the `f` sorts after this
                            // span's own B (same ts, same seq, stable
                            // sort keeps push order).
                            records.push((lt, e.seq, s));
                            records.push((e.t_us, e.seq, f));
                        }
                    }
                }
                // The E closes exactly dur_us later; it carries the end
                // event's stream position so that when a child and its
                // parent close at the same microsecond the child (which
                // ended first) still sorts first.
                records.push((
                    e.t_us + dur_us,
                    end_seq,
                    trace_record(name, "E", e.t_us + dur_us, e.thread, None),
                ));
            }
            EventData::Counter { name, total, .. } => {
                records.push((
                    e.t_us,
                    e.seq,
                    trace_record(name, "C", e.t_us, e.thread, Some(json!({ "value": *total }))),
                ));
            }
            EventData::Mark { name, data } => {
                let mut rec = trace_record(name, "i", e.t_us, e.thread, Some(data.clone()));
                if let Value::Object(m) = &mut rec {
                    m.insert("s".into(), Value::from("t"));
                }
                records.push((e.t_us, e.seq, rec));
            }
            EventData::Diag { name, iter, data } => {
                let mut rec = trace_record(
                    name,
                    "i",
                    e.t_us,
                    e.thread,
                    Some(json!({ "iter": *iter, "data": data.clone() })),
                );
                if let Value::Object(m) = &mut rec {
                    m.insert("s".into(), Value::from("t"));
                }
                records.push((e.t_us, e.seq, rec));
            }
            EventData::SpanEnd { .. } | EventData::Hist { .. } => {}
        }
    }
    records.sort_by_key(|r| (r.0, r.1));

    let trace_events: Vec<Value> = records.into_iter().map(|(_, _, v)| v).collect();
    let doc = json!({
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
    });
    serde_json::to_string_pretty(&doc).unwrap_or_else(|_| String::from("{\"traceEvents\":[]}"))
}

fn trace_record(name: &str, ph: &str, ts_us: u64, tid: u64, args: Option<Value>) -> Value {
    let mut rec = json!({
        "name": name,
        "cat": "robotune",
        "ph": ph,
        "ts": ts_us,
        "pid": 1u64,
        "tid": tid,
    });
    if let (Value::Object(m), Some(a)) = (&mut rec, args) {
        m.insert("args".into(), a);
    }
    rec
}

/// Wall-time accounting for one span name across a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfTime {
    /// Span name.
    pub name: String,
    /// Completed spans with this name.
    pub count: u64,
    /// Total enclosed wall time, microseconds.
    pub total_us: u64,
    /// Wall time not spent inside child spans, microseconds.
    pub self_us: u64,
}

/// Computes the per-span-name self-time breakdown: each completed span's
/// duration minus the duration of its completed child spans, summed by
/// name and sorted by descending self time.
pub fn self_times(events: &[Event]) -> Vec<SelfTime> {
    use std::collections::BTreeMap;
    // id → (name, parent) from the start events.
    let mut meta: BTreeMap<u64, (&'static str, Option<u64>)> = BTreeMap::new();
    // id → microseconds consumed by direct children.
    let mut child_us: BTreeMap<u64, u64> = BTreeMap::new();
    let mut acc: BTreeMap<&'static str, (u64, u64, u64)> = BTreeMap::new();
    for e in events {
        match e.data {
            EventData::SpanStart { name, id, parent, .. } => {
                meta.insert(id, (name, parent));
            }
            EventData::SpanEnd { name, id, dur_us } => {
                // Children end before their parent (RAII guards drop in
                // LIFO order), so this span's child_us is final here.
                let consumed = child_us.get(&id).copied().unwrap_or(0);
                let entry = acc.entry(name).or_insert((0, 0, 0));
                entry.0 += 1;
                entry.1 += dur_us;
                entry.2 += dur_us.saturating_sub(consumed);
                if let Some((_, Some(parent))) = meta.get(&id) {
                    *child_us.entry(*parent).or_insert(0) += dur_us;
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<SelfTime> = acc
        .into_iter()
        .map(|(name, (count, total_us, self_us))| SelfTime {
            name: name.to_string(),
            count,
            total_us,
            self_us,
        })
        .collect();
    out.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    out
}

/// Renders a [`self_times`] breakdown as an aligned text table.
pub fn render_self_time(rows: &[SelfTime]) -> String {
    let mut out = String::from("span self-time (wall clock minus child spans)\n");
    if rows.is_empty() {
        out.push_str("  (no completed spans captured)\n");
        return out;
    }
    let fmt_us = |us: u64| -> String {
        let us = us as f64;
        if us < 1_000.0 {
            format!("{us:.0}µs")
        } else if us < 1_000_000.0 {
            format!("{:.2}ms", us / 1e3)
        } else {
            format!("{:.2}s", us / 1e6)
        }
    };
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(4).max(4);
    out.push_str(&format!(
        "  {:<name_w$}  {:>7}  {:>10}  {:>10}  {:>6}\n",
        "name", "count", "total", "self", "self%"
    ));
    for r in rows {
        let pct = if r.total_us == 0 {
            0.0
        } else {
            100.0 * r.self_us as f64 / r.total_us as f64
        };
        out.push_str(&format!(
            "  {:<name_w$}  {:>7}  {:>10}  {:>10}  {:>5.1}%\n",
            r.name,
            r.count,
            fmt_us(r.total_us),
            fmt_us(r.self_us),
            pct
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(seq: u64, t_us: u64, thread: u64, data: EventData) -> Event {
        Event { seq, t_us, thread, data }
    }

    fn start(name: &'static str, id: u64, parent: Option<u64>) -> EventData {
        EventData::SpanStart { name, id, parent, trace: 0, link: 0 }
    }

    fn nested_fixture() -> Vec<Event> {
        vec![
            ev(0, 10, 0, start("outer", 1, None)),
            ev(1, 20, 0, start("inner", 2, Some(1))),
            ev(2, 25, 0, EventData::Counter { name: "hits", delta: 1, total: 1 }),
            ev(3, 60, 0, EventData::SpanEnd { name: "inner", id: 2, dur_us: 40 }),
            ev(4, 110, 0, EventData::SpanEnd { name: "outer", id: 1, dur_us: 100 }),
            // An unclosed span must not appear in the trace.
            ev(5, 120, 1, start("dangling", 3, None)),
        ]
    }

    #[test]
    fn trace_emits_balanced_sorted_pairs_and_skips_dangling_spans() {
        let text = render_chrome_trace(&nested_fixture());
        let doc = serde_json::from_str(&text).unwrap();
        let events = doc["traceEvents"].as_array().unwrap();
        let phases: Vec<&str> = events.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phases, ["B", "B", "C", "E", "E"]);
        assert!(!text.contains("dangling"));
        let ts: Vec<u64> = events.iter().map(|e| e["ts"].as_u64().unwrap()).collect();
        let mut sorted = ts.clone();
        sorted.sort_unstable();
        assert_eq!(ts, sorted, "timestamps must be monotone");
        // E timestamps are start + dur.
        assert_eq!(ts, [10, 20, 25, 60, 110]);
    }

    #[test]
    fn self_time_subtracts_children() {
        let st = self_times(&nested_fixture());
        assert_eq!(st.len(), 2);
        assert_eq!(st[0].name, "outer");
        assert_eq!(st[0].total_us, 100);
        assert_eq!(st[0].self_us, 60, "outer self = 100 - inner 40");
        assert_eq!(st[1].name, "inner");
        assert_eq!(st[1].self_us, 40);
        let table = render_self_time(&st);
        assert!(table.contains("outer"));
        assert!(table.contains("60.0"), "{table}");
    }

    #[test]
    fn cross_thread_links_render_as_flow_pairs() {
        // A request span on thread 0 hands work to a span on thread 1;
        // the consuming span carries the producer as its link.
        let events = vec![
            ev(0, 10, 0, start("dispatch", 1, None)),
            ev(
                1,
                30,
                1,
                EventData::SpanStart { name: "work", id: 2, parent: None, trace: 7, link: 1 },
            ),
            ev(2, 90, 1, EventData::SpanEnd { name: "work", id: 2, dur_us: 60 }),
            ev(3, 100, 0, EventData::SpanEnd { name: "dispatch", id: 1, dur_us: 90 }),
        ];
        let text = render_chrome_trace(&events);
        let doc: Value = serde_json::from_str(&text).unwrap();
        let recs = doc["traceEvents"].as_array().unwrap();
        let phases: Vec<&str> = recs.iter().map(|e| e["ph"].as_str().unwrap()).collect();
        assert_eq!(phases, ["B", "s", "B", "f", "E", "E"]);
        let s = &recs[1];
        let f = &recs[3];
        assert_eq!(s["id"].as_u64(), f["id"].as_u64(), "flow pair shares the consuming span id");
        assert_eq!(s["cat"].as_str(), Some("flow"));
        assert_eq!(s["tid"].as_u64(), Some(0), "s anchors on the producing thread");
        assert_eq!(f["tid"].as_u64(), Some(1), "f lands on the consuming thread");
        assert_eq!(f["bp"].as_str(), Some("e"), "f binds to the enclosing slice");
        assert!(s["ts"].as_u64() <= f["ts"].as_u64(), "arrow points forward in time");

        // Same-thread links add nothing: nesting already shows them.
        let same = vec![
            ev(0, 10, 0, start("a", 1, None)),
            ev(1, 20, 0, EventData::SpanStart { name: "b", id: 2, parent: None, trace: 7, link: 1 }),
            ev(2, 40, 0, EventData::SpanEnd { name: "b", id: 2, dur_us: 20 }),
            ev(3, 50, 0, EventData::SpanEnd { name: "a", id: 1, dur_us: 40 }),
        ];
        assert!(!render_chrome_trace(&same).contains("handoff"));

        // A link to an incomplete span is dropped, not dangled.
        let incomplete = vec![
            ev(0, 10, 0, start("open", 1, None)),
            ev(1, 30, 1, EventData::SpanStart { name: "work", id: 2, parent: None, trace: 7, link: 1 }),
            ev(2, 90, 1, EventData::SpanEnd { name: "work", id: 2, dur_us: 60 }),
        ];
        assert!(!render_chrome_trace(&incomplete).contains("handoff"));
    }

    #[test]
    fn sink_buffers_caps_and_counts_drops() {
        let sink = ChromeTraceSink::new(2);
        for i in 0..4 {
            sink.emit(&ev(i, i * 10, 0, EventData::Counter { name: "c", delta: 1, total: i + 1 }));
        }
        assert_eq!(sink.events().len(), 2);
        assert_eq!(sink.dropped_events(), 2);
        // Hist events never enter the buffer and never count as drops.
        let sink = ChromeTraceSink::new(8);
        sink.emit(&ev(0, 0, 0, EventData::Hist { name: "h", value: 1.0 }));
        assert!(sink.events().is_empty());
        assert_eq!(sink.dropped_events(), 0);
    }
}
