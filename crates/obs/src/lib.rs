//! `robotune-obs`: zero-dependency tracing and metrics for the ROBOTune
//! workspace.
//!
//! Four pieces:
//!
//! - **Spans** — hierarchical RAII wall-clock timers
//!   ([`span`] → [`SpanGuard`]); nesting is tracked per thread so every
//!   `span_start` event carries its parent span id.
//! - **Counters and histograms** — [`incr`] and [`record`] aggregate
//!   into a thread-safe [`Registry`] (fixed log2 buckets plus P²
//!   streaming p50/p90/p99; see [`histogram`]).
//! - **Sinks** — every event also flows to the installed [`EventSink`]:
//!   [`NullSink`] (discard), [`RingBufferSink`] (in-memory, drainable),
//!   or [`JsonlSink`] (one JSON object per line, the `--trace` format).
//! - **Report** — [`Report`] renders a per-run summary table from a
//!   [`Snapshot`].
//!
//! Built on top of those:
//!
//! - **Scopes** ([`scope`]) — per-session attribution: enter a labelled
//!   [`Scope`] and every event the thread emits is also folded into the
//!   scope's own aggregates and bounded event ring (the flight-recorder
//!   source), with zero changes at instrumentation call sites.
//! - **Exposition** ([`expo`]) — Prometheus-style text rendering of any
//!   [`Snapshot`], optionally labelled.
//! - **SLO windows** ([`slo`]) — exact rolling-window percentiles over
//!   the last N samples, for `health`-style endpoints.
//! - **Trace export** ([`trace`]) — a [`ChromeTraceSink`] that buffers
//!   the event stream and renders it as Chrome trace-event JSON for
//!   Perfetto/`chrome://tracing` (the `--profile` format), plus a
//!   per-span self-time breakdown.
//! - **Trace contexts** ([`tracectx`]) — a per-request [`TraceCtx`]
//!   baton (trace id + causal parent span) that survives thread
//!   crossings; adopted contexts tag spans with `trace`/`link` fields
//!   that render as Chrome trace flow arrows.
//! - **Diagnostics** ([`diag`]) — structured tuner-health series points
//!   (kernel conditioning, fallback storms, regret curves) that flow to
//!   scope rings and flight dumps without touching the aggregates.
//!
//! Tracing is **off by default**: every instrumentation call first
//! checks one relaxed atomic and returns immediately when disabled, so
//! instrumented hot paths pay a branch, nothing more. Turn it on with
//! [`enable_null`], [`enable_ring`], or [`enable`] with a custom sink.
//!
//! ```
//! let ring = robotune_obs::enable_ring(64);
//! {
//!     let _span = robotune_obs::span("demo.outer");
//!     robotune_obs::incr("demo.count", 2);
//!     robotune_obs::record("demo.value", 0.5);
//! }
//! let snap = robotune_obs::snapshot();
//! assert_eq!(snap.counter("demo.count"), 2);
//! assert!(ring.drain().len() >= 3);
//! robotune_obs::disable();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod event;
pub mod expo;
pub mod histogram;
pub mod registry;
pub mod report;
pub mod scope;
pub mod sink;
pub mod slo;
pub mod trace;
pub mod tracectx;

pub use event::{Event, EventData};
pub use expo::{render_prometheus, render_prometheus_labeled};
pub use histogram::{HistSummary, Histogram, P2Quantile};
pub use registry::{
    diag, disable, enable, enable_null, enable_ring, flush, global, incr, is_enabled, mark,
    record, reset, snapshot, span, Registry, Snapshot, SpanGuard,
};
pub use report::Report;
pub use scope::{Scope, ScopeGuard, ScopeLabels};
pub use sink::{EventSink, JsonlSink, NullSink, RingBufferSink, TeeSink};
pub use slo::RollingWindow;
pub use trace::{render_chrome_trace, render_self_time, self_times, ChromeTraceSink, SelfTime};
pub use tracectx::{adopt, set_ambient, AdoptGuard, TraceCtx};

use std::path::Path;
use std::sync::Arc;

/// Turns tracing on with a [`JsonlSink`] writing to `path`.
pub fn enable_jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<()> {
    let sink = JsonlSink::create(path)?;
    enable(Arc::new(sink));
    Ok(())
}
