//! Property-based tests of the dense linear algebra.

use proptest::prelude::*;
use robotune_linalg::{dot, sq_dist, Cholesky, Matrix};

/// Random SPD matrix `B Bᵀ + n·I` of the given size.
fn spd(n: usize, seed: u64) -> Matrix {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let b = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() - 0.5);
    let mut a = b.mat_mul(&b.transpose());
    a.add_diagonal(n as f64);
    a
}

proptest! {
    #[test]
    fn cholesky_reconstructs_spd_matrices(n in 1usize..25, seed in 0u64..500) {
        let a = spd(n, seed);
        let ch = Cholesky::factor(&a).expect("SPD by construction");
        prop_assert!(ch.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn cholesky_solve_satisfies_the_system(n in 1usize..25, seed in 0u64..500) {
        let a = spd(n, seed);
        let ch = Cholesky::factor(&a).expect("SPD");
        let rhs: Vec<f64> = (0..n).map(|i| (i as f64) - n as f64 / 2.0).collect();
        let x = ch.solve(&rhs);
        let back = a.mat_vec(&x);
        for (r, b) in rhs.iter().zip(&back) {
            prop_assert!((r - b).abs() < 1e-6, "residual {r} vs {b}");
        }
    }

    #[test]
    fn log_det_matches_the_product_of_pivots(n in 1usize..20, seed in 0u64..500) {
        let a = spd(n, seed);
        let ch = Cholesky::factor(&a).expect("SPD");
        // |A| = Π L[i][i]² — verify via the factor itself.
        let direct: f64 = (0..n).map(|i| ch.l()[(i, i)].ln() * 2.0).sum();
        prop_assert!((ch.log_det() - direct).abs() < 1e-10);
        prop_assert!(ch.log_det().is_finite());
    }

    #[test]
    fn matmul_is_associative_enough(
        dims in (1usize..8, 1usize..8, 1usize..8),
        seed in 0u64..200,
    ) {
        use rand::{Rng, SeedableRng};
        let (m, k, n) = dims;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, k, |_, _| rng.gen::<f64>() - 0.5);
        let b = Matrix::from_fn(k, n, |_, _| rng.gen::<f64>() - 0.5);
        let c = Matrix::from_fn(n, 3, |_, _| rng.gen::<f64>() - 0.5);
        let left = a.mat_mul(&b).mat_mul(&c);
        let right = a.mat_mul(&b.mat_mul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-9);
    }

    #[test]
    fn transpose_respects_matvec(m in 1usize..10, n in 1usize..10, seed in 0u64..200) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(m, n, |_, _| rng.gen::<f64>() - 0.5);
        let x: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let y: Vec<f64> = (0..m).map(|_| rng.gen::<f64>()).collect();
        // ⟨A x, y⟩ = ⟨x, Aᵀ y⟩.
        let lhs = dot(&a.mat_vec(&x), &y);
        let rhs = dot(&x, &a.transpose().mat_vec(&y));
        prop_assert!((lhs - rhs).abs() < 1e-9);
    }

    #[test]
    fn sq_dist_is_a_metric_squared(
        a in proptest::collection::vec(-10.0f64..10.0, 1..8),
        t in -10.0f64..10.0,
    ) {
        prop_assert_eq!(sq_dist(&a, &a), 0.0);
        let b: Vec<f64> = a.iter().map(|&x| x + t).collect();
        let expect = t * t * a.len() as f64;
        prop_assert!((sq_dist(&a, &b) - expect).abs() < 1e-8);
        prop_assert!((sq_dist(&a, &b) - sq_dist(&b, &a)).abs() < 1e-12);
    }
}
