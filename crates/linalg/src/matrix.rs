//! A dense, row-major `f64` matrix.

use std::ops::{Index, IndexMut};

/// Dense row-major matrix of `f64`.
///
/// Row-major storage keeps GP kernel-row construction cache-friendly: the
/// inner loops of both the Cholesky factorisation and posterior prediction
/// walk along rows.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        debug_assert!(i < self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        debug_assert!(i < self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Raw row-major backing slice.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Borrows row `k` immutably and row `i` mutably at the same time —
    /// the split a blocked forward substitution needs when eliminating
    /// row `i` against an already-solved row `k`.
    ///
    /// # Panics
    ///
    /// Panics unless `k < i < self.rows()`.
    #[inline]
    pub fn split_rows(&mut self, k: usize, i: usize) -> (&[f64], &mut [f64]) {
        assert!(k < i && i < self.rows, "split_rows requires k < i < rows");
        let (head, tail) = self.data.split_at_mut(i * self.cols);
        (
            &head[k * self.cols..(k + 1) * self.cols],
            &mut tail[..self.cols],
        )
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn mat_vec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "mat_vec: vector length mismatch");
        (0..self.rows).map(|i| crate::dot(self.row(i), v)).collect()
    }

    /// Matrix–matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn mat_mul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "mat_mul: inner dimension mismatch ({} vs {})",
            self.cols, other.rows
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // ikj loop order: streams over `other`'s rows, friendly to row-major.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Adds `v` to every diagonal element (in place). Useful for jitter /
    /// white-noise terms on kernel matrices.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square.
    pub fn add_diagonal(&mut self, v: f64) {
        assert_eq!(self.rows, self.cols, "add_diagonal requires a square matrix");
        for i in 0..self.rows {
            self[(i, i)] += v;
        }
    }

    /// Maximum absolute difference against another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let i = Matrix::identity(2);
        assert_eq!(i.mat_mul(&a), a);
    }

    #[test]
    fn mat_vec_basic() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a.mat_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn mat_mul_known() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Matrix::from_vec(2, 2, vec![5.0, 6.0, 7.0, 8.0]);
        let c = a.mat_mul(&b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = Matrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_diagonal_only_touches_diagonal() {
        let mut a = Matrix::zeros(3, 3);
        a.add_diagonal(2.5);
        for i in 0..3 {
            for j in 0..3 {
                let expect = if i == j { 2.5 } else { 0.0 };
                assert_eq!(a[(i, j)], expect);
            }
        }
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn mat_mul_shape_check() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        a.mat_mul(&b);
    }
}
