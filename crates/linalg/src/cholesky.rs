//! Cholesky factorisation of symmetric positive-definite matrices.

use crate::{LinalgError, Matrix};

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// This is the numerical core of GP regression: the kernel matrix is
/// factored once per model fit, after which posterior means, variances and
/// the log marginal likelihood are all cheap triangular solves.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read, so callers may leave the
    /// upper triangle unspecified. Fails with
    /// [`LinalgError::NotPositiveDefinite`] when a pivot becomes
    /// non-positive — GP callers respond by increasing the jitter.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not square.
    pub fn factor(a: &Matrix) -> Result<Self, LinalgError> {
        assert_eq!(a.rows(), a.cols(), "Cholesky requires a square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                // sum = A[i][j] - Σ_{k<j} L[i][k] * L[j][k]
                let mut sum = a[(i, j)];
                let (li, lj) = (l.row(i), l.row(j));
                for k in 0..j {
                    sum -= li[k] * lj[k];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(LinalgError::NotPositiveDefinite(i));
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    #[inline]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// The lower-triangular factor `L`.
    #[inline]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `L y = b` by forward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` does not match the factor's dimension.
    pub fn solve_lower(&self, b: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(b.len(), n, "solve_lower: rhs length mismatch");
        let mut y = vec![0.0; n];
        for i in 0..n {
            let row = self.l.row(i);
            let mut sum = b[i];
            for k in 0..i {
                sum -= row[k] * y[k];
            }
            y[i] = sum / row[i];
        }
        y
    }

    /// Solves `L Y = B` for many right-hand sides at once by blocked
    /// forward substitution: `b` holds one RHS per *column*, and the
    /// returned matrix holds the corresponding solution columns.
    ///
    /// This is the batched-prediction workhorse: eliminating row `i`
    /// updates every column in one contiguous row sweep, so the whole
    /// batch costs one pass over `L` instead of `m` passes. Each column's
    /// arithmetic (order of operations included) is identical to
    /// [`Cholesky::solve_lower`] on that column alone.
    ///
    /// # Panics
    ///
    /// Panics if `b.rows()` does not match the factor's dimension.
    pub fn solve_lower_multi(&self, b: &Matrix) -> Matrix {
        let n = self.dim();
        assert_eq!(b.rows(), n, "solve_lower_multi: rhs row count mismatch");
        let mut y = b.clone();
        for i in 0..n {
            let lrow = self.l.row(i);
            for (k, &lik) in lrow.iter().enumerate().take(i) {
                // Split borrow: row k is fully solved, row i is being eliminated.
                let (solved, active) = y.split_rows(k, i);
                for (yi, &yk) in active.iter_mut().zip(solved) {
                    *yi -= lik * yk;
                }
            }
            let lii = lrow[i];
            for v in y.row_mut(i) {
                *v /= lii;
            }
        }
        y
    }

    /// Solves `Lᵀ x = y` by backward substitution.
    ///
    /// # Panics
    ///
    /// Panics if `y.len()` does not match the factor's dimension.
    pub fn solve_upper(&self, y: &[f64]) -> Vec<f64> {
        let n = self.dim();
        assert_eq!(y.len(), n, "solve_upper: rhs length mismatch");
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for (k, xk) in x.iter().enumerate().take(n).skip(i + 1) {
                sum -= self.l[(k, i)] * xk;
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// Solves `A x = b` (i.e. `L Lᵀ x = b`).
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        self.solve_upper(&self.solve_lower(b))
    }

    /// `log |A| = 2 Σ log L[i][i]`, needed by the GP marginal likelihood.
    pub fn log_det(&self) -> f64 {
        (0..self.dim()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }

    /// Reconstructs `A = L Lᵀ` (mainly for testing).
    pub fn reconstruct(&self) -> Matrix {
        let lt = self.l.transpose();
        self.l.mat_mul(&lt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> Matrix {
        Matrix::from_vec(
            3,
            3,
            vec![4.0, 12.0, -16.0, 12.0, 37.0, -43.0, -16.0, -43.0, 98.0],
        )
    }

    #[test]
    fn factor_known_matrix() {
        // Classic example: L = [[2,0,0],[6,1,0],[-8,5,3]].
        let ch = Cholesky::factor(&spd_example()).unwrap();
        let l = ch.l();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-12);
        assert!((l[(1, 0)] - 6.0).abs() < 1e-12);
        assert!((l[(1, 1)] - 1.0).abs() < 1e-12);
        assert!((l[(2, 0)] + 8.0).abs() < 1e-12);
        assert!((l[(2, 1)] - 5.0).abs() < 1e-12);
        assert!((l[(2, 2)] - 3.0).abs() < 1e-12);
        assert!(l[(0, 1)] == 0.0 && l[(0, 2)] == 0.0 && l[(1, 2)] == 0.0);
    }

    #[test]
    fn reconstruct_matches_input() {
        let a = spd_example();
        let ch = Cholesky::factor(&a).unwrap();
        assert!(ch.reconstruct().max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn solve_matches_direct() {
        let a = spd_example();
        let ch = Cholesky::factor(&a).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x = ch.solve(&b);
        let back = a.mat_vec(&x);
        for (bi, yi) in b.iter().zip(&back) {
            assert!((bi - yi).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn log_det_known() {
        // det = (2*1*3)^2 = 36 → log det = ln 36.
        let ch = Cholesky::factor(&spd_example()).unwrap();
        assert!((ch.log_det() - 36.0f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        match Cholesky::factor(&a) {
            Err(LinalgError::NotPositiveDefinite(i)) => assert_eq!(i, 1),
            other => panic!("expected NotPositiveDefinite, got {other:?}"),
        }
    }

    #[test]
    fn solve_lower_multi_matches_columnwise_solves() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(9);
        for (n, m) in [(1usize, 1usize), (3, 2), (12, 7), (30, 16)] {
            let b = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() - 0.5);
            let mut a = b.mat_mul(&b.transpose());
            a.add_diagonal(n as f64);
            let ch = Cholesky::factor(&a).expect("SPD by construction");
            let rhs = Matrix::from_fn(n, m, |i, j| (i as f64 - 0.3 * j as f64).sin());
            let batch = ch.solve_lower_multi(&rhs);
            for j in 0..m {
                let col: Vec<f64> = (0..n).map(|i| rhs[(i, j)]).collect();
                let single = ch.solve_lower(&col);
                for i in 0..n {
                    // Bit-identical: the blocked solve performs each
                    // column's operations in the same order.
                    assert_eq!(batch[(i, j)], single[i], "({i},{j}) of {n}x{m}");
                }
            }
        }
    }

    #[test]
    fn random_spd_round_trip() {
        use rand::Rng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        use rand::SeedableRng;
        for n in [1usize, 2, 5, 12, 30] {
            // Build SPD as B Bᵀ + n·I.
            let b = Matrix::from_fn(n, n, |_, _| rng.gen::<f64>() - 0.5);
            let mut a = b.mat_mul(&b.transpose());
            a.add_diagonal(n as f64);
            let ch = Cholesky::factor(&a).expect("SPD by construction");
            assert!(ch.reconstruct().max_abs_diff(&a) < 1e-8);
            let rhs: Vec<f64> = (0..n).map(|i| i as f64 - 1.5).collect();
            let x = ch.solve(&rhs);
            let back = a.mat_vec(&x);
            for (r, y) in rhs.iter().zip(&back) {
                assert!((r - y).abs() < 1e-7);
            }
        }
    }
}
