//! Minimal dense linear algebra for the ROBOTune reproduction.
//!
//! Gaussian-process regression needs exactly one non-trivial factorisation —
//! the Cholesky decomposition of a symmetric positive-definite kernel matrix
//! — plus triangular solves and a log-determinant. Rather than pulling in a
//! full BLAS/LAPACK stack, this crate implements those pieces directly over
//! a simple row-major [`Matrix`]. Sizes in this workspace top out around a
//! few hundred rows (BO budgets are ~100 evaluations), where a straight
//! O(n³/3) Cholesky is more than fast enough.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cholesky;
pub mod matrix;

pub use cholesky::Cholesky;
pub use matrix::Matrix;

/// Errors reported by factorisations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not (numerically) positive definite; holds the pivot
    /// index where the factorisation broke down.
    NotPositiveDefinite(usize),
    /// The operation received matrices of incompatible dimensions.
    DimensionMismatch {
        /// What the caller tried to do.
        op: &'static str,
        /// Dimension that was expected.
        expected: usize,
        /// Dimension that was supplied.
        got: usize,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotPositiveDefinite(i) => {
                write!(f, "matrix is not positive definite (pivot {i})")
            }
            LinalgError::DimensionMismatch { op, expected, got } => {
                write!(f, "dimension mismatch in {op}: expected {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Dot product of two equally-sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Squared Euclidean distance between two equally-sized slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_dist: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    fn sq_dist_basic() {
        assert_eq!(sq_dist(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        assert_eq!(sq_dist(&[1.0], &[1.0]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
