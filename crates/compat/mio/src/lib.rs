//! Offline stand-in for the `mio` crate: the readiness-polling subset
//! the ROBOTune service reactor uses.
//!
//! This build environment has no registry access, so — like the other
//! crates under `crates/compat/` — this is a small, zero-dependency
//! reimplementation of the pieces of the real crate's API the workspace
//! actually needs:
//!
//! - [`Poll`] — a level-triggered readiness queue over raw file
//!   descriptors: `epoll(7)` on Linux, with a portable `poll(2)`
//!   fallback for other unixes (selectable on Linux too, for tests);
//! - [`Events`] / [`Event`] / [`Token`] / [`Interest`] — the readiness
//!   vocabulary;
//! - [`Waker`] — a cross-thread wakeup handle (socketpair-backed) that
//!   interrupts a blocked [`Poll::poll`] and is drained automatically.
//!
//! The syscalls are reached through `extern "C"` declarations against
//! the libc that `std` already links; no external crate is involved.
//! Everything is level-triggered: a ready fd keeps reporting until the
//! condition (unread bytes, writable buffer space) clears, which is the
//! simplest model for a correctness-first reactor.
//!
//! Not supported (not needed here): edge triggering, oneshot
//! registrations, Windows, and mio's `event::Source` trait — sources
//! are anything `AsRawFd`.

#![cfg(unix)]
#![warn(missing_docs)]

use std::io::{self, Read, Write};
use std::mem::ManuallyDrop;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};
use std::os::raw::{c_int, c_ulong};
use std::os::unix::net::UnixStream;
use std::sync::Mutex;
use std::time::Duration;

/// Identifies one registration; carried back on every [`Event`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Token(pub usize);

/// Which readiness conditions a registration subscribes to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest(u8);

impl Interest {
    /// Interested in the fd becoming readable.
    pub const READABLE: Interest = Interest(0b01);
    /// Interested in the fd becoming writable.
    pub const WRITABLE: Interest = Interest(0b10);

    /// Combines two interests.
    #[must_use]
    pub const fn add(self, other: Interest) -> Interest {
        Interest(self.0 | other.0)
    }

    /// Whether readable readiness is included.
    pub const fn is_readable(self) -> bool {
        self.0 & Self::READABLE.0 != 0
    }

    /// Whether writable readiness is included.
    pub const fn is_writable(self) -> bool {
        self.0 & Self::WRITABLE.0 != 0
    }
}

impl std::ops::BitOr for Interest {
    type Output = Interest;
    fn bitor(self, rhs: Interest) -> Interest {
        self.add(rhs)
    }
}

/// One readiness notification.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    token: Token,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    /// The token the fd was registered with.
    pub fn token(&self) -> Token {
        self.token
    }

    /// Readable (or peer-closed / errored: reads will not block — they
    /// observe the EOF or the error, which is how mio reports those).
    pub fn is_readable(&self) -> bool {
        self.readable || self.error
    }

    /// Writable (or errored: writes will not block).
    pub fn is_writable(&self) -> bool {
        self.writable || self.error
    }

    /// An error or hangup condition was reported for the fd.
    pub fn is_error(&self) -> bool {
        self.error
    }
}

/// A reusable buffer of readiness events.
#[derive(Debug)]
pub struct Events {
    inner: Vec<Event>,
    capacity: usize,
}

impl Events {
    /// A buffer that accepts up to `capacity` events per poll.
    pub fn with_capacity(capacity: usize) -> Events {
        Events { inner: Vec::with_capacity(capacity), capacity: capacity.max(1) }
    }

    /// Iterates over the events of the last poll.
    pub fn iter(&self) -> std::slice::Iter<'_, Event> {
        self.inner.iter()
    }

    /// Number of events captured by the last poll.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the last poll captured nothing.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    fn clear(&mut self) {
        self.inner.clear();
    }
}

impl<'a> IntoIterator for &'a Events {
    type Item = &'a Event;
    type IntoIter = std::slice::Iter<'a, Event>;
    fn into_iter(self) -> Self::IntoIter {
        self.inner.iter()
    }
}

/// Which kernel mechanism backs a [`Poll`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// `epoll(7)`: O(ready) wakeups, Linux only. The default on Linux.
    Epoll,
    /// `poll(2)`: O(registered) scans, portable across unixes.
    Poll,
}

// ---------------------------------------------------------------------
// Raw syscall surface. These symbols come from the libc that std links;
// the structs mirror the kernel ABI.
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod sys_epoll {
    use std::os::raw::c_int;

    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;

    pub const EPOLL_CTL_ADD: c_int = 1;
    pub const EPOLL_CTL_DEL: c_int = 2;
    pub const EPOLL_CTL_MOD: c_int = 3;
    pub const EPOLL_CLOEXEC: c_int = 0o2000000;

    // On x86-64 the kernel packs epoll_event to 12 bytes; other
    // architectures use natural alignment.
    #[cfg(target_arch = "x86_64")]
    #[repr(C, packed)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    #[cfg(not(target_arch = "x86_64"))]
    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        pub fn epoll_create1(flags: c_int) -> c_int;
        pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        pub fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
    }
}

mod sys_poll {
    use std::os::raw::{c_int, c_ulong};

    pub const POLLIN: i16 = 0x001;
    pub const POLLOUT: i16 = 0x004;
    pub const POLLERR: i16 = 0x008;
    pub const POLLHUP: i16 = 0x010;
    pub const POLLNVAL: i16 = 0x020;

    #[repr(C)]
    #[derive(Clone, Copy)]
    pub struct PollFd {
        pub fd: c_int,
        pub events: i16,
        pub revents: i16,
    }

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }
}

fn timeout_ms(timeout: Option<Duration>) -> c_int {
    match timeout {
        None => -1,
        Some(d) => {
            // Round up so sub-millisecond timeouts still sleep.
            let ms = d.as_millis().saturating_add(u128::from(d.subsec_nanos() % 1_000_000 != 0));
            c_int::try_from(ms).unwrap_or(c_int::MAX)
        }
    }
}

// ---------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------

#[cfg(target_os = "linux")]
struct EpollBackend {
    epfd: OwnedFd,
}

#[cfg(target_os = "linux")]
impl EpollBackend {
    fn new() -> io::Result<EpollBackend> {
        // SAFETY: plain syscall; the returned fd (if valid) is owned
        // exclusively by the OwnedFd below.
        let fd = unsafe { sys_epoll::epoll_create1(sys_epoll::EPOLL_CLOEXEC) };
        if fd < 0 {
            return Err(io::Error::last_os_error());
        }
        // SAFETY: fd is a freshly created, valid epoll descriptor.
        Ok(EpollBackend { epfd: unsafe { OwnedFd::from_raw_fd(fd) } })
    }

    fn interest_bits(interest: Interest) -> u32 {
        let mut bits = sys_epoll::EPOLLRDHUP;
        if interest.is_readable() {
            bits |= sys_epoll::EPOLLIN;
        }
        if interest.is_writable() {
            bits |= sys_epoll::EPOLLOUT;
        }
        bits
    }

    fn ctl(&self, op: c_int, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut ev = sys_epoll::EpollEvent {
            events: Self::interest_bits(interest),
            data: token.0 as u64,
        };
        // SAFETY: epfd and fd are valid descriptors; ev outlives the call.
        let rc = unsafe { sys_epoll::epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let mut raw =
            vec![sys_epoll::EpollEvent { events: 0, data: 0 }; events.capacity];
        // SAFETY: raw is a valid, writable buffer of `capacity` events.
        let n = unsafe {
            sys_epoll::epoll_wait(
                self.epfd.as_raw_fd(),
                raw.as_mut_ptr(),
                c_int::try_from(raw.len()).unwrap_or(c_int::MAX),
                timeout_ms(timeout),
            )
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            events.inner.push(Event {
                token: Token(ev.data as usize),
                readable: bits & (sys_epoll::EPOLLIN | sys_epoll::EPOLLRDHUP) != 0,
                writable: bits & sys_epoll::EPOLLOUT != 0,
                error: bits & (sys_epoll::EPOLLERR | sys_epoll::EPOLLHUP) != 0,
            });
        }
        Ok(n as usize)
    }
}

/// The portable fallback: a registration table scanned by `poll(2)`.
struct PollBackend {
    fds: Mutex<Vec<(RawFd, Token, Interest)>>,
}

impl PollBackend {
    fn new() -> PollBackend {
        PollBackend { fds: Mutex::new(Vec::new()) }
    }

    fn table(&self) -> std::sync::MutexGuard<'_, Vec<(RawFd, Token, Interest)>> {
        self.fds.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn register(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut t = self.table();
        if t.iter().any(|(f, _, _)| *f == fd) {
            return Err(io::Error::new(io::ErrorKind::AlreadyExists, "fd already registered"));
        }
        t.push((fd, token, interest));
        Ok(())
    }

    fn reregister(&self, fd: RawFd, token: Token, interest: Interest) -> io::Result<()> {
        let mut t = self.table();
        match t.iter_mut().find(|(f, _, _)| *f == fd) {
            Some(slot) => {
                *slot = (fd, token, interest);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
        }
    }

    fn deregister(&self, fd: RawFd) -> io::Result<()> {
        let mut t = self.table();
        let before = t.len();
        t.retain(|(f, _, _)| *f != fd);
        if t.len() == before {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        Ok(())
    }

    fn wait(&self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        let snapshot: Vec<(RawFd, Token, Interest)> = self.table().clone();
        let mut raw: Vec<sys_poll::PollFd> = snapshot
            .iter()
            .map(|(fd, _, interest)| {
                let mut bits = 0i16;
                if interest.is_readable() {
                    bits |= sys_poll::POLLIN;
                }
                if interest.is_writable() {
                    bits |= sys_poll::POLLOUT;
                }
                sys_poll::PollFd { fd: *fd, events: bits, revents: 0 }
            })
            .collect();
        // SAFETY: raw is a valid pollfd array of the stated length.
        let n = unsafe {
            sys_poll::poll(raw.as_mut_ptr(), raw.len() as c_ulong, timeout_ms(timeout))
        };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        let mut pushed = 0usize;
        for (pfd, (_, token, _)) in raw.iter().zip(&snapshot) {
            if pfd.revents == 0 {
                continue;
            }
            if pushed == events.capacity {
                break;
            }
            events.inner.push(Event {
                token: *token,
                readable: pfd.revents & sys_poll::POLLIN != 0,
                writable: pfd.revents & sys_poll::POLLOUT != 0,
                error: pfd.revents
                    & (sys_poll::POLLERR | sys_poll::POLLHUP | sys_poll::POLLNVAL)
                    != 0,
            });
            pushed += 1;
        }
        Ok(pushed)
    }
}

enum Backend {
    #[cfg(target_os = "linux")]
    Epoll(EpollBackend),
    Poll(PollBackend),
}

/// A level-triggered readiness queue over raw file descriptors.
///
/// Sources are anything [`AsRawFd`] — `TcpListener`, `TcpStream`,
/// `UnixStream`, … The caller must keep a registered source alive (and
/// nonblocking) until it is deregistered or dropped; closing an fd
/// silently removes it from the kernel set.
pub struct Poll {
    backend: Backend,
    /// Registered waker receive-fds, drained automatically when their
    /// token fires so level-triggered wakeups self-reset.
    wakers: Mutex<Vec<(Token, RawFd)>>,
}

impl Poll {
    /// A poller on the platform default backend (`epoll` on Linux,
    /// `poll(2)` elsewhere).
    pub fn new() -> io::Result<Poll> {
        #[cfg(target_os = "linux")]
        {
            Poll::with_backend(BackendKind::Epoll)
        }
        #[cfg(not(target_os = "linux"))]
        {
            Poll::with_backend(BackendKind::Poll)
        }
    }

    /// A poller on an explicit backend. `Epoll` errors with
    /// [`io::ErrorKind::Unsupported`] off Linux.
    pub fn with_backend(kind: BackendKind) -> io::Result<Poll> {
        let backend = match kind {
            BackendKind::Epoll => {
                #[cfg(target_os = "linux")]
                {
                    Backend::Epoll(EpollBackend::new()?)
                }
                #[cfg(not(target_os = "linux"))]
                {
                    return Err(io::Error::new(
                        io::ErrorKind::Unsupported,
                        "epoll is Linux-only; use BackendKind::Poll",
                    ));
                }
            }
            BackendKind::Poll => Backend::Poll(PollBackend::new()),
        };
        Ok(Poll { backend, wakers: Mutex::new(Vec::new()) })
    }

    /// Which backend this poller runs on.
    pub fn backend(&self) -> BackendKind {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(_) => BackendKind::Epoll,
            Backend::Poll(_) => BackendKind::Poll,
        }
    }

    /// Subscribes `source` under `token`. The source must already be
    /// nonblocking for a correct reactor (readiness ≠ a full buffer).
    pub fn register(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => {
                b.ctl(sys_epoll::EPOLL_CTL_ADD, source.as_raw_fd(), token, interest)
            }
            Backend::Poll(b) => b.register(source.as_raw_fd(), token, interest),
        }
    }

    /// Replaces the token/interest of an existing registration.
    pub fn reregister(
        &self,
        source: &impl AsRawFd,
        token: Token,
        interest: Interest,
    ) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => {
                b.ctl(sys_epoll::EPOLL_CTL_MOD, source.as_raw_fd(), token, interest)
            }
            Backend::Poll(b) => b.reregister(source.as_raw_fd(), token, interest),
        }
    }

    /// Removes a registration.
    pub fn deregister(&self, source: &impl AsRawFd) -> io::Result<()> {
        match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => {
                b.ctl(sys_epoll::EPOLL_CTL_DEL, source.as_raw_fd(), Token(0), Interest(0))
            }
            Backend::Poll(b) => b.deregister(source.as_raw_fd()),
        }
    }

    /// Blocks until at least one registered fd is ready, the timeout
    /// elapses, or a [`Waker`] fires. Events land in `events` (cleared
    /// first); returns how many. `EINTR` returns `Ok(0)`.
    pub fn poll(&mut self, events: &mut Events, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let n = match &self.backend {
            #[cfg(target_os = "linux")]
            Backend::Epoll(b) => b.wait(events, timeout)?,
            Backend::Poll(b) => b.wait(events, timeout)?,
        };
        // Self-resetting wakeups: drain any waker whose token fired so
        // the level-triggered readiness clears.
        if n > 0 {
            let wakers = self.wakers.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if !wakers.is_empty() {
                for ev in events.iter() {
                    if let Some((_, fd)) = wakers.iter().find(|(t, _)| *t == ev.token) {
                        drain_fd(*fd);
                    }
                }
            }
        }
        Ok(n)
    }

    fn note_waker(&self, token: Token, fd: RawFd) {
        self.wakers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push((token, fd));
    }
}

/// Reads and discards everything currently buffered on `fd`.
fn drain_fd(fd: RawFd) {
    // SAFETY: the fd belongs to a live Waker (its streams outlive the
    // Poll registration); ManuallyDrop prevents a double close.
    let mut stream = ManuallyDrop::new(unsafe { UnixStream::from_raw_fd(fd) });
    let mut sink = [0u8; 64];
    while let Ok(n) = stream.read(&mut sink) {
        if n == 0 {
            break;
        }
    }
}

/// Wakes a [`Poll`] blocked on another thread.
///
/// Backed by a nonblocking socketpair: `wake` writes a byte to the send
/// half; the receive half is registered with the poll under the given
/// token, and [`Poll::poll`] drains it automatically when it fires.
/// Keep the `Waker` alive as long as the poll uses it.
pub struct Waker {
    tx: UnixStream,
    _rx: UnixStream,
}

impl Waker {
    /// Creates a waker registered with `poll` under `token`.
    pub fn new(poll: &Poll, token: Token) -> io::Result<Waker> {
        let (tx, rx) = UnixStream::pair()?;
        tx.set_nonblocking(true)?;
        rx.set_nonblocking(true)?;
        poll.register(&rx, token, Interest::READABLE)?;
        poll.note_waker(token, rx.as_raw_fd());
        Ok(Waker { tx, _rx: rx })
    }

    /// Makes the poll return promptly. Cheap, thread-safe, coalescing:
    /// a full pipe means a wakeup is already pending.
    pub fn wake(&self) -> io::Result<()> {
        match (&self.tx).write(&[1u8]) {
            Ok(_) => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(()),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    fn backends() -> Vec<BackendKind> {
        #[cfg(target_os = "linux")]
        {
            vec![BackendKind::Epoll, BackendKind::Poll]
        }
        #[cfg(not(target_os = "linux"))]
        {
            vec![BackendKind::Poll]
        }
    }

    #[test]
    fn accept_readiness_reports_the_right_token() {
        for kind in backends() {
            let mut poll = Poll::with_backend(kind).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            listener.set_nonblocking(true).unwrap();
            poll.register(&listener, Token(7), Interest::READABLE).unwrap();

            let mut events = Events::with_capacity(8);
            // Nothing pending: a short timeout elapses with no events.
            poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(events.is_empty(), "{kind:?}: spurious readiness");

            let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(
                events.iter().any(|e| e.token() == Token(7) && e.is_readable()),
                "{kind:?}: accept readiness missing"
            );
        }
    }

    #[test]
    fn write_interest_and_reregister_work() {
        for kind in backends() {
            let mut poll = Poll::with_backend(kind).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            let (server, _) = listener.accept().unwrap();

            poll.register(&client, Token(1), Interest::READABLE).unwrap();
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(events.is_empty(), "{kind:?}: idle socket reported readable");

            // An idle connected socket is immediately writable.
            poll.reregister(&client, Token(2), Interest::READABLE | Interest::WRITABLE)
                .unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(
                events.iter().any(|e| e.token() == Token(2) && e.is_writable()),
                "{kind:?}: write readiness missing"
            );

            // Incoming bytes flip readable on.
            (&server).write_all(b"hi").unwrap();
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(
                events.iter().any(|e| e.token() == Token(2) && e.is_readable()),
                "{kind:?}: read readiness missing"
            );

            poll.deregister(&client).unwrap();
            poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(events.is_empty(), "{kind:?}: deregistered fd still reported");
        }
    }

    #[test]
    fn waker_interrupts_a_blocked_poll_and_self_resets() {
        for kind in backends() {
            let mut poll = Poll::with_backend(kind).unwrap();
            let waker = std::sync::Arc::new(Waker::new(&poll, Token(9)).unwrap());
            let mut events = Events::with_capacity(8);

            let w = waker.clone();
            let handle = std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(30));
                w.wake().unwrap();
            });
            let start = Instant::now();
            poll.poll(&mut events, Some(Duration::from_secs(10))).unwrap();
            assert!(start.elapsed() < Duration::from_secs(5), "{kind:?}: wake lost");
            assert!(
                events.iter().any(|e| e.token() == Token(9) && e.is_readable()),
                "{kind:?}: waker event missing"
            );
            handle.join().unwrap();

            // Drained: without another wake the next poll times out.
            poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(events.is_empty(), "{kind:?}: waker did not self-reset");

            // Coalescing: many wakes, one drained event, still resets.
            for _ in 0..100 {
                waker.wake().unwrap();
            }
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(!events.is_empty(), "{kind:?}: coalesced wake lost");
            poll.poll(&mut events, Some(Duration::from_millis(10))).unwrap();
            assert!(events.is_empty(), "{kind:?}: coalesced waker did not reset");
        }
    }

    #[test]
    fn peer_close_is_reported_as_readable() {
        for kind in backends() {
            let mut poll = Poll::with_backend(kind).unwrap();
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            client.set_nonblocking(true).unwrap();
            let (server, _) = listener.accept().unwrap();
            poll.register(&client, Token(3), Interest::READABLE).unwrap();
            drop(server);
            let mut events = Events::with_capacity(8);
            poll.poll(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert!(
                events.iter().any(|e| e.token() == Token(3) && e.is_readable()),
                "{kind:?}: close must surface as readable (EOF)"
            );
        }
    }
}
