//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset the workspace benches use: [`Criterion`],
//! [`BenchmarkGroup`] with `bench_function`/`sample_size`/`finish`,
//! [`Bencher::iter`] and [`Bencher::iter_batched`], [`BatchSize`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`]
//! macros. Measurement is simple wall-clock sampling (median of N
//! samples after a short warm-up) rather than criterion's full
//! statistical pipeline, but the report prints per-iteration times so
//! relative comparisons (e.g. no-op-sink overhead vs baseline) are
//! still meaningful.
//!
//! Mirroring upstream behaviour under `cargo test`: when the harness is
//! invoked without `--bench` in its argument list, every benchmark runs
//! exactly once as a smoke test instead of being measured.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How `iter_batched` amortises setup cost. The stand-in runs every
/// batch at size one, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input for every single iteration.
    PerIteration,
}

/// Timing loop handle passed to each benchmark closure.
pub struct Bencher {
    /// Number of timed samples (one routine call each).
    samples: usize,
    /// When true, run the routine once and skip measurement.
    smoke: bool,
    /// Median per-call duration, filled in by `iter`/`iter_batched`.
    result: Option<Duration>,
}

impl Bencher {
    /// Measures `routine`, called once per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.smoke {
            black_box(routine());
            return;
        }
        // Warm-up: a few unmeasured calls to fault in caches/allocs.
        for _ in 0..3.min(self.samples) {
            black_box(routine());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }

    /// Measures `routine` with a fresh `setup()` input per sample;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.smoke {
            black_box(routine(setup()));
            return;
        }
        for _ in 0..3.min(self.samples) {
            black_box(routine(setup()));
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            times.push(start.elapsed());
        }
        times.sort_unstable();
        self.result = Some(times[times.len() / 2]);
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark if its full id matches the harness filter.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id);
        if !self.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: self.sample_size,
            smoke: self.criterion.smoke,
            result: None,
        };
        f(&mut b);
        if self.criterion.smoke {
            println!("{full}: smoke ok");
        } else if let Some(median) = b.result {
            println!(
                "{full}: median {} over {} samples",
                format_duration(median),
                self.sample_size
            );
        }
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Benchmark harness entry point.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        // Real criterion receives `--bench` from cargo when run as a
        // benchmark; under `cargo test` it is absent and benches run in
        // one-shot smoke mode.
        let smoke = !args.iter().any(|a| a == "--bench");
        // First non-flag positional argument is a substring filter.
        let filter = args
            .iter()
            .find(|a| !a.starts_with('-') && *a != "--bench")
            .cloned();
        Criterion {
            filter,
            smoke,
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    fn matches(&self, full_id: &str) -> bool {
        match &self.filter {
            Some(f) => full_id.contains(f.as_str()),
            None => true,
        }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size,
        }
    }

    /// Runs one ungrouped benchmark.
    pub fn bench_function<S: Into<String>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: S,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut g = BenchmarkGroup {
            criterion: self,
            name: id.clone(),
            sample_size: 0, // replaced below; need criterion borrow first
        };
        g.sample_size = g.criterion.default_sample_size;
        // Reuse the group path but without the "group/" prefix doubling:
        // upstream ungrouped ids have no slash, so emulate that.
        let full = id;
        if !g.criterion.matches(&full) {
            return self;
        }
        let mut b = Bencher {
            samples: g.sample_size,
            smoke: g.criterion.smoke,
            result: None,
        };
        let mut f = f;
        f(&mut b);
        if g.criterion.smoke {
            println!("{full}: smoke ok");
        } else if let Some(median) = b.result {
            println!(
                "{full}: median {} over {} samples",
                format_duration(median),
                g.sample_size
            );
        }
        self
    }
}

/// Declares a benchmark group function list, upstream-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the harness `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_smoke_runs_once() {
        let mut calls = 0usize;
        let mut b = Bencher {
            samples: 10,
            smoke: true,
            result: None,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
        assert!(b.result.is_none());
    }

    #[test]
    fn bencher_measures_median() {
        let mut b = Bencher {
            samples: 5,
            smoke: false,
            result: None,
        };
        b.iter(|| std::hint::black_box(3u64.pow(7)));
        assert!(b.result.is_some());
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut made = 0usize;
        let mut b = Bencher {
            samples: 4,
            smoke: false,
            result: None,
        };
        b.iter_batched(
            || {
                made += 1;
                vec![1u8; 16]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        // 3 warm-up + 4 measured setups.
        assert_eq!(made, 7);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert_eq!(format_duration(Duration::from_micros(3)), "3.000 µs");
        assert_eq!(format_duration(Duration::from_millis(5)), "5.000 ms");
    }
}
