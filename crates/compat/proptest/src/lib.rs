//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the workspace's property tests use — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map`,
//! range/tuple/`Just`/`any` strategies, [`collection::vec`], and the
//! `prop_assert*` macros — as plain randomised testing. Failing cases are
//! reported with their case number and the generated inputs are
//! reproducible (the RNG seed is derived from the test name), but there is
//! **no shrinking**: a failure reports the raw case that triggered it.
//!
//! Case count defaults to 256, matching upstream; override per block with
//! `#![proptest_config(ProptestConfig::with_cases(n))]` or globally with
//! the `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Strategy trait and combinators.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred`, retrying up to 1000
        /// times.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            whence: &'static str,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, whence, pred }
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        whence: &'static str,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1000 candidates: {}", self.whence);
        }
    }

    /// Constant strategy: always yields a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if `arms` is empty.
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f64, usize, u64, u32, i64, i32);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut StdRng) -> u64 {
            rng.gen::<u64>()
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut StdRng) -> usize {
            rng.gen::<usize>()
        }
    }

    impl Arbitrary for f64 {
        /// Finite values spanning several orders of magnitude, including
        /// negatives and exact zero.
        fn arbitrary(rng: &mut StdRng) -> f64 {
            match rng.gen_range(0usize..8) {
                0 => 0.0,
                1 => rng.gen::<f64>(),
                2 => -rng.gen::<f64>(),
                _ => {
                    let mag = rng.gen_range(-30.0f64..30.0);
                    let v = rng.gen::<f64>() * mag.exp2();
                    if rng.gen::<bool>() {
                        v
                    } else {
                        -v
                    }
                }
            }
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// An arbitrary value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Length specification for [`vec`]: an exact `usize` or a `Range`.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.size.0.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs (no other knobs are supported).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }
}

/// One-stop imports, mirroring upstream's prelude.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub fn seed_for_test(name: &str, case: u32) -> u64 {
    // FNV-1a over the test name, mixed with the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Declares property tests. Each function body runs for the configured
/// number of cases with fresh inputs drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr) $(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),* $(,)?) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..cfg.cases {
                let mut prop_rng = <::rand::rngs::StdRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for_test(concat!(module_path!(), "::", stringify!($name)), case),
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut prop_rng);
                )*
                let _ = case;
                $body
            }
        }
        $crate::proptest! { @cfg ($cfg) $($rest)* }
    };
    (@cfg ($cfg:expr)) => {};
    (@cfg ($cfg:expr) $($rest:tt)*) => {
        compile_error!("proptest! stand-in could not parse a test item; expected `fn name(pat in strategy, ...) { .. }`");
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @cfg (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Asserts a condition inside a property, reporting the stringified
/// condition (and an optional formatted message) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property failed: {}", stringify!($cond));
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(::std::boxed::Box::new($arm)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -1.5f64..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        #[test]
        fn tuples_and_map_compose(v in (1usize..5, 0.0f64..1.0).prop_map(|(n, f)| n as f64 + f)) {
            prop_assert!((1.0..6.0).contains(&v));
        }

        #[test]
        fn vec_respects_size(xs in crate::collection::vec(0.0f64..1.0, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        #[test]
        fn oneof_hits_every_arm(x in prop_oneof![Just(1usize), Just(2usize)]) {
            prop_assert!(x == 1 || x == 2);
        }
    }

    #[test]
    fn seeds_are_stable() {
        assert_eq!(crate::seed_for_test("a::b", 3), crate::seed_for_test("a::b", 3));
        assert_ne!(crate::seed_for_test("a::b", 3), crate::seed_for_test("a::b", 4));
    }
}
