//! Offline stand-in for the `rand` crate.
//!
//! This build environment cannot reach a crates registry, so the workspace
//! ships the small API subset it actually uses: the [`Rng`] trait with
//! `gen`, `gen_range` and `gen_bool`, a deterministic [`rngs::StdRng`]
//! seeded through [`SeedableRng::seed_from_u64`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ with a
//! SplitMix64 seed expansion — not `rand`'s ChaCha12, so seeded streams
//! differ from upstream `rand`, but every property that matters here
//! (determinism, uniformity, independence across seeds) holds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Types constructible from a uniform random bit stream (the subset of
/// `rand`'s `Standard` distribution the workspace draws from).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for usize {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_standard(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

/// Uniform draw from `[0, span)` without modulo bias (widening-multiply
/// method; the residual bias is below 2⁻⁶⁴ per draw).
fn uniform_below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.abs_diff(lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

/// The random-number-generator trait: one raw source method plus the
/// derived draws the workspace uses.
pub trait Rng {
    /// The raw bit source.
    fn next_u64(&mut self) -> u64;

    /// Draws a value of `T` from the standard (uniform) distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_standard(self) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seeding constructors.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(state: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace-standard generator: xoshiro256++.
    ///
    /// Small, fast, passes BigCrush; the four 64-bit state words are
    /// expanded from the seed with SplitMix64 as its authors recommend.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the subset of `rand`'s trait the workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "shuffle left input unchanged");
    }

    #[test]
    fn works_through_mut_references() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut rng = StdRng::seed_from_u64(5);
        let a = draw(&mut rng);
        let b = draw(&mut rng);
        assert_ne!(a, b);
    }
}
