//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the [`Value`] tree, an insertion-ordered [`Map`], the
//! [`json!`] macro (object literals with expression values, plus plain
//! expressions), compact and pretty writers, and a strict recursive-descent
//! [`from_str`] parser. There is no `serde` underneath — conversions go
//! through [`From`] impls — but the wire format is standard JSON, so
//! traces written here parse anywhere.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A JSON number: integer or floating point.
#[derive(Debug, Clone, PartialEq)]
pub enum Number {
    /// A signed integer.
    I(i64),
    /// An unsigned integer above `i64::MAX`.
    U(u64),
    /// A finite float.
    F(f64),
}

impl Number {
    /// The value as `f64` (lossy for huge integers).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::I(v) => v as f64,
            Number::U(v) => v as f64,
            Number::F(v) => v,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::I(v) => Some(v),
            Number::U(v) => i64::try_from(v).ok(),
            Number::F(_) => None,
        }
    }
}

/// An insertion-ordered string-keyed map (duplicate inserts replace).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing and returning any previous
    /// value.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Looks up `key`.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

impl std::ops::Index<&str> for Map {
    type Output = Value;

    /// Panics when `key` is missing, matching upstream `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no entry for key {key:?}"))
    }
}

/// Shared `null` for the non-panicking `Value` indexers.
static NULL: Value = Value::Null;

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `Null` for missing keys or non-objects, matching upstream.
    fn index(&self, key: &str) -> &Value {
        match self {
            Value::Object(m) => m.get(key).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `Null` out of bounds or on non-arrays, matching upstream.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

impl Value {
    /// The value as `f64`, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::I(v)) => u64::try_from(*v).ok(),
            Value::Number(Number::U(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Object field lookup; `Null` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::String(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::String(v)
    }
}

impl From<&String> for Value {
    fn from(v: &String) -> Self {
        Value::String(v.clone())
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Number(Number::F(v))
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::Number(Number::F(f64::from(v)))
    }
}

macro_rules! impl_from_int {
    ($($t:ty),*) => {$(
        impl From<$t> for Value {
            fn from(v: $t) -> Self {
                Value::Number(Number::I(v as i64))
            }
        }
    )*};
}

impl_from_int!(i8, i16, i32, i64, u8, u16, u32);

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        match i64::try_from(v) {
            Ok(i) => Value::Number(Number::I(i)),
            Err(_) => Value::Number(Number::U(v)),
        }
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::from(v as u64)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(x) => x.into(),
            None => Value::Null,
        }
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&[T]> for Value {
    fn from(v: &[T]) -> Self {
        Value::Array(v.iter().cloned().map(Into::into).collect())
    }
}

impl<T: Into<Value> + Clone> From<&Vec<T>> for Value {
    fn from(v: &Vec<T>) -> Self {
        Value::from(v.as_slice())
    }
}

impl<T: Into<Value>, const N: usize> From<[T; N]> for Value {
    fn from(v: [T; N]) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map> for Value {
    fn from(m: Map) -> Self {
        Value::Object(m)
    }
}

impl From<&Value> for Value {
    fn from(v: &Value) -> Self {
        v.clone()
    }
}

/// What went wrong while parsing or serialising.
///
/// The parser is exposed to untrusted bytes (the tuning service reads
/// frames off a socket), so resource-limit violations are distinguished
/// from plain syntax errors: a server can answer the former with a typed
/// protocol error instead of treating every failure alike.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Malformed JSON text.
    Syntax,
    /// Nesting deeper than [`ParseLimits::max_depth`] — refused up front
    /// so a hostile `[[[[…` can never overflow the parser's stack.
    DepthLimit,
    /// Input longer than [`ParseLimits::max_bytes`].
    SizeLimit,
}

/// Serialisation/parsing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    kind: ErrorKind,
}

impl Error {
    /// The error's category.
    pub fn kind(&self) -> ErrorKind {
        self.kind
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

fn err(msg: impl Into<String>) -> Error {
    Error { msg: msg.into(), kind: ErrorKind::Syntax }
}

fn err_kind(kind: ErrorKind, msg: impl Into<String>) -> Error {
    Error { msg: msg.into(), kind }
}

/// Resource bounds enforced while parsing untrusted input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParseLimits {
    /// Maximum container nesting depth (arrays + objects). The parser is
    /// recursive-descent, so this bounds its stack usage.
    pub max_depth: usize,
    /// Maximum input length in bytes, checked before parsing starts.
    pub max_bytes: usize,
}

impl ParseLimits {
    /// The default depth cap: deep enough for any trace or protocol
    /// frame this workspace writes, shallow enough that recursion can
    /// never exhaust a thread stack.
    pub const DEFAULT_MAX_DEPTH: usize = 128;

    /// Limits suited to untrusted wire input: `max_depth` plus an
    /// explicit frame-size bound.
    pub fn wire(max_bytes: usize) -> Self {
        ParseLimits { max_depth: Self::DEFAULT_MAX_DEPTH, max_bytes }
    }
}

impl Default for ParseLimits {
    /// Depth-capped, size-unbounded: what [`from_str`] applies.
    fn default() -> Self {
        ParseLimits {
            max_depth: Self::DEFAULT_MAX_DEPTH,
            max_bytes: usize::MAX,
        }
    }
}

// --- Writing ---------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::I(v) => out.push_str(&v.to_string()),
        Number::U(v) => out.push_str(&v.to_string()),
        Number::F(v) => {
            if v.is_finite() {
                // Integral floats keep a ".0" so they parse back as floats.
                if v == v.trunc() && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // JSON has no Inf/NaN; serde_json writes null.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: usize, level: usize) {
    let pretty = indent > 0;
    let pad = |out: &mut String, l: usize| {
        if pretty {
            out.push('\n');
            for _ in 0..l * indent {
                out.push(' ');
            }
        }
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, level + 1);
                write_value(out, item, indent, level + 1);
            }
            pad(out, level);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, level + 1);
                escape_into(out, k);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            pad(out, level);
            out.push('}');
        }
    }
}

/// Compact one-line serialisation.
pub fn to_string<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let v: Value = value.clone().into();
    let mut out = String::new();
    write_value(&mut out, &v, 0, 0);
    Ok(out)
}

/// Two-space-indented serialisation.
pub fn to_string_pretty<V: Into<Value> + Clone>(value: &V) -> Result<String, Error> {
    let v: Value = value.clone().into();
    let mut out = String::new();
    write_value(&mut out, &v, 2, 0);
    Ok(out)
}

// --- Parsing ---------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
    max_depth: usize,
}

impl<'a> Parser<'a> {
    fn new(s: &'a str, max_depth: usize) -> Self {
        Parser { bytes: s.as_bytes(), pos: 0, depth: 0, max_depth }
    }

    /// Enters one container level, refusing past the depth limit.
    fn descend(&mut self) -> Result<(), Error> {
        self.depth += 1;
        if self.depth > self.max_depth {
            return Err(err_kind(
                ErrorKind::DepthLimit,
                format!("nesting deeper than {} levels", self.max_depth),
            ));
        }
        Ok(())
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(err(format!(
                "expected '{}' at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(err("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(err("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(err("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(err(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| err("invalid utf8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| err("eof in escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| err("eof in \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| err("bad \\u"))?,
                                16,
                            )
                            .map_err(|_| err("bad \\u"))?;
                            // Surrogate pairs are not needed for our traces;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(err(format!("bad escape \\{}", other as char))),
                    }
                }
                _ => return Err(err("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| err("invalid utf8 in number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I(i)));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U(u)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F(f)))
            .map_err(|_| err(format!("bad number {text:?}")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        self.descend()?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(err("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        self.descend()?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(err("expected ',' or '}'")),
            }
        }
    }
}

/// Parses a [`Value`] from JSON text (strict: trailing garbage is an
/// error). Applies [`ParseLimits::default`] — nesting is always
/// depth-capped so no input can overflow the parser's stack.
pub fn from_str(s: &str) -> Result<Value, Error> {
    from_str_bounded(s, &ParseLimits::default())
}

/// Like [`from_str`] but with explicit [`ParseLimits`] — the entry point
/// for untrusted input such as socket frames. Limit violations return a
/// typed error ([`Error::kind`]) rather than risking stack overflow or
/// unbounded allocation.
pub fn from_str_bounded(s: &str, limits: &ParseLimits) -> Result<Value, Error> {
    if s.len() > limits.max_bytes {
        return Err(err_kind(
            ErrorKind::SizeLimit,
            format!("input of {} bytes exceeds limit {}", s.len(), limits.max_bytes),
        ));
    }
    let mut p = Parser::new(s, limits.max_depth.max(1));
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(err(format!("trailing data at byte {}", p.pos)));
    }
    Ok(v)
}

/// Builds a [`Value`]: `json!({"key": expr, ...})`, `json!([e1, e2])`,
/// `json!(null)`, or `json!(expr)` for anything `Into<Value>`.
///
/// Unlike upstream, nested object literals must be wrapped in their own
/// `json!({...})` call (a `json!` invocation is an expression, so this
/// composes).
#[macro_export]
macro_rules! json {
    (null) => {
        $crate::Value::Null
    };
    ([ $($elem:expr),* $(,)? ]) => {{
        let items: ::std::vec::Vec<$crate::Value> = vec![$($crate::Value::from($elem)),*];
        $crate::Value::Array(items)
    }};
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut map = $crate::Map::new();
        $(map.insert(::std::string::String::from($key), $crate::Value::from($val));)*
        $crate::Value::Object(map)
    }};
    ($other:expr) => {
        $crate::Value::from($other)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_macro_builds_objects_in_order() {
        let v = json!({"b": 1, "a": 2.5, "s": "x", "n": json!(null)});
        let m = v.as_object().unwrap();
        let keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["b", "a", "s", "n"]);
        assert_eq!(m.get("b").unwrap().as_i64(), Some(1));
        assert_eq!(m.get("a").unwrap().as_f64(), Some(2.5));
        assert_eq!(m.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(m.get("n"), Some(&Value::Null));
    }

    #[test]
    fn options_and_vecs_convert() {
        assert_eq!(json!(Option::<f64>::None), Value::Null);
        assert_eq!(json!(Some(3.0)), Value::Number(Number::F(3.0)));
        let v = json!(vec![1.0, 2.0]);
        assert_eq!(v.as_array().unwrap().len(), 2);
        let arr = json!([200usize, 150]);
        assert_eq!(arr.as_array().unwrap()[0].as_i64(), Some(200));
    }

    #[test]
    fn round_trips_through_text() {
        let v = json!({
            "name": "gp_fit",
            "dur_us": 1234i64,
            "ratio": 0.5,
            "ok": true,
            "tags": json!(["a", "b\"c", "d\\e"]),
            "none": json!(null),
        });
        let text = to_string(&v).unwrap();
        let back = from_str(&text).unwrap();
        assert_eq!(back, v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn floats_keep_float_identity() {
        let v = json!(2.0);
        let text = to_string(&v).unwrap();
        assert_eq!(text, "2.0");
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("nul").is_err());
    }

    #[test]
    fn escapes_control_characters() {
        let v = json!("line\nbreak\tand \"quote\"");
        let text = to_string(&v).unwrap();
        assert_eq!(from_str(&text).unwrap(), v);
    }

    #[test]
    fn deep_nesting_is_refused_not_overflowed() {
        // 100k unclosed brackets: without the depth cap this would blow
        // the recursive-descent parser's stack.
        let deep: String = "[".repeat(100_000);
        let e = from_str(&deep).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::DepthLimit);
        let mixed: String = "{\"k\":[".repeat(50_000);
        assert_eq!(from_str(&mixed).unwrap_err().kind(), ErrorKind::DepthLimit);
    }

    #[test]
    fn nesting_within_the_cap_still_parses() {
        let depth = ParseLimits::DEFAULT_MAX_DEPTH;
        let ok = format!("{}{}", "[".repeat(depth), "]".repeat(depth));
        assert!(from_str(&ok).is_ok());
        let too_deep = format!("{}{}", "[".repeat(depth + 1), "]".repeat(depth + 1));
        assert_eq!(from_str(&too_deep).unwrap_err().kind(), ErrorKind::DepthLimit);
    }

    #[test]
    fn size_limit_is_enforced_before_parsing() {
        let limits = ParseLimits::wire(16);
        let big = format!("\"{}\"", "x".repeat(64));
        let e = from_str_bounded(&big, &limits).unwrap_err();
        assert_eq!(e.kind(), ErrorKind::SizeLimit);
        assert!(from_str_bounded("\"short\"", &limits).is_ok());
    }

    #[test]
    fn custom_depth_limits_apply() {
        let limits = ParseLimits { max_depth: 2, max_bytes: usize::MAX };
        assert!(from_str_bounded("[[1]]", &limits).is_ok());
        assert_eq!(
            from_str_bounded("[[[1]]]", &limits).unwrap_err().kind(),
            ErrorKind::DepthLimit
        );
        // Sibling containers at the same level don't accumulate depth.
        assert!(from_str_bounded("[[1],[2],[3]]", &limits).is_ok());
    }

    #[test]
    fn syntax_errors_keep_the_syntax_kind() {
        assert_eq!(from_str("{").unwrap_err().kind(), ErrorKind::Syntax);
        assert_eq!(from_str("tru").unwrap_err().kind(), ErrorKind::Syntax);
    }
}
