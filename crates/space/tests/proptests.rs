//! Property-based tests of parameter encoding over *arbitrary* parameter
//! definitions — not just the Spark space.

use proptest::prelude::*;
use robotune_space::{ParamDef, ParamKind, ParamValue, Unit};

/// Strategy over arbitrary (valid) integer parameter definitions.
fn int_def() -> impl Strategy<Value = ParamDef> {
    (1i64..10_000, 1i64..10_000, any::<bool>()).prop_map(|(a, span, log)| {
        let (min, max) = (a, a + span);
        ParamDef::new(
            "p",
            ParamKind::Int { min, max, log },
            ParamValue::Int(min),
            Unit::Count,
        )
    })
}

fn float_def() -> impl Strategy<Value = ParamDef> {
    (-1e5f64..1e5, 1e-3f64..1e5).prop_map(|(min, span)| {
        ParamDef::new(
            "f",
            ParamKind::Float { min, max: min + span },
            ParamValue::Float(min),
            Unit::Ratio,
        )
    })
}

fn cat_def() -> impl Strategy<Value = ParamDef> {
    (1usize..40).prop_map(|k| {
        ParamDef::new(
            "c",
            ParamKind::categorical((0..k).map(|i| format!("v{i}"))),
            ParamValue::Cat(0),
            Unit::None,
        )
    })
}

proptest! {
    #[test]
    fn int_decode_is_always_in_range(def in int_def(), u in 0.0f64..1.0) {
        let v = def.decode(u);
        prop_assert!(def.contains(&v), "{v:?} out of range for {def}");
    }

    #[test]
    fn int_encode_decode_round_trips(def in int_def(), u in 0.0f64..1.0) {
        let v = def.decode(u);
        let v2 = def.decode(def.encode(&v));
        prop_assert_eq!(v, v2);
    }

    #[test]
    fn int_decode_is_monotone(def in int_def(), u1 in 0.0f64..1.0, u2 in 0.0f64..1.0) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(def.decode(lo).as_int() <= def.decode(hi).as_int());
    }

    #[test]
    fn int_extremes_hit_the_bounds(def in int_def()) {
        if let ParamKind::Int { min, max, .. } = def.kind {
            prop_assert_eq!(def.decode(0.0).as_int(), min);
            prop_assert_eq!(def.decode(1.0 - 1e-12).as_int(), max);
        }
    }

    #[test]
    fn float_round_trip_is_tight(def in float_def(), u in 0.0f64..1.0) {
        let v = def.decode(u);
        let back = def.decode(def.encode(&v)).as_float();
        let span = if let ParamKind::Float { min, max } = def.kind { max - min } else { 1.0 };
        prop_assert!((back - v.as_float()).abs() < 1e-9 * span.max(1.0));
    }

    #[test]
    fn categorical_round_trips_every_choice(def in cat_def()) {
        if let ParamKind::Categorical { choices } = &def.kind {
            for i in 0..choices.len() {
                let v = ParamValue::Cat(i);
                prop_assert_eq!(def.decode(def.encode(&v)), v);
            }
        }
    }

    #[test]
    fn render_never_panics_on_decoded_values(def in int_def(), u in 0.0f64..1.0) {
        let v = def.decode(u);
        let s = def.render(&v);
        prop_assert!(!s.is_empty());
    }
}
