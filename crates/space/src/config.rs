//! A concrete configuration: one value per parameter of a space.

use crate::param::ParamValue;
use crate::space::ConfigSpace;

/// One complete assignment of values to the parameters of a [`ConfigSpace`].
///
/// Values are stored positionally in the space's parameter order. A
/// `Configuration` is space-agnostic data; interpretation (names, rendering,
/// encoding) always goes through the space that produced it.
#[derive(Debug, Clone, PartialEq)]
pub struct Configuration {
    values: Vec<ParamValue>,
}

impl Configuration {
    /// Wraps a value vector. Callers are responsible for ordering the
    /// values consistently with the owning space; [`ConfigSpace::validate`]
    /// checks domains.
    pub fn new(values: Vec<ParamValue>) -> Self {
        Configuration { values }
    }

    /// Number of parameter values.
    #[inline]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the configuration is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at parameter index `i`.
    #[inline]
    pub fn get(&self, i: usize) -> &ParamValue {
        &self.values[i]
    }

    /// Replaces the value at parameter index `i`.
    #[inline]
    pub fn set(&mut self, i: usize, v: ParamValue) {
        self.values[i] = v;
    }

    /// All values in parameter order.
    #[inline]
    pub fn values(&self) -> &[ParamValue] {
        &self.values
    }

    /// The configuration as a numeric feature vector (the representation
    /// ML models train on; see [`ParamValue::as_f64`]).
    pub fn to_features(&self) -> Vec<f64> {
        self.values.iter().map(ParamValue::as_f64).collect()
    }

    /// Looks a value up by parameter name within `space`.
    ///
    /// Returns `None` when the name is unknown.
    pub fn get_by_name<'a>(&'a self, space: &ConfigSpace, name: &str) -> Option<&'a ParamValue> {
        space.index_of(name).map(|i| self.get(i))
    }

    /// Renders the configuration as framework `key=value` lines — the
    /// "Configuration Encoder" of the paper's implementation section (§4).
    pub fn render(&self, space: &ConfigSpace) -> String {
        let mut out = String::new();
        for (i, def) in space.params().iter().enumerate() {
            out.push_str(&def.name);
            out.push('=');
            out.push_str(&def.render(&self.values[i]));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamDef, ParamKind, Unit};
    use crate::space::ConfigSpace;

    fn tiny_space() -> ConfigSpace {
        ConfigSpace::new(
            "tiny",
            vec![
                ParamDef::new(
                    "a.cores",
                    ParamKind::Int { min: 1, max: 4, log: false },
                    ParamValue::Int(1),
                    Unit::Count,
                ),
                ParamDef::new(
                    "a.flag",
                    ParamKind::Bool,
                    ParamValue::Bool(false),
                    Unit::None,
                ),
            ],
            vec![],
        )
    }

    #[test]
    fn feature_vector() {
        let c = Configuration::new(vec![ParamValue::Int(3), ParamValue::Bool(true)]);
        assert_eq!(c.to_features(), vec![3.0, 1.0]);
    }

    #[test]
    fn get_by_name() {
        let s = tiny_space();
        let c = s.default_configuration();
        assert_eq!(c.get_by_name(&s, "a.cores"), Some(&ParamValue::Int(1)));
        assert_eq!(c.get_by_name(&s, "nope"), None);
    }

    #[test]
    fn render_lines() {
        let s = tiny_space();
        let mut c = s.default_configuration();
        c.set(0, ParamValue::Int(2));
        let text = c.render(&s);
        assert!(text.contains("a.cores=2\n"));
        assert!(text.contains("a.flag=false\n"));
    }

    #[test]
    fn set_and_get() {
        let mut c = Configuration::new(vec![ParamValue::Int(1)]);
        c.set(0, ParamValue::Int(9));
        assert_eq!(c.get(0), &ParamValue::Int(9));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }
}
