//! Configuration spaces, collinearity groups and subspace projection.

use std::collections::HashMap;
use std::sync::Arc;

use crate::config::Configuration;
use crate::param::ParamDef;

/// A named set of parameters that must be treated jointly.
///
/// The paper groups (a) collinear/dependent parameters (a dependent
/// parameter's value is only valid when its controlling parameter is
/// active) and (b) domain-knowledge *joint parameters* such as the executor
/// size `{spark.executor.cores, spark.executor.memory}` (§3.3, §4). During
/// MDA importance calculation all members of a group are permuted together.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamGroup {
    /// Human-readable group label, e.g. `executor-size`.
    pub name: String,
    /// Parameter indices (into the owning space) of the members.
    pub members: Vec<usize>,
}

/// Anything tuners can search over: a boxed view of a (possibly projected)
/// configuration space.
///
/// Samplers emit points in the unit hypercube `[0, 1)^dim`; the space turns
/// them into concrete [`Configuration`]s of the *full* parameter set, so an
/// objective function never needs to know whether dimension reduction
/// happened upstream.
pub trait SearchSpace {
    /// Dimensionality of the unit hypercube tuners operate in.
    fn dim(&self) -> usize;

    /// Decodes a unit-cube point to a full configuration.
    fn decode(&self, point: &[f64]) -> Configuration;

    /// Encodes a configuration to a unit-cube point (centre-of-cell).
    fn encode(&self, config: &Configuration) -> Vec<f64>;

    /// The underlying full space.
    fn full_space(&self) -> &ConfigSpace;
}

/// An ordered collection of typed parameters plus collinearity groups.
#[derive(Debug, Clone)]
pub struct ConfigSpace {
    name: String,
    params: Vec<ParamDef>,
    groups: Vec<ParamGroup>,
    by_name: HashMap<String, usize>,
}

impl ConfigSpace {
    /// Builds a space.
    ///
    /// # Panics
    ///
    /// Panics on duplicate parameter names, or on groups that reference
    /// out-of-range parameter indices or share members across groups.
    pub fn new(name: impl Into<String>, params: Vec<ParamDef>, groups: Vec<ParamGroup>) -> Self {
        let mut by_name = HashMap::with_capacity(params.len());
        for (i, p) in params.iter().enumerate() {
            let prev = by_name.insert(p.name.clone(), i);
            assert!(prev.is_none(), "duplicate parameter name: {}", p.name);
        }
        let mut seen = vec![false; params.len()];
        for g in &groups {
            assert!(!g.members.is_empty(), "group {} is empty", g.name);
            for &m in &g.members {
                assert!(m < params.len(), "group {} references index {m}", g.name);
                assert!(!seen[m], "parameter index {m} appears in two groups");
                seen[m] = true;
            }
        }
        ConfigSpace {
            name: name.into(),
            params,
            groups,
            by_name,
        }
    }

    /// Space name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All parameter definitions, in index order.
    pub fn params(&self) -> &[ParamDef] {
        &self.params
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.params.len()
    }

    /// Whether the space has no parameters.
    pub fn is_empty(&self) -> bool {
        self.params.is_empty()
    }

    /// The declared collinearity groups.
    pub fn groups(&self) -> &[ParamGroup] {
        &self.groups
    }

    /// Index of a parameter by name.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// The parameter definition with the given name.
    ///
    /// # Panics
    ///
    /// Panics if no parameter has this name.
    pub fn param(&self, name: &str) -> &ParamDef {
        &self.params[self
            .index_of(name)
            .unwrap_or_else(|| panic!("unknown parameter: {name}"))]
    }

    /// The framework-default configuration.
    pub fn default_configuration(&self) -> Configuration {
        Configuration::new(self.params.iter().map(|p| p.default.clone()).collect())
    }

    /// Validates every value of `config` against its parameter's domain.
    pub fn validate(&self, config: &Configuration) -> Result<(), String> {
        if config.len() != self.params.len() {
            return Err(format!(
                "configuration has {} values, space has {} parameters",
                config.len(),
                self.params.len()
            ));
        }
        for (i, p) in self.params.iter().enumerate() {
            if !p.contains(config.get(i)) {
                return Err(format!(
                    "value {:?} out of domain for {}",
                    config.get(i),
                    p.name
                ));
            }
        }
        Ok(())
    }

    /// Covering partition for grouped permutation importance: the declared
    /// groups, plus one singleton group per ungrouped parameter.
    pub fn covering_groups(&self) -> Vec<ParamGroup> {
        let mut grouped = vec![false; self.params.len()];
        let mut out = self.groups.clone();
        for g in &self.groups {
            for &m in &g.members {
                grouped[m] = true;
            }
        }
        for (i, p) in self.params.iter().enumerate() {
            if !grouped[i] {
                out.push(ParamGroup {
                    name: p.name.clone(),
                    members: vec![i],
                });
            }
        }
        out
    }

    /// Projects the space down to `indices`, pinning every other parameter
    /// to its value in `base`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate indices, or if `base` fails
    /// validation.
    pub fn subspace(self: &Arc<Self>, indices: &[usize], base: Configuration) -> Subspace {
        self.validate(&base)
            .unwrap_or_else(|e| panic!("invalid base configuration: {e}"));
        let mut seen = vec![false; self.params.len()];
        for &i in indices {
            assert!(i < self.params.len(), "subspace index {i} out of range");
            assert!(!seen[i], "duplicate subspace index {i}");
            seen[i] = true;
        }
        Subspace {
            full: Arc::clone(self),
            indices: indices.to_vec(),
            base,
        }
    }
}

impl SearchSpace for ConfigSpace {
    fn dim(&self) -> usize {
        self.params.len()
    }

    fn decode(&self, point: &[f64]) -> Configuration {
        assert_eq!(point.len(), self.params.len(), "point dimension mismatch");
        Configuration::new(
            self.params
                .iter()
                .zip(point)
                .map(|(p, &u)| p.decode(u))
                .collect(),
        )
    }

    fn encode(&self, config: &Configuration) -> Vec<f64> {
        assert_eq!(config.len(), self.params.len(), "configuration mismatch");
        self.params
            .iter()
            .zip(config.values())
            .map(|(p, v)| p.encode(v))
            .collect()
    }

    fn full_space(&self) -> &ConfigSpace {
        self
    }
}

/// A low-dimensional view of a [`ConfigSpace`], produced by parameter
/// selection: only `indices` vary; everything else is pinned to `base`.
#[derive(Debug, Clone)]
pub struct Subspace {
    full: Arc<ConfigSpace>,
    indices: Vec<usize>,
    base: Configuration,
}

impl Subspace {
    /// Indices (into the full space) of the selected parameters.
    pub fn selected(&self) -> &[usize] {
        &self.indices
    }

    /// The pinned base configuration.
    pub fn base(&self) -> &Configuration {
        &self.base
    }

    /// Names of the selected parameters, in subspace order.
    pub fn selected_names(&self) -> Vec<&str> {
        self.indices
            .iter()
            .map(|&i| self.full.params()[i].name.as_str())
            .collect()
    }
}

impl SearchSpace for Subspace {
    fn dim(&self) -> usize {
        self.indices.len()
    }

    fn decode(&self, point: &[f64]) -> Configuration {
        assert_eq!(point.len(), self.indices.len(), "point dimension mismatch");
        let mut config = self.base.clone();
        for (&idx, &u) in self.indices.iter().zip(point) {
            config.set(idx, self.full.params()[idx].decode(u));
        }
        config
    }

    fn encode(&self, config: &Configuration) -> Vec<f64> {
        assert_eq!(config.len(), self.full.len(), "configuration mismatch");
        self.indices
            .iter()
            .map(|&i| self.full.params()[i].encode(config.get(i)))
            .collect()
    }

    fn full_space(&self) -> &ConfigSpace {
        &self.full
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::{ParamKind, ParamValue, Unit};

    fn space() -> ConfigSpace {
        ConfigSpace::new(
            "test",
            vec![
                ParamDef::new(
                    "cores",
                    ParamKind::Int { min: 1, max: 8, log: false },
                    ParamValue::Int(2),
                    Unit::Count,
                ),
                ParamDef::new(
                    "frac",
                    ParamKind::Float { min: 0.0, max: 1.0 },
                    ParamValue::Float(0.6),
                    Unit::Ratio,
                ),
                ParamDef::new("flag", ParamKind::Bool, ParamValue::Bool(false), Unit::None),
                ParamDef::new(
                    "codec",
                    ParamKind::categorical(["a", "b", "c"]),
                    ParamValue::Cat(0),
                    Unit::None,
                ),
            ],
            vec![ParamGroup {
                name: "g".into(),
                members: vec![2, 3],
            }],
        )
    }

    #[test]
    fn default_configuration_is_valid() {
        let s = space();
        let c = s.default_configuration();
        assert!(s.validate(&c).is_ok());
        assert_eq!(c.get(0), &ParamValue::Int(2));
    }

    #[test]
    fn decode_encode_round_trip() {
        let s = space();
        let pts = [
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.99, 0.5, 0.9, 0.7],
            vec![0.45, 1.0, 0.49, 0.34],
        ];
        for p in &pts {
            let c = s.decode(p);
            assert!(s.validate(&c).is_ok());
            let c2 = s.decode(&s.encode(&c));
            assert_eq!(c, c2);
        }
    }

    #[test]
    fn covering_groups_partition_everything() {
        let s = space();
        let groups = s.covering_groups();
        let mut covered: Vec<usize> = groups.iter().flat_map(|g| g.members.clone()).collect();
        covered.sort_unstable();
        assert_eq!(covered, vec![0, 1, 2, 3]);
        // Declared group comes first.
        assert_eq!(groups[0].name, "g");
    }

    #[test]
    fn subspace_pins_base_values() {
        let s = Arc::new(space());
        let mut base = s.default_configuration();
        base.set(3, ParamValue::Cat(2));
        let sub = s.subspace(&[0, 1], base.clone());
        assert_eq!(sub.dim(), 2);
        let c = sub.decode(&[0.99, 0.0]);
        assert_eq!(c.get(0), &ParamValue::Int(8)); // varied
        assert_eq!(c.get(1), &ParamValue::Float(0.0)); // varied
        assert_eq!(c.get(2), &ParamValue::Bool(false)); // pinned
        assert_eq!(c.get(3), &ParamValue::Cat(2)); // pinned
        assert_eq!(sub.selected_names(), vec!["cores", "frac"]);
    }

    #[test]
    fn subspace_encode_projects() {
        let s = Arc::new(space());
        let sub = s.subspace(&[1, 3], s.default_configuration());
        let c = sub.decode(&[0.25, 0.9]);
        let p = sub.encode(&c);
        assert_eq!(p.len(), 2);
        let c2 = sub.decode(&p);
        assert_eq!(c, c2);
    }

    #[test]
    fn validate_rejects_out_of_domain() {
        let s = space();
        let mut c = s.default_configuration();
        c.set(0, ParamValue::Int(99));
        assert!(s.validate(&c).is_err());
        let short = Configuration::new(vec![ParamValue::Int(1)]);
        assert!(s.validate(&short).is_err());
    }

    #[test]
    #[should_panic(expected = "duplicate parameter name")]
    fn duplicate_names_rejected() {
        let p = ParamDef::new(
            "x",
            ParamKind::Bool,
            ParamValue::Bool(false),
            Unit::None,
        );
        ConfigSpace::new("dup", vec![p.clone(), p], vec![]);
    }

    #[test]
    #[should_panic(expected = "two groups")]
    fn overlapping_groups_rejected() {
        let p = ParamDef::new("x", ParamKind::Bool, ParamValue::Bool(false), Unit::None);
        ConfigSpace::new(
            "bad",
            vec![p],
            vec![
                ParamGroup { name: "a".into(), members: vec![0] },
                ParamGroup { name: "b".into(), members: vec![0] },
            ],
        );
    }

    #[test]
    fn index_of_and_param() {
        let s = space();
        assert_eq!(s.index_of("codec"), Some(3));
        assert_eq!(s.param("flag").name, "flag");
        assert!(s.index_of("missing").is_none());
    }
}
