//! The 44-parameter Spark 2.4 configuration space of the paper (§5.1).
//!
//! The paper tunes "a total of 44 performance-related" parameters — a
//! superset of those considered by prior Spark tuning work, minus
//! deprecated/streaming ones. This module reconstructs that space with the
//! documented Spark 2.4 defaults and the value ranges the paper motivates
//! (e.g. 1–32 executor cores, 1–180 GiB executor memory on the NoleLand
//! nodes).
//!
//! Collinearity groups follow §3.3/§4: dependent parameters (Kryo buffers
//! with the serializer choice, speculation knobs with the speculation flag,
//! off-heap size with the off-heap flag, the external shuffle service with
//! dynamic allocation) are permuted jointly during importance calculation,
//! and `{spark.executor.cores, spark.executor.memory}` forms the
//! domain-knowledge *executor size* joint parameter.

use crate::param::{ParamDef, ParamKind, ParamValue, Unit};
use crate::space::{ConfigSpace, ParamGroup};

/// Canonical names for the parameters the evaluation keeps referring to.
pub mod names {
    /// Executor core count.
    pub const EXECUTOR_CORES: &str = "spark.executor.cores";
    /// Executor heap size (MiB).
    pub const EXECUTOR_MEMORY: &str = "spark.executor.memory";
    /// Executors requested per application.
    pub const EXECUTOR_INSTANCES: &str = "spark.executor.instances";
    /// Off-heap overhead per executor (MiB).
    pub const EXECUTOR_MEMORY_OVERHEAD: &str = "spark.executor.memoryOverhead";
    /// Default RDD partition count for shuffles.
    pub const DEFAULT_PARALLELISM: &str = "spark.default.parallelism";
    /// Fraction of heap shared by execution and storage.
    pub const MEMORY_FRACTION: &str = "spark.memory.fraction";
    /// Fraction of the unified region reserved for storage.
    pub const MEMORY_STORAGE_FRACTION: &str = "spark.memory.storageFraction";
    /// Serializer implementation.
    pub const SERIALIZER: &str = "spark.serializer";
    /// Whether map outputs are compressed.
    pub const SHUFFLE_COMPRESS: &str = "spark.shuffle.compress";
    /// Compression codec.
    pub const IO_COMPRESSION_CODEC: &str = "spark.io.compression.codec";
    /// Whether cached RDD partitions are serialized+compressed.
    pub const RDD_COMPRESS: &str = "spark.rdd.compress";
    /// Per-reduce fetch buffer (MiB).
    pub const REDUCER_MAX_SIZE_IN_FLIGHT: &str = "spark.reducer.maxSizeInFlight";
    /// Shuffle file buffer (KiB).
    pub const SHUFFLE_FILE_BUFFER: &str = "spark.shuffle.file.buffer";
    /// Delay scheduling wait (ms).
    pub const LOCALITY_WAIT: &str = "spark.locality.wait";
    /// Speculative execution master switch.
    pub const SPECULATION: &str = "spark.speculation";
}

fn int(name: &str, min: i64, max: i64, default: i64, unit: Unit) -> ParamDef {
    ParamDef::new(
        name,
        ParamKind::Int { min, max, log: false },
        ParamValue::Int(default),
        unit,
    )
}

fn log_int(name: &str, min: i64, max: i64, default: i64, unit: Unit) -> ParamDef {
    ParamDef::new(
        name,
        ParamKind::Int { min, max, log: true },
        ParamValue::Int(default),
        unit,
    )
}

fn float(name: &str, min: f64, max: f64, default: f64) -> ParamDef {
    ParamDef::new(
        name,
        ParamKind::Float { min, max },
        ParamValue::Float(default),
        Unit::Ratio,
    )
}

fn boolean(name: &str, default: bool) -> ParamDef {
    ParamDef::new(name, ParamKind::Bool, ParamValue::Bool(default), Unit::None)
}

fn cat(name: &str, choices: &[&str], default: usize) -> ParamDef {
    ParamDef::new(
        name,
        ParamKind::categorical(choices.iter().copied()),
        ParamValue::Cat(default),
        Unit::None,
    )
}

/// Builds the full 44-parameter Spark 2.4 space.
///
/// Parameter order is stable; index lookups should still go through
/// [`ConfigSpace::index_of`] so code stays robust to future insertions.
pub fn spark_space() -> ConfigSpace {
    let params = vec![
        // --- Resource sizing -------------------------------------------------
        log_int(names::EXECUTOR_CORES, 1, 32, 1, Unit::Count),
        // §5.1 bounds the executor heap at 8–180 GB; the 1 GiB Spark
        // factory default sits *below* this search range (see
        // `robotune-sparksim`'s factory defaults for the §5.2 baseline).
        log_int(names::EXECUTOR_MEMORY, 8192, 184_320, 8192, Unit::MiB),
        int(names::EXECUTOR_INSTANCES, 1, 40, 2, Unit::Count),
        int("spark.driver.cores", 1, 8, 1, Unit::Count),
        log_int("spark.driver.memory", 1024, 16_384, 1024, Unit::MiB),
        int(names::EXECUTOR_MEMORY_OVERHEAD, 384, 8192, 384, Unit::MiB),
        int("spark.task.cpus", 1, 2, 1, Unit::Count),
        // --- Parallelism and scheduling --------------------------------------
        log_int(names::DEFAULT_PARALLELISM, 8, 1000, 160, Unit::Count),
        int(names::LOCALITY_WAIT, 0, 10_000, 3000, Unit::Millis),
        cat("spark.scheduler.mode", &["FIFO", "FAIR"], 0),
        int("spark.scheduler.revive.interval", 100, 5000, 1000, Unit::Millis),
        int("spark.task.maxFailures", 1, 8, 4, Unit::Count),
        boolean(names::SPECULATION, false),
        float("spark.speculation.multiplier", 1.0, 5.0, 1.5),
        float("spark.speculation.quantile", 0.3, 0.95, 0.75),
        // --- Memory management ------------------------------------------------
        float(names::MEMORY_FRACTION, 0.3, 0.9, 0.6),
        float(names::MEMORY_STORAGE_FRACTION, 0.1, 0.9, 0.5),
        boolean("spark.memory.offHeap.enabled", false),
        int("spark.memory.offHeap.size", 0, 16_384, 0, Unit::MiB),
        int("spark.storage.memoryMapThreshold", 1, 500, 2, Unit::MiB),
        // --- Shuffle -----------------------------------------------------------
        boolean(names::SHUFFLE_COMPRESS, true),
        boolean("spark.shuffle.spill.compress", true),
        log_int(names::SHUFFLE_FILE_BUFFER, 16, 1024, 32, Unit::KiB),
        int("spark.shuffle.sort.bypassMergeThreshold", 50, 1000, 200, Unit::Count),
        int("spark.shuffle.io.maxRetries", 1, 10, 3, Unit::Count),
        boolean("spark.shuffle.io.preferDirectBufs", true),
        int("spark.shuffle.io.numConnectionsPerPeer", 1, 8, 1, Unit::Count),
        log_int(names::REDUCER_MAX_SIZE_IN_FLIGHT, 8, 256, 48, Unit::MiB),
        int("spark.reducer.maxReqsInFlight", 8, 128, 64, Unit::Count),
        // --- Compression and serialization -------------------------------------
        cat(names::IO_COMPRESSION_CODEC, &["lz4", "lzf", "snappy", "zstd"], 0),
        log_int("spark.io.compression.lz4.blockSize", 16, 256, 32, Unit::KiB),
        boolean(names::RDD_COMPRESS, false),
        boolean("spark.broadcast.compress", true),
        int("spark.broadcast.blockSize", 1, 32, 4, Unit::MiB),
        cat(names::SERIALIZER, &["java", "kryo"], 0),
        log_int("spark.kryoserializer.buffer", 16, 1024, 64, Unit::KiB),
        log_int("spark.kryoserializer.buffer.max", 16, 256, 64, Unit::MiB),
        boolean("spark.kryo.referenceTracking", true),
        // --- Networking and RPC -------------------------------------------------
        int("spark.network.timeout", 60, 600, 120, Unit::Seconds),
        int("spark.executor.heartbeatInterval", 5, 60, 10, Unit::Seconds),
        log_int("spark.rpc.message.maxSize", 32, 512, 128, Unit::MiB),
        log_int("spark.driver.maxResultSize", 256, 4096, 1024, Unit::MiB),
        // --- Dynamic allocation --------------------------------------------------
        boolean("spark.dynamicAllocation.enabled", false),
        boolean("spark.shuffle.service.enabled", false),
    ];
    debug_assert_eq!(params.len(), 44);

    // Group membership is declared by name so reordering params above can't
    // silently corrupt the groups.
    let idx = |name: &str| {
        params
            .iter()
            .position(|p| p.name == name)
            .unwrap_or_else(|| panic!("group references unknown parameter {name}"))
    };
    let groups = vec![
        // Domain-knowledge joint parameter (§4): executor sizing is the
        // shape (cores × memory) *and* the count — the three only make
        // sense jointly (slots = instances × cores, memory/slot = heap /
        // cores), so they are permuted and selected together.
        ParamGroup {
            name: "executor-size".into(),
            members: vec![
                idx(names::EXECUTOR_CORES),
                idx(names::EXECUTOR_MEMORY),
                idx(names::EXECUTOR_INSTANCES),
            ],
        },
        ParamGroup {
            name: "kryo".into(),
            members: vec![
                idx(names::SERIALIZER),
                idx("spark.kryoserializer.buffer"),
                idx("spark.kryoserializer.buffer.max"),
                idx("spark.kryo.referenceTracking"),
            ],
        },
        ParamGroup {
            name: "speculation".into(),
            members: vec![
                idx(names::SPECULATION),
                idx("spark.speculation.multiplier"),
                idx("spark.speculation.quantile"),
            ],
        },
        ParamGroup {
            name: "off-heap".into(),
            members: vec![
                idx("spark.memory.offHeap.enabled"),
                idx("spark.memory.offHeap.size"),
            ],
        },
        ParamGroup {
            name: "dynamic-allocation".into(),
            members: vec![
                idx("spark.dynamicAllocation.enabled"),
                idx("spark.shuffle.service.enabled"),
            ],
        },
        ParamGroup {
            name: "compression-codec".into(),
            members: vec![
                idx(names::IO_COMPRESSION_CODEC),
                idx("spark.io.compression.lz4.blockSize"),
            ],
        },
    ];

    ConfigSpace::new("spark-2.4", params, groups)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SearchSpace;

    #[test]
    fn has_exactly_44_parameters() {
        assert_eq!(spark_space().len(), 44);
    }

    #[test]
    fn defaults_match_spark_docs() {
        let s = spark_space();
        let d = s.default_configuration();
        // The space's executor-memory default is clamped to the 8 GiB
        // search floor; the true 1 GiB factory default is handled by the
        // simulator's factory parameters.
        assert_eq!(d.get_by_name(&s, names::EXECUTOR_MEMORY).unwrap().as_int(), 8192);
        assert_eq!(d.get_by_name(&s, names::EXECUTOR_CORES).unwrap().as_int(), 1);
        assert!((d.get_by_name(&s, names::MEMORY_FRACTION).unwrap().as_float() - 0.6).abs() < 1e-12);
        assert!(!d.get_by_name(&s, names::SPECULATION).unwrap().as_bool());
        assert_eq!(d.get_by_name(&s, names::SERIALIZER).unwrap().as_cat(), 0); // java
        assert!(s.validate(&d).is_ok());
    }

    #[test]
    fn executor_plane_cardinality_matches_paper() {
        // §5.1: cores (1–32) × memory (8–180 GB in 1 GiB steps) ≈ 5,504
        // combinations; our memory range is MiB-granular but the GiB-step
        // projection reproduces the paper's number.
        let s = spark_space();
        let cores = s.param(names::EXECUTOR_CORES).kind.cardinality().unwrap();
        assert_eq!(cores, 32);
        let mem = s.param(names::EXECUTOR_MEMORY);
        if let ParamKind::Int { min, max, .. } = mem.kind {
            let gib_steps = (max / 1024) - (8192 / 1024); // 172 one-GiB steps over 8–180 GiB
            assert_eq!(cores as i64 * gib_steps, 5504);
            assert_eq!(min, 8192);
        } else {
            panic!("executor memory should be an Int parameter");
        }
    }

    #[test]
    fn groups_reference_valid_disjoint_members() {
        let s = spark_space();
        // ConfigSpace::new validates; also check executor-size contents.
        let g = &s.groups()[0];
        assert_eq!(g.name, "executor-size");
        let names: Vec<&str> = g
            .members
            .iter()
            .map(|&i| s.params()[i].name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![names::EXECUTOR_CORES, names::EXECUTOR_MEMORY, names::EXECUTOR_INSTANCES]
        );
    }

    #[test]
    fn covering_groups_cover_all_44() {
        let s = spark_space();
        let cover = s.covering_groups();
        let total: usize = cover.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, 44);
    }

    #[test]
    fn random_points_decode_to_valid_configs() {
        use rand::Rng;
        use rand::SeedableRng;
        let s = spark_space();
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        for _ in 0..200 {
            let p: Vec<f64> = (0..s.dim()).map(|_| rng.gen::<f64>()).collect();
            let c = s.decode(&p);
            assert!(s.validate(&c).is_ok());
            // Round trip through encode is identity on the decoded config.
            assert_eq!(s.decode(&s.encode(&c)), c);
        }
    }

    #[test]
    fn render_produces_spark_conf_syntax() {
        let s = spark_space();
        let text = s.default_configuration().render(&s);
        assert!(text.contains("spark.executor.memory=8192m"));
        assert!(text.contains("spark.serializer=java"));
        assert!(text.contains("spark.shuffle.compress=true"));
        assert_eq!(text.lines().count(), 44);
    }
}
