//! Typed parameter definitions.

use std::fmt;

/// Measurement unit of a parameter, used when rendering a configuration to
/// framework syntax (e.g. `spark.executor.memory=4096m`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Dimensionless count (cores, partitions, retries, …).
    Count,
    /// Mebibytes; rendered with an `m` suffix.
    MiB,
    /// Kibibytes; rendered with a `k` suffix.
    KiB,
    /// Milliseconds; rendered with an `ms` suffix.
    Millis,
    /// Seconds; rendered with an `s` suffix.
    Seconds,
    /// A unitless ratio in `[0, 1]`.
    Ratio,
    /// No unit (booleans, categoricals).
    None,
}

/// The value domain of a single parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Integer range, inclusive on both ends. With `log = true` the unit
    /// interval maps through a logarithmic scale, which suits sizes that
    /// span several orders of magnitude (e.g. 1 GiB – 180 GiB heaps).
    Int {
        /// Smallest admissible value.
        min: i64,
        /// Largest admissible value.
        max: i64,
        /// Interpolate on a log scale when decoding.
        log: bool,
    },
    /// Continuous range, inclusive.
    Float {
        /// Lower bound.
        min: f64,
        /// Upper bound.
        max: f64,
    },
    /// Boolean flag.
    Bool,
    /// Finite set of named choices.
    Categorical {
        /// The admissible choices, in declaration order.
        choices: Vec<String>,
    },
}

impl ParamKind {
    /// Convenience constructor for a categorical kind.
    pub fn categorical<S: Into<String>>(choices: impl IntoIterator<Item = S>) -> Self {
        ParamKind::Categorical {
            choices: choices.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of distinct values (`None` for continuous parameters).
    pub fn cardinality(&self) -> Option<u64> {
        match self {
            ParamKind::Int { min, max, .. } => Some((max - min + 1) as u64),
            ParamKind::Float { .. } => None,
            ParamKind::Bool => Some(2),
            ParamKind::Categorical { choices } => Some(choices.len() as u64),
        }
    }
}

/// A concrete value of one parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Integer value.
    Int(i64),
    /// Floating-point value.
    Float(f64),
    /// Boolean value.
    Bool(bool),
    /// Index into the categorical choice list.
    Cat(usize),
}

impl ParamValue {
    /// The value as `f64` (categorical → choice index, bool → 0/1).
    /// This is the representation ML models train on.
    pub fn as_f64(&self) -> f64 {
        match self {
            ParamValue::Int(v) => *v as f64,
            ParamValue::Float(v) => *v,
            ParamValue::Bool(b) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            ParamValue::Cat(i) => *i as f64,
        }
    }

    /// Integer accessor.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `Int`.
    pub fn as_int(&self) -> i64 {
        match self {
            ParamValue::Int(v) => *v,
            other => panic!("expected Int, got {other:?}"),
        }
    }

    /// Float accessor.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Float`.
    pub fn as_float(&self) -> f64 {
        match self {
            ParamValue::Float(v) => *v,
            other => panic!("expected Float, got {other:?}"),
        }
    }

    /// Boolean accessor.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Bool`.
    pub fn as_bool(&self) -> bool {
        match self {
            ParamValue::Bool(b) => *b,
            other => panic!("expected Bool, got {other:?}"),
        }
    }

    /// Categorical-index accessor.
    ///
    /// # Panics
    ///
    /// Panics if the value is not a `Cat`.
    pub fn as_cat(&self) -> usize {
        match self {
            ParamValue::Cat(i) => *i,
            other => panic!("expected Cat, got {other:?}"),
        }
    }
}

/// Definition of a single tunable parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDef {
    /// Fully qualified name, e.g. `spark.executor.memory`.
    pub name: String,
    /// Value domain.
    pub kind: ParamKind,
    /// The framework's out-of-the-box default.
    pub default: ParamValue,
    /// Unit used when rendering to framework syntax.
    pub unit: Unit,
}

impl ParamDef {
    /// Creates a definition, validating that the default is in-domain.
    ///
    /// # Panics
    ///
    /// Panics if `default` is of the wrong variant or out of range.
    pub fn new(name: impl Into<String>, kind: ParamKind, default: ParamValue, unit: Unit) -> Self {
        let name = name.into();
        let def = ParamDef {
            name,
            kind,
            default,
            unit,
        };
        assert!(
            def.contains(&def.default),
            "default {:?} out of domain for parameter {}",
            def.default,
            def.name
        );
        def
    }

    /// Whether `value` is admissible for this parameter.
    pub fn contains(&self, value: &ParamValue) -> bool {
        match (&self.kind, value) {
            (ParamKind::Int { min, max, .. }, ParamValue::Int(v)) => (min..=max).contains(&v),
            (ParamKind::Float { min, max }, ParamValue::Float(v)) => {
                v.is_finite() && *v >= *min && *v <= *max
            }
            (ParamKind::Bool, ParamValue::Bool(_)) => true,
            (ParamKind::Categorical { choices }, ParamValue::Cat(i)) => *i < choices.len(),
            _ => false,
        }
    }

    /// Decodes a unit-interval coordinate into a value of this parameter.
    ///
    /// The mapping is the stratification LHS relies on: equal sub-intervals
    /// of `[0, 1)` map to equally probable values (or to log-equal buckets
    /// when `log = true`).
    pub fn decode(&self, u: f64) -> ParamValue {
        let u = u.clamp(0.0, 1.0 - 1e-12);
        match &self.kind {
            ParamKind::Int { min, max, log } => {
                let v = if *log {
                    debug_assert!(*min >= 1, "log scale requires min >= 1");
                    let (lo, hi) = ((*min as f64).ln(), ((*max + 1) as f64).ln());
                    (lo + u * (hi - lo)).exp().floor() as i64
                } else {
                    min + (u * (max - min + 1) as f64).floor() as i64
                };
                ParamValue::Int(v.clamp(*min, *max))
            }
            ParamKind::Float { min, max } => ParamValue::Float(min + u * (max - min)),
            ParamKind::Bool => ParamValue::Bool(u >= 0.5),
            ParamKind::Categorical { choices } => {
                ParamValue::Cat(((u * choices.len() as f64).floor() as usize).min(choices.len() - 1))
            }
        }
    }

    /// Encodes a value back to a representative unit-interval coordinate
    /// (the centre of the cell that decodes to it), so that
    /// `decode(encode(v)) == v` for every in-domain `v`.
    ///
    /// # Panics
    ///
    /// Panics if `value` is not admissible.
    pub fn encode(&self, value: &ParamValue) -> f64 {
        assert!(
            self.contains(value),
            "cannot encode out-of-domain value {value:?} for {}",
            self.name
        );
        match (&self.kind, value) {
            (ParamKind::Int { min, max, log }, ParamValue::Int(v)) => {
                if *log {
                    let (lo, hi) = ((*min as f64).ln(), ((*max + 1) as f64).ln());
                    // Centre of the log-cell [v, v+1).
                    (((*v as f64 + 0.5).ln() - lo) / (hi - lo)).clamp(0.0, 1.0 - 1e-12)
                } else {
                    (*v - min) as f64 / (max - min + 1) as f64 + 0.5 / (max - min + 1) as f64
                }
            }
            (ParamKind::Float { min, max }, ParamValue::Float(v)) => {
                if max > min {
                    (v - min) / (max - min)
                } else {
                    0.0
                }
            }
            (ParamKind::Bool, ParamValue::Bool(b)) => {
                if *b {
                    0.75
                } else {
                    0.25
                }
            }
            (ParamKind::Categorical { choices }, ParamValue::Cat(i)) => {
                (*i as f64 + 0.5) / choices.len() as f64
            }
            _ => unreachable!("contains() already checked the variant"),
        }
    }

    /// Renders `value` in framework configuration syntax (e.g. `4096m`,
    /// `true`, `snappy`).
    ///
    /// # Panics
    ///
    /// Panics if `value` is not admissible.
    pub fn render(&self, value: &ParamValue) -> String {
        assert!(self.contains(value), "cannot render out-of-domain value");
        match value {
            ParamValue::Int(v) => match self.unit {
                Unit::MiB => format!("{v}m"),
                Unit::KiB => format!("{v}k"),
                Unit::Millis => format!("{v}ms"),
                Unit::Seconds => format!("{v}s"),
                _ => v.to_string(),
            },
            ParamValue::Float(v) => format!("{v:.4}"),
            ParamValue::Bool(b) => b.to_string(),
            ParamValue::Cat(i) => match &self.kind {
                ParamKind::Categorical { choices } => choices[*i].clone(),
                _ => unreachable!(),
            },
        }
    }
}

impl fmt::Display for ParamDef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({:?})", self.name, self.kind)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_param(min: i64, max: i64, log: bool) -> ParamDef {
        ParamDef::new(
            "p",
            ParamKind::Int { min, max, log },
            ParamValue::Int(min),
            Unit::Count,
        )
    }

    #[test]
    fn int_decode_covers_range() {
        let p = int_param(1, 4, false);
        assert_eq!(p.decode(0.0), ParamValue::Int(1));
        assert_eq!(p.decode(0.24), ParamValue::Int(1));
        assert_eq!(p.decode(0.25), ParamValue::Int(2));
        assert_eq!(p.decode(0.99), ParamValue::Int(4));
        assert_eq!(p.decode(1.0), ParamValue::Int(4));
    }

    #[test]
    fn int_encode_decode_round_trip() {
        let p = int_param(3, 17, false);
        for v in 3..=17 {
            let val = ParamValue::Int(v);
            assert_eq!(p.decode(p.encode(&val)), val, "v = {v}");
        }
    }

    #[test]
    fn log_int_round_trip() {
        let p = int_param(1, 180_000, true);
        for v in [1i64, 2, 10, 999, 1024, 65_536, 180_000] {
            let val = ParamValue::Int(v);
            assert_eq!(p.decode(p.encode(&val)), val, "v = {v}");
        }
    }

    #[test]
    fn log_int_spends_resolution_at_low_end() {
        let p = int_param(1, 100_000, true);
        // First half of the unit interval should cover roughly sqrt of the
        // range, i.e. decode(0.5) ≈ 316, far below the linear midpoint.
        let mid = p.decode(0.5).as_int();
        assert!(mid < 1000, "log midpoint {mid} too high");
        assert!(mid > 100, "log midpoint {mid} too low");
    }

    #[test]
    fn float_round_trip() {
        let p = ParamDef::new(
            "f",
            ParamKind::Float { min: 0.3, max: 0.9 },
            ParamValue::Float(0.6),
            Unit::Ratio,
        );
        for i in 0..=10 {
            let v = 0.3 + 0.06 * i as f64;
            let got = p.decode(p.encode(&ParamValue::Float(v))).as_float();
            assert!((got - v).abs() < 1e-9);
        }
    }

    #[test]
    fn bool_and_categorical() {
        let b = ParamDef::new("b", ParamKind::Bool, ParamValue::Bool(true), Unit::None);
        assert_eq!(b.decode(0.1), ParamValue::Bool(false));
        assert_eq!(b.decode(0.9), ParamValue::Bool(true));
        assert_eq!(b.decode(b.encode(&ParamValue::Bool(false))), ParamValue::Bool(false));

        let c = ParamDef::new(
            "c",
            ParamKind::categorical(["lz4", "lzf", "snappy", "zstd"]),
            ParamValue::Cat(0),
            Unit::None,
        );
        for i in 0..4 {
            assert_eq!(c.decode(c.encode(&ParamValue::Cat(i))), ParamValue::Cat(i));
        }
        assert_eq!(c.render(&ParamValue::Cat(2)), "snappy");
    }

    #[test]
    fn render_units() {
        let m = ParamDef::new(
            "mem",
            ParamKind::Int { min: 1024, max: 4096, log: false },
            ParamValue::Int(1024),
            Unit::MiB,
        );
        assert_eq!(m.render(&ParamValue::Int(2048)), "2048m");
    }

    #[test]
    fn contains_rejects_cross_type() {
        let p = int_param(0, 10, false);
        assert!(!p.contains(&ParamValue::Float(1.0)));
        assert!(!p.contains(&ParamValue::Int(11)));
        assert!(p.contains(&ParamValue::Int(10)));
    }

    #[test]
    #[should_panic(expected = "default")]
    fn new_rejects_bad_default() {
        ParamDef::new(
            "p",
            ParamKind::Int { min: 0, max: 1, log: false },
            ParamValue::Int(7),
            Unit::Count,
        );
    }

    #[test]
    fn cardinality() {
        assert_eq!(int_param(1, 32, false).kind.cardinality(), Some(32));
        assert_eq!(ParamKind::Bool.cardinality(), Some(2));
        assert_eq!(ParamKind::Float { min: 0.0, max: 1.0 }.cardinality(), None);
    }
}
