//! Configuration-space model for cluster analytics frameworks.
//!
//! A tuning problem is defined over a [`ConfigSpace`]: an ordered list of
//! typed parameters ([`ParamDef`]) together with *collinearity groups* —
//! sets of parameters whose values are only meaningful jointly (e.g. the
//! Kryo serializer buffer sizes only matter when the Kryo serializer is
//! active), which the paper's parameter-selection stage permutes together.
//!
//! Tuners and samplers operate in the **unit hypercube**: every parameter
//! maps to `[0, 1)` and a point decodes into a concrete [`Configuration`].
//! Dimension reduction produces a [`Subspace`] that exposes only the
//! selected parameters while pinning the rest to a base configuration.
//!
//! The [`spark`] module ships the 44-parameter Spark 2.4 space used in the
//! paper's evaluation (§5.1), including its collinear groups and the
//! "executor size" joint parameter built from domain knowledge (§4).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod param;
pub mod space;
pub mod spark;

pub use config::Configuration;
pub use param::{ParamDef, ParamKind, ParamValue, Unit};
pub use space::{ConfigSpace, ParamGroup, SearchSpace, Subspace};
