//! Nelder–Mead simplex minimisation.
//!
//! A derivative-free local optimiser used for GP hyperparameter fitting
//! (three log-parameters) — small, robust, and entirely adequate at that
//! dimensionality.

/// Result of a Nelder–Mead run.
#[derive(Debug, Clone)]
pub struct NmResult {
    /// Best point found.
    pub x: Vec<f64>,
    /// Objective value at `x`.
    pub fx: f64,
    /// Number of objective evaluations consumed.
    pub evals: usize,
}

/// Minimises `f` starting from `x0` with initial simplex step `step`.
///
/// Standard coefficients (reflection 1, expansion 2, contraction ½,
/// shrink ½). Terminates after `max_evals` objective calls or when the
/// simplex's objective spread falls below `tol`.
///
/// # Panics
///
/// Panics if `x0` is empty or `max_evals == 0`.
pub fn nelder_mead<F>(mut f: F, x0: &[f64], step: f64, max_evals: usize, tol: f64) -> NmResult
where
    F: FnMut(&[f64]) -> f64,
{
    assert!(!x0.is_empty(), "need at least one dimension");
    assert!(max_evals > 0, "need a positive evaluation budget");
    let dim = x0.len();
    let mut evals = 0usize;
    let mut eval = |x: &[f64], evals: &mut usize| -> f64 {
        *evals += 1;
        let v = f(x);
        if v.is_nan() {
            f64::INFINITY
        } else {
            v
        }
    };

    // Initial simplex: x0 plus one step along each axis.
    let mut simplex: Vec<(Vec<f64>, f64)> = Vec::with_capacity(dim + 1);
    let fx0 = eval(x0, &mut evals);
    simplex.push((x0.to_vec(), fx0));
    for d in 0..dim {
        let mut p = x0.to_vec();
        p[d] += step;
        let fp = eval(&p, &mut evals);
        simplex.push((p, fp));
    }

    while evals < max_evals {
        simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
        let spread = simplex[dim].1 - simplex[0].1;
        // Terminate on *both* a flat objective and a collapsed simplex;
        // value ties alone (e.g. symmetric objectives) must keep moving.
        let diameter = simplex[1..]
            .iter()
            .map(|(p, _)| {
                p.iter()
                    .zip(&simplex[0].0)
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f64::max)
            })
            .fold(0.0, f64::max);
        if spread.abs() < tol && diameter < 1e-7 {
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; dim];
        for (p, _) in &simplex[..dim] {
            for (c, &v) in centroid.iter_mut().zip(p) {
                *c += v;
            }
        }
        for c in &mut centroid {
            *c /= dim as f64;
        }
        let worst = simplex[dim].clone();

        let lerp = |t: f64| -> Vec<f64> {
            centroid
                .iter()
                .zip(&worst.0)
                .map(|(&c, &w)| c + t * (c - w))
                .collect()
        };

        let refl = lerp(1.0);
        let f_refl = eval(&refl, &mut evals);
        if f_refl < simplex[0].1 {
            // Try expanding.
            let exp = lerp(2.0);
            let f_exp = eval(&exp, &mut evals);
            simplex[dim] = if f_exp < f_refl { (exp, f_exp) } else { (refl, f_refl) };
        } else if f_refl < simplex[dim - 1].1 {
            simplex[dim] = (refl, f_refl);
        } else {
            // Contract toward the better of worst/reflected.
            let (base, f_base) = if f_refl < worst.1 {
                (refl.clone(), f_refl)
            } else {
                (worst.0.clone(), worst.1)
            };
            let contr: Vec<f64> = centroid
                .iter()
                .zip(&base)
                .map(|(&c, &b)| c + 0.5 * (b - c))
                .collect();
            let f_contr = eval(&contr, &mut evals);
            if f_contr < f_base {
                simplex[dim] = (contr, f_contr);
            } else {
                // Shrink everything toward the best vertex.
                let best = simplex[0].0.clone();
                for v in simplex.iter_mut().skip(1) {
                    for (vi, &bi) in v.0.iter_mut().zip(&best) {
                        *vi = bi + 0.5 * (*vi - bi);
                    }
                    v.1 = eval(&v.0.clone(), &mut evals);
                }
            }
        }
    }

    simplex.sort_by(|a, b| a.1.total_cmp(&b.1));
    NmResult {
        x: simplex[0].0.clone(),
        fx: simplex[0].1,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_a_quadratic() {
        let r = nelder_mead(
            |x| (x[0] - 3.0).powi(2) + (x[1] + 1.0).powi(2),
            &[0.0, 0.0],
            0.5,
            500,
            1e-12,
        );
        assert!((r.x[0] - 3.0).abs() < 1e-4, "x0 = {}", r.x[0]);
        assert!((r.x[1] + 1.0).abs() < 1e-4, "x1 = {}", r.x[1]);
        assert!(r.fx < 1e-7);
    }

    #[test]
    fn handles_rosenbrock_reasonably() {
        let r = nelder_mead(
            |x| (1.0 - x[0]).powi(2) + 100.0 * (x[1] - x[0] * x[0]).powi(2),
            &[-1.2, 1.0],
            0.5,
            2000,
            1e-14,
        );
        assert!(r.fx < 1e-5, "Rosenbrock residual {}", r.fx);
    }

    #[test]
    fn respects_eval_budget() {
        let mut count = 0usize;
        let _ = nelder_mead(
            |x| {
                count += 1;
                x[0] * x[0]
            },
            &[5.0],
            1.0,
            30,
            0.0,
        );
        // Budget is a soft cap per iteration; allow the final iteration's
        // few extra evals.
        assert!(count <= 35, "used {count} evals");
    }

    #[test]
    fn nan_objective_is_treated_as_infinite() {
        let r = nelder_mead(
            |x| if x[0] < 0.0 { f64::NAN } else { (x[0] - 1.0).powi(2) },
            &[2.0],
            0.5,
            300,
            1e-12,
        );
        assert!((r.x[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn one_dimensional_works() {
        let r = nelder_mead(|x| (x[0] - 0.25).powi(2), &[10.0], 1.0, 400, 1e-12);
        assert!((r.x[0] - 0.25).abs() < 1e-3, "x = {}", r.x[0]);
    }
}
