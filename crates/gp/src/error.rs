//! Typed errors for GP fitting.
//!
//! Everything that can go wrong while building a surrogate is expressed
//! here instead of panicking: degenerate tuning sessions (duplicate
//! points, NaN objective values, near-singular kernel matrices) must
//! degrade the caller's behaviour, not abort the process.

use robotune_linalg::LinalgError;

/// Why a GP could not be fitted.
#[derive(Debug, Clone, PartialEq)]
pub enum GpError {
    /// The kernel matrix stayed non-positive-definite even after jitter
    /// escalation — typically heavily duplicated inputs with zero noise.
    Singular(LinalgError),
    /// The training inputs themselves are unusable (empty set, x/y length
    /// mismatch, non-finite target, negative noise variance).
    InvalidInput(&'static str),
    /// Every hyperparameter candidate, including the safe fallback,
    /// failed to factor.
    HyperFitFailed(LinalgError),
}

impl std::fmt::Display for GpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GpError::Singular(e) => write!(f, "kernel matrix not factorable: {e}"),
            GpError::InvalidInput(msg) => write!(f, "invalid GP training input: {msg}"),
            GpError::HyperFitFailed(e) => {
                write!(f, "no hyperparameter candidate produced a factorable kernel: {e}")
            }
        }
    }
}

impl std::error::Error for GpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GpError::Singular(e) | GpError::HyperFitFailed(e) => Some(e),
            GpError::InvalidInput(_) => None,
        }
    }
}

impl From<LinalgError> for GpError {
    fn from(e: LinalgError) -> Self {
        GpError::Singular(e)
    }
}
