//! Maximum-likelihood GP hyperparameter fitting.
//!
//! Optimises `(log ℓ, log σ², log σ_n²)` of a Matérn 5/2 + white-noise GP
//! by multi-start Nelder–Mead on the log marginal likelihood. Targets are
//! standardised inside [`crate::model::GpModel`], so the same search box
//! works across workloads.
//!
//! The hot path is engineered around two observations:
//!
//! * every likelihood evaluation shares the same training set, so the
//!   pairwise distances and standardised targets are computed **once**
//!   ([`PreparedData`]) instead of being cloned and rebuilt per candidate;
//! * the restarts are independent, so they run on scoped threads
//!   ([`FitStrategy::Parallel`]) with a deterministic best-of selection
//!   (lowest negative log-marginal-likelihood, lowest restart index on
//!   ties) — the chosen hyperparameters are byte-identical to the serial
//!   path, and the start points are drawn from the caller's RNG *before*
//!   any thread spawns, so the RNG stream (and with it the whole tuning
//!   trajectory) matches the historical serial implementation bit for bit.

use std::sync::atomic::{AtomicU64, Ordering};

use rand::Rng;

use crate::error::GpError;
use crate::kernel::{Kernel, Matern52, Matern52Ard};
use crate::model::GpModel;
use crate::opt::{nelder_mead, NmResult};
use crate::prepared::PreparedData;

/// Monotone sequence number shared by every `diag.gp.fit` event in the
/// process, so per-session subsequences of the series stay monotone too.
/// Telemetry only: touched exclusively while tracing is enabled.
static FIT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Emits one structured `diag.gp.fit` tuner-health event for a
/// successful fit: the learned hyperparameters plus the kernel's
/// numerical conditioning (jitter consumed, condition estimate) and
/// whether the documented fallback values had to be used. Free when
/// tracing is disabled.
fn emit_fit_diag<K: Kernel>(scales: &[f64], variance: f64, fallback: bool, m: &GpModel<K>) {
    if !robotune_obs::is_enabled() {
        return;
    }
    let iter = FIT_SEQ.fetch_add(1, Ordering::Relaxed);
    robotune_obs::diag("diag.gp.fit", iter, || {
        serde_json::json!({
            "lengthscales": scales,
            "variance": variance,
            "noise": m.noise(),
            "n": m.n_observations() as u64,
            "jitter": m.jitter(),
            "cond": m.cond_estimate(),
            "fallback": fallback,
        })
    });
}

/// Documented safe-fallback length scale used when optimisation produces
/// no usable candidate.
pub const FALLBACK_LENGTH_SCALE: f64 = 0.5;
/// Documented safe-fallback signal variance (standardised-target units).
pub const FALLBACK_VARIANCE: f64 = 1.0;
/// Documented safe-fallback white-noise variance. Deliberately smaller
/// than the `1e-3` default *start* point: a fallback should trust the data
/// it has rather than inflate the noise floor.
pub const FALLBACK_NOISE: f64 = 1e-4;

/// How [`fit_gp`] / [`fit_gp_ard`] execute their multi-start restarts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FitStrategy {
    /// Distance-cached likelihood evaluations with restarts spread over
    /// `std::thread::scope` threads (one per start, bounded by the host's
    /// parallelism). The default.
    #[default]
    Parallel,
    /// Distance-cached likelihood evaluations with restarts run serially
    /// on the calling thread. Same arithmetic as [`FitStrategy::Parallel`];
    /// results are byte-identical.
    Serial,
    /// The historical implementation: a full [`GpModel::fit`] — coordinate
    /// clone, distance recomputation, kernel rebuild — per likelihood
    /// evaluation, restarts serial. Kept as the micro-benchmark baseline
    /// and the oracle for equivalence tests.
    Reference,
}

/// Options for [`fit_gp`].
#[derive(Debug, Clone)]
pub struct HyperFitOptions {
    /// Number of random restarts in addition to the default start point.
    pub restarts: usize,
    /// Nelder–Mead evaluation budget per restart.
    pub evals_per_restart: usize,
    /// Bounds on `log ℓ` (unit-cube length scales).
    pub log_length_bounds: (f64, f64),
    /// Bounds on `log σ²`.
    pub log_variance_bounds: (f64, f64),
    /// Bounds on `log σ_n²`.
    pub log_noise_bounds: (f64, f64),
    /// Execution strategy for the restarts.
    pub strategy: FitStrategy,
}

impl Default for HyperFitOptions {
    fn default() -> Self {
        HyperFitOptions {
            restarts: 3,
            evals_per_restart: 120,
            // ℓ from ~0.02 to ~7.4 in unit-cube units.
            log_length_bounds: (-4.0, 2.0),
            // σ² from ~0.05 to ~20 (targets are standardised).
            log_variance_bounds: (-3.0, 3.0),
            // σ_n² from ~5e-5 to ~1: measured runtimes are noisy, never exact.
            log_noise_bounds: (-10.0, 0.0),
            strategy: FitStrategy::default(),
        }
    }
}

fn clamp3(theta: &[f64], opts: &HyperFitOptions) -> (f64, f64, f64) {
    (
        theta[0].clamp(opts.log_length_bounds.0, opts.log_length_bounds.1),
        theta[1].clamp(opts.log_variance_bounds.0, opts.log_variance_bounds.1),
        theta[2].clamp(opts.log_noise_bounds.0, opts.log_noise_bounds.1),
    )
}

/// Runs one Nelder–Mead restart per start point, serially or on scoped
/// threads. The result vector is indexed by start, independent of thread
/// scheduling, so downstream selection is deterministic either way.
fn run_restarts<F>(starts: &[Vec<f64>], parallel: bool, evals: usize, neg_lml: &F) -> Vec<NmResult>
where
    F: Fn(&[f64]) -> f64 + Sync,
{
    let workers = if parallel {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        1
    };
    let results: Vec<NmResult> = if workers > 1 && starts.len() > 1 {
        // Carry the caller's trace context across the scoped-thread
        // boundary so each restart's span links back to the enclosing
        // `gp.hyperfit` span instead of rendering as an orphan.
        let ctx = robotune_obs::TraceCtx::current();
        std::thread::scope(|s| {
            let handles: Vec<_> = starts
                .iter()
                .map(|st| {
                    s.spawn(move || {
                        let _trace = robotune_obs::adopt(ctx);
                        let _span = robotune_obs::span("gp.hyperfit_restart");
                        nelder_mead(neg_lml, st, 0.7, evals, 1e-8)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    } else {
        starts
            .iter()
            .map(|st| nelder_mead(neg_lml, st, 0.7, evals, 1e-8))
            .collect()
    };
    for r in &results {
        robotune_obs::incr("gp.hyperfit_restart", 1);
        robotune_obs::record("gp.hyperfit_evals", r.evals as f64);
    }
    results
}

/// Picks the restart with the best (lowest) finite negative LML. Ties
/// break on the lowest restart index — the same winner the historical
/// serial first-strict-minimum loop produced.
fn select_best(results: Vec<NmResult>) -> Option<Vec<f64>> {
    let mut best: Option<(f64, Vec<f64>)> = None;
    for r in results {
        if r.fx.is_finite()
            && best
                .as_ref()
                .is_none_or(|(b, _)| r.fx.total_cmp(b) == std::cmp::Ordering::Less)
        {
            best = Some((r.fx, r.x));
        }
    }
    best.map(|(_, t)| t)
}

/// Fits a Matérn 5/2 + white-noise GP with ML-II hyperparameters.
///
/// Returns the fitted model with the best marginal likelihood found over
/// all restarts. Falls back to the documented defaults
/// ([`FALLBACK_LENGTH_SCALE`] = 0.5, [`FALLBACK_VARIANCE`] = 1,
/// [`FALLBACK_NOISE`] = 1e-4) — counted under `gp.hyperfit_fallback` — if
/// every optimised candidate fails to factor, and to a typed [`GpError`],
/// never a panic, when even the fallback cannot be factored or the inputs
/// are unusable (empty set, NaN targets).
pub fn fit_gp<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    opts: &HyperFitOptions,
    rng: &mut R,
) -> Result<GpModel<Matern52>, GpError> {
    let _span = robotune_obs::span("gp.hyperfit");
    // Start points are drawn from the caller's RNG here, before any
    // strategy-specific work: every strategy consumes the same stream.
    let mut starts = vec![vec![(0.5f64).ln(), 0.0, (1e-3f64).ln()]];
    for _ in 0..opts.restarts {
        starts.push(vec![
            rng.gen_range(opts.log_length_bounds.0..opts.log_length_bounds.1),
            rng.gen_range(opts.log_variance_bounds.0..opts.log_variance_bounds.1),
            rng.gen_range(opts.log_noise_bounds.0..opts.log_noise_bounds.1),
        ]);
    }

    if opts.strategy == FitStrategy::Reference {
        return fit_gp_reference(x, y, opts, &starts);
    }

    let data = PreparedData::prepare(x.to_vec(), y)?;
    let neg_lml = |theta: &[f64]| -> f64 {
        let (ll, lv, ln) = clamp3(theta, opts);
        match data.log_marginal(&Matern52::new(ll.exp(), lv.exp()), ln.exp()) {
            Ok(l) => -l,
            Err(_) => f64::INFINITY,
        }
    };

    let parallel = opts.strategy == FitStrategy::Parallel;
    let results = run_restarts(&starts, parallel, opts.evals_per_restart, &neg_lml);
    let mut fallback = false;
    let theta = select_best(results).unwrap_or_else(|| {
        // No restart produced a finite likelihood: every degraded fit is
        // accounted for, including this one.
        robotune_obs::incr("gp.hyperfit_fallback", 1);
        fallback = true;
        vec![FALLBACK_LENGTH_SCALE.ln(), FALLBACK_VARIANCE.ln(), FALLBACK_NOISE.ln()]
    });
    let (ll, lv, ln) = clamp3(&theta, opts);
    let fitted = GpModel::fit_prepared(&data, Matern52::new(ll.exp(), lv.exp()), ln.exp())
        .or_else(|_| {
            // Optimised hyperparameters failed to factor: retry once with
            // the safe defaults, then report the typed failure instead of
            // panicking — the caller degrades to a non-surrogate proposal.
            robotune_obs::incr("gp.hyperfit_fallback", 1);
            fallback = true;
            GpModel::fit_prepared(
                &data,
                Matern52::new(FALLBACK_LENGTH_SCALE, FALLBACK_VARIANCE),
                FALLBACK_NOISE,
            )
            .map_err(|e| match e {
                GpError::Singular(le) => GpError::HyperFitFailed(le),
                other => other,
            })
        });
    if let Ok(m) = &fitted {
        emit_fit_diag(&[m.kernel().length_scale], m.kernel().variance, fallback, m);
    }
    fitted
}

/// The historical `fit_gp` body: one full `GpModel::fit` per likelihood
/// evaluation, serial restarts. Benchmark baseline and equivalence oracle.
fn fit_gp_reference(
    x: &[Vec<f64>],
    y: &[f64],
    opts: &HyperFitOptions,
    starts: &[Vec<f64>],
) -> Result<GpModel<Matern52>, GpError> {
    let neg_lml = |theta: &[f64]| -> f64 {
        let (ll, lv, ln) = clamp3(theta, opts);
        match GpModel::fit(x.to_vec(), y, Matern52::new(ll.exp(), lv.exp()), ln.exp()) {
            Ok(m) => -m.log_marginal_likelihood(),
            Err(_) => f64::INFINITY,
        }
    };

    let results = run_restarts(starts, false, opts.evals_per_restart, &neg_lml);
    let theta = select_best(results).unwrap_or_else(|| {
        robotune_obs::incr("gp.hyperfit_fallback", 1);
        vec![FALLBACK_LENGTH_SCALE.ln(), FALLBACK_VARIANCE.ln(), FALLBACK_NOISE.ln()]
    });
    let (ll, lv, ln) = clamp3(&theta, opts);
    GpModel::fit(x.to_vec(), y, Matern52::new(ll.exp(), lv.exp()), ln.exp()).or_else(|_| {
        robotune_obs::incr("gp.hyperfit_fallback", 1);
        GpModel::fit(
            x.to_vec(),
            y,
            Matern52::new(FALLBACK_LENGTH_SCALE, FALLBACK_VARIANCE),
            FALLBACK_NOISE,
        )
        .map_err(|e| match e {
            GpError::Singular(le) => GpError::HyperFitFailed(le),
            other => other,
        })
    })
}

/// Fits an ARD Matérn 5/2 + white-noise GP with ML-II hyperparameters:
/// `d` log length scales plus log variance and log noise, optimised by
/// multi-start Nelder–Mead. Uses the same distance cache, parallel
/// restarts, documented fallback values and `gp.hyperfit_fallback`
/// accounting as [`fit_gp`]. Degenerate inputs yield a typed [`GpError`],
/// never a panic.
pub fn fit_gp_ard<R: Rng + ?Sized>(
    x: &[Vec<f64>],
    y: &[f64],
    opts: &HyperFitOptions,
    rng: &mut R,
) -> Result<GpModel<Matern52Ard>, GpError> {
    let _span = robotune_obs::span("gp.hyperfit_ard");
    let Some(first) = x.first() else {
        return Err(GpError::InvalidInput("cannot fit a GP on zero observations"));
    };
    let d = first.len();
    let clamp = |theta: &[f64]| -> (Vec<f64>, f64, f64) {
        let scales: Vec<f64> = theta[..d]
            .iter()
            .map(|&t| t.clamp(opts.log_length_bounds.0, opts.log_length_bounds.1).exp())
            .collect();
        let v = theta[d]
            .clamp(opts.log_variance_bounds.0, opts.log_variance_bounds.1)
            .exp();
        let n = theta[d + 1]
            .clamp(opts.log_noise_bounds.0, opts.log_noise_bounds.1)
            .exp();
        (scales, v, n)
    };

    let mut start = vec![(0.5f64).ln(); d];
    start.push(0.0);
    start.push((1e-3f64).ln());
    let mut starts = vec![start];
    for _ in 0..opts.restarts {
        let mut s: Vec<f64> = (0..d)
            .map(|_| rng.gen_range(opts.log_length_bounds.0..opts.log_length_bounds.1))
            .collect();
        s.push(rng.gen_range(opts.log_variance_bounds.0..opts.log_variance_bounds.1));
        s.push(rng.gen_range(opts.log_noise_bounds.0..opts.log_noise_bounds.1));
        starts.push(s);
    }

    // ARD has d+2 parameters; scale the evaluation budget with dimension.
    let evals = opts.evals_per_restart * (1 + d / 2);

    let fallback_theta = || {
        robotune_obs::incr("gp.hyperfit_fallback", 1);
        let mut t = vec![FALLBACK_LENGTH_SCALE.ln(); d];
        t.push(FALLBACK_VARIANCE.ln());
        t.push(FALLBACK_NOISE.ln());
        t
    };

    if opts.strategy == FitStrategy::Reference {
        let neg_lml = |theta: &[f64]| -> f64 {
            let (scales, v, n) = clamp(theta);
            match GpModel::fit(x.to_vec(), y, Matern52Ard::new(scales, v), n) {
                Ok(m) => -m.log_marginal_likelihood(),
                Err(_) => f64::INFINITY,
            }
        };
        let results = run_restarts(&starts, false, evals, &neg_lml);
        let theta = select_best(results).unwrap_or_else(fallback_theta);
        let (scales, v, n) = clamp(&theta);
        return GpModel::fit(x.to_vec(), y, Matern52Ard::new(scales, v), n).or_else(|_| {
            robotune_obs::incr("gp.hyperfit_fallback", 1);
            GpModel::fit(
                x.to_vec(),
                y,
                Matern52Ard::new(vec![FALLBACK_LENGTH_SCALE; d], FALLBACK_VARIANCE),
                FALLBACK_NOISE,
            )
            .map_err(|e| match e {
                GpError::Singular(le) => GpError::HyperFitFailed(le),
                other => other,
            })
        });
    }

    let data = PreparedData::prepare_ard(x.to_vec(), y)?;
    let neg_lml = |theta: &[f64]| -> f64 {
        let (scales, v, n) = clamp(theta);
        match data.log_marginal(&Matern52Ard::new(scales, v), n) {
            Ok(l) => -l,
            Err(_) => f64::INFINITY,
        }
    };
    let parallel = opts.strategy == FitStrategy::Parallel;
    let results = run_restarts(&starts, parallel, evals, &neg_lml);
    let mut fallback = false;
    let theta = match select_best(results) {
        Some(t) => t,
        None => {
            fallback = true;
            fallback_theta()
        }
    };
    let (scales, v, n) = clamp(&theta);
    let fitted = GpModel::fit_prepared(&data, Matern52Ard::new(scales, v), n).or_else(|_| {
        robotune_obs::incr("gp.hyperfit_fallback", 1);
        fallback = true;
        GpModel::fit_prepared(
            &data,
            Matern52Ard::new(vec![FALLBACK_LENGTH_SCALE; d], FALLBACK_VARIANCE),
            FALLBACK_NOISE,
        )
        .map_err(|e| match e {
            GpError::Singular(le) => GpError::HyperFitFailed(le),
            other => other,
        })
    });
    if let Ok(m) = &fitted {
        emit_fit_diag(&m.kernel().length_scales, m.kernel().variance, fallback, m);
    }
    fitted
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    #[test]
    fn fitted_model_beats_bad_fixed_hyperparameters() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64 / 19.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 9.0).sin() * 2.0).collect();
        let mut rng = rng_from_seed(1);
        let fitted = fit_gp(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        let clumsy = GpModel::fit(x.clone(), &y, Matern52::new(5.0, 0.1), 0.5).unwrap();
        assert!(
            fitted.log_marginal_likelihood() > clumsy.log_marginal_likelihood(),
            "ML-II fit should dominate an arbitrary kernel"
        );
    }

    #[test]
    fn fitted_model_predicts_held_out_points() {
        let x: Vec<Vec<f64>> = (0..25).map(|i| vec![i as f64 / 24.0]).collect();
        let f = |t: f64| (t * 7.0).sin() + 0.3 * t;
        let y: Vec<f64> = x.iter().map(|p| f(p[0])).collect();
        let mut rng = rng_from_seed(2);
        let m = fit_gp(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        for q in [0.13, 0.47, 0.81] {
            let (mu, _) = m.predict(&[q]);
            assert!((mu - f(q)).abs() < 0.1, "at {q}: {mu} vs {}", f(q));
        }
    }

    #[test]
    fn noisy_data_yields_nonzero_noise_estimate() {
        let mut rng = rng_from_seed(3);
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 39.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|p| p[0] * 2.0 + 0.3 * robotune_stats::standard_normal(&mut rng))
            .collect();
        let m = fit_gp(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        assert!(m.noise() > 1e-4, "noise estimate {} too small", m.noise());
    }

    #[test]
    fn ard_learns_to_ignore_an_irrelevant_dimension() {
        use rand::Rng as _;
        let mut rng = rng_from_seed(5);
        // y depends on x0 only; x1 is noise.
        let x: Vec<Vec<f64>> = (0..35)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 7.0).sin()).collect();
        let m = fit_gp_ard(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        let scales = &m.kernel().length_scales;
        assert!(
            scales[1] > 2.0 * scales[0],
            "irrelevant dimension should get a longer scale: {scales:?}"
        );
    }

    #[test]
    fn ard_marginal_likelihood_at_least_matches_isotropic_on_anisotropic_data() {
        use rand::Rng as _;
        let mut rng = rng_from_seed(6);
        let x: Vec<Vec<f64>> = (0..30)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        // Fast variation along x0, slow along x1.
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 12.0).sin() + 0.3 * p[1]).collect();
        let iso = fit_gp(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        let ard = fit_gp_ard(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        assert!(
            ard.log_marginal_likelihood() >= iso.log_marginal_likelihood() - 1.0,
            "ARD ({}) should not lose badly to isotropic ({})",
            ard.log_marginal_likelihood(),
            iso.log_marginal_likelihood()
        );
    }

    #[test]
    fn works_at_higher_dimension() {
        let mut rng = rng_from_seed(4);
        use rand::Rng as _;
        let x: Vec<Vec<f64>> = (0..30)
            .map(|_| (0..5).map(|_| rng.gen::<f64>()).collect())
            .collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * 3.0 - p[1] + (p[2] * 4.0).cos()).collect();
        let m = fit_gp(&x, &y, &HyperFitOptions::default(), &mut rng).expect("fit");
        // Sanity: posterior at a training point tracks its target.
        let (mu, _) = m.predict(&x[0]);
        assert!((mu - y[0]).abs() < 0.5);
    }

    #[test]
    fn near_singular_design_matrix_is_an_error_or_fallback_never_a_panic() {
        // A memoized sampler that keeps replaying the incumbent produces a
        // design matrix of identical rows. With the noise floor allowed to
        // reach ~0 this is the classic path to a non-PD kernel. Whatever
        // happens, it must be a typed result, not a process abort.
        let mut rng = rng_from_seed(11);
        let x: Vec<Vec<f64>> = vec![vec![0.25, 0.75]; 12];
        let y: Vec<f64> = (0..12).map(|i| 3.0 + 1e-12 * i as f64).collect();
        let opts = HyperFitOptions {
            // Force the optimiser towards zero noise so jitter is the only
            // line of defence.
            log_noise_bounds: (-40.0, -39.0),
            ..HyperFitOptions::default()
        };
        match fit_gp(&x, &y, &opts, &mut rng) {
            Ok(m) => {
                let (mu, var) = m.predict(&[0.25, 0.75]);
                assert!(mu.is_finite() && var.is_finite());
            }
            Err(e) => assert!(
                matches!(e, GpError::Singular(_) | GpError::HyperFitFailed(_)),
                "unexpected error kind: {e:?}"
            ),
        }
    }

    #[test]
    fn empty_input_yields_typed_error_from_both_fitters() {
        let mut rng = rng_from_seed(1);
        let r = fit_gp_ard(&[], &[], &HyperFitOptions::default(), &mut rng);
        assert!(matches!(r, Err(GpError::InvalidInput(_))));
        let r = fit_gp(&[], &[], &HyperFitOptions::default(), &mut rng);
        assert!(matches!(r, Err(GpError::InvalidInput(_))));
    }

    fn equivalence_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        use rand::Rng as _;
        let mut rng = rng_from_seed(42);
        let x: Vec<Vec<f64>> = (0..22)
            .map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).sin() + p[1] * p[1]).collect();
        (x, y)
    }

    #[test]
    fn all_strategies_yield_byte_identical_models() {
        let (x, y) = equivalence_data();
        let fit_with = |strategy: FitStrategy| {
            let mut rng = rng_from_seed(9);
            let opts = HyperFitOptions {
                strategy,
                ..HyperFitOptions::default()
            };
            fit_gp(&x, &y, &opts, &mut rng).expect("fit")
        };
        let reference = fit_with(FitStrategy::Reference);
        for strategy in [FitStrategy::Serial, FitStrategy::Parallel] {
            let m = fit_with(strategy);
            assert_eq!(
                m.kernel().length_scale,
                reference.kernel().length_scale,
                "{strategy:?} length scale"
            );
            assert_eq!(m.kernel().variance, reference.kernel().variance, "{strategy:?}");
            assert_eq!(m.noise(), reference.noise(), "{strategy:?}");
            assert_eq!(
                m.log_marginal_likelihood(),
                reference.log_marginal_likelihood(),
                "{strategy:?}"
            );
            for q in [[0.2, 0.4], [0.7, 0.1], [0.55, 0.95]] {
                assert_eq!(m.predict(&q), reference.predict(&q), "{strategy:?} at {q:?}");
            }
        }
    }

    #[test]
    fn ard_strategies_yield_byte_identical_models() {
        let (x, y) = equivalence_data();
        let fit_with = |strategy: FitStrategy| {
            let mut rng = rng_from_seed(13);
            let opts = HyperFitOptions {
                strategy,
                restarts: 2,
                evals_per_restart: 60,
                ..HyperFitOptions::default()
            };
            fit_gp_ard(&x, &y, &opts, &mut rng).expect("fit")
        };
        let reference = fit_with(FitStrategy::Reference);
        for strategy in [FitStrategy::Serial, FitStrategy::Parallel] {
            let m = fit_with(strategy);
            assert_eq!(m.kernel().length_scales, reference.kernel().length_scales);
            assert_eq!(m.kernel().variance, reference.kernel().variance);
            assert_eq!(m.noise(), reference.noise());
            assert_eq!(m.log_marginal_likelihood(), reference.log_marginal_likelihood());
        }
    }
}
