//! Stationary covariance kernels.

use robotune_linalg::sq_dist;

/// A positive-definite covariance function over unit-cube points.
pub trait Kernel {
    /// Covariance between two points.
    fn eval(&self, a: &[f64], b: &[f64]) -> f64;

    /// Prior variance at a point, `k(x, x)`. Stationary kernels override
    /// this with a constant.
    fn diag(&self, a: &[f64]) -> f64 {
        self.eval(a, a)
    }
}

/// Matérn 5/2: `σ²·(1 + √5 r/ℓ + 5r²/(3ℓ²))·exp(−√5 r/ℓ)`.
///
/// Twice mean-square differentiable — smooth enough for gradient-flavoured
/// acquisition optimisation yet not unrealistically smooth for measured
/// runtimes; the standard choice for tuning objectives (Snoek et al. 2012,
/// CherryPick, and this paper's §4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Matern52 {
    /// Isotropic length scale ℓ (> 0).
    pub length_scale: f64,
    /// Signal variance σ² (> 0).
    pub variance: f64,
}

impl Matern52 {
    /// Creates the kernel, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics unless both hyperparameters are positive and finite.
    pub fn new(length_scale: f64, variance: f64) -> Self {
        assert!(
            length_scale > 0.0 && length_scale.is_finite(),
            "length_scale must be positive"
        );
        assert!(variance > 0.0 && variance.is_finite(), "variance must be positive");
        Matern52 {
            length_scale,
            variance,
        }
    }
}

impl Matern52 {
    /// Covariance as a function of the *squared* Euclidean distance.
    ///
    /// This is the distance-cache entry point: [`Kernel::eval`] delegates
    /// here, so evaluating from a precomputed `‖a − b‖²` is bit-identical
    /// to evaluating from the coordinates.
    #[inline]
    pub fn eval_sq_dist(&self, d2: f64) -> f64 {
        let r = d2.sqrt();
        let s = 5.0_f64.sqrt() * r / self.length_scale;
        self.variance * (1.0 + s + s * s / 3.0) * (-s).exp()
    }
}

impl Kernel for Matern52 {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq_dist(sq_dist(a, b))
    }

    fn diag(&self, _a: &[f64]) -> f64 {
        self.variance
    }
}

/// Matérn 5/2 with Automatic Relevance Determination: one length scale
/// per input dimension.
///
/// ARD lets the marginal likelihood stretch irrelevant dimensions flat
/// (large ℓᵢ), which suits BO over a selected subspace where the
/// surviving parameters still differ widely in influence. The paper's
/// implementation uses an isotropic kernel; ARD is provided as the
/// natural extension and compared in the `gp-ard` ablation.
#[derive(Debug, Clone, PartialEq)]
pub struct Matern52Ard {
    /// Per-dimension length scales (all > 0).
    pub length_scales: Vec<f64>,
    /// Signal variance σ² (> 0).
    pub variance: f64,
}

impl Matern52Ard {
    /// Creates the kernel, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics if any length scale or the variance is non-positive or
    /// non-finite, or if `length_scales` is empty.
    pub fn new(length_scales: Vec<f64>, variance: f64) -> Self {
        assert!(!length_scales.is_empty(), "need at least one dimension");
        assert!(
            length_scales.iter().all(|&l| l > 0.0 && l.is_finite()),
            "length scales must be positive"
        );
        assert!(variance > 0.0 && variance.is_finite(), "variance must be positive");
        Matern52Ard {
            length_scales,
            variance,
        }
    }

    /// The isotropic kernel with this ARD kernel's geometric-mean length
    /// scale — useful as a comparison baseline.
    pub fn to_isotropic(&self) -> Matern52 {
        let log_mean = self.length_scales.iter().map(|l| l.ln()).sum::<f64>()
            / self.length_scales.len() as f64;
        Matern52::new(log_mean.exp(), self.variance)
    }
}

impl Matern52Ard {
    /// Covariance as a function of the *scaled* squared distance
    /// `Σ_k ((a_k − b_k)/ℓ_k)²`. [`Kernel::eval`] delegates here, so
    /// evaluating from cached per-dimension differences is bit-identical
    /// to evaluating from the coordinates.
    #[inline]
    pub fn eval_scaled_sq_dist(&self, r2: f64) -> f64 {
        let s = 5.0_f64.sqrt() * r2.sqrt();
        self.variance * (1.0 + s + s * s / 3.0) * (-s).exp()
    }
}

impl Kernel for Matern52Ard {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), self.length_scales.len(), "dimension mismatch");
        let r2: f64 = a
            .iter()
            .zip(b)
            .zip(&self.length_scales)
            .map(|((&x, &y), &l)| {
                let d = (x - y) / l;
                d * d
            })
            .sum();
        self.eval_scaled_sq_dist(r2)
    }

    fn diag(&self, _a: &[f64]) -> f64 {
        self.variance
    }
}

/// Squared-exponential (RBF): `σ²·exp(−r²/(2ℓ²))`. Included for ablations
/// against the Matérn choice.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SquaredExp {
    /// Isotropic length scale ℓ (> 0).
    pub length_scale: f64,
    /// Signal variance σ² (> 0).
    pub variance: f64,
}

impl SquaredExp {
    /// Creates the kernel, validating positivity.
    ///
    /// # Panics
    ///
    /// Panics unless both hyperparameters are positive and finite.
    pub fn new(length_scale: f64, variance: f64) -> Self {
        assert!(
            length_scale > 0.0 && length_scale.is_finite(),
            "length_scale must be positive"
        );
        assert!(variance > 0.0 && variance.is_finite(), "variance must be positive");
        SquaredExp {
            length_scale,
            variance,
        }
    }
}

impl SquaredExp {
    /// Covariance as a function of the squared Euclidean distance (the
    /// distance-cache entry point; [`Kernel::eval`] delegates here).
    #[inline]
    pub fn eval_sq_dist(&self, d2: f64) -> f64 {
        self.variance * (-d2 / (2.0 * self.length_scale * self.length_scale)).exp()
    }
}

impl Kernel for SquaredExp {
    fn eval(&self, a: &[f64], b: &[f64]) -> f64 {
        self.eval_sq_dist(sq_dist(a, b))
    }

    fn diag(&self, _a: &[f64]) -> f64 {
        self.variance
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matern_at_zero_distance_is_variance() {
        let k = Matern52::new(0.5, 2.0);
        let x = [0.1, 0.2, 0.3];
        assert!((k.eval(&x, &x) - 2.0).abs() < 1e-12);
        assert!((k.diag(&x) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn matern_decays_monotonically() {
        let k = Matern52::new(0.3, 1.0);
        let origin = [0.0];
        let mut prev = k.eval(&origin, &origin);
        for i in 1..20 {
            let v = k.eval(&origin, &[i as f64 * 0.1]);
            assert!(v < prev, "kernel must decay with distance");
            assert!(v > 0.0);
            prev = v;
        }
    }

    #[test]
    fn matern_is_symmetric() {
        let k = Matern52::new(0.7, 1.3);
        let a = [0.1, 0.9];
        let b = [0.4, 0.2];
        assert!((k.eval(&a, &b) - k.eval(&b, &a)).abs() < 1e-15);
    }

    #[test]
    fn longer_length_scale_means_slower_decay() {
        let short = Matern52::new(0.1, 1.0);
        let long = Matern52::new(1.0, 1.0);
        let a = [0.0];
        let b = [0.5];
        assert!(long.eval(&a, &b) > short.eval(&a, &b));
    }

    #[test]
    fn rbf_upper_bounds_matern_at_matched_params() {
        // The SE kernel is smoother and decays slower near zero distance.
        let m = Matern52::new(0.5, 1.0);
        let s = SquaredExp::new(0.5, 1.0);
        let a = [0.0];
        let b = [0.1];
        assert!(s.eval(&a, &b) > m.eval(&a, &b));
    }

    #[test]
    #[should_panic(expected = "length_scale must be positive")]
    fn rejects_bad_length_scale() {
        Matern52::new(0.0, 1.0);
    }

    #[test]
    fn ard_with_equal_scales_matches_isotropic() {
        let iso = Matern52::new(0.4, 1.5);
        let ard = Matern52Ard::new(vec![0.4, 0.4, 0.4], 1.5);
        let a = [0.1, 0.5, 0.9];
        let b = [0.3, 0.2, 0.8];
        assert!((iso.eval(&a, &b) - ard.eval(&a, &b)).abs() < 1e-12);
    }

    #[test]
    fn ard_long_scale_flattens_a_dimension() {
        let ard = Matern52Ard::new(vec![0.2, 100.0], 1.0);
        let a = [0.5, 0.0];
        let b_move_relevant = [0.7, 0.0];
        let b_move_irrelevant = [0.5, 1.0];
        // Moving along the long-scale axis barely changes covariance.
        assert!(ard.eval(&a, &b_move_irrelevant) > 0.999);
        assert!(ard.eval(&a, &b_move_relevant) < 0.9);
    }

    #[test]
    fn ard_to_isotropic_uses_geometric_mean() {
        let ard = Matern52Ard::new(vec![0.1, 10.0], 2.0);
        let iso = ard.to_isotropic();
        assert!((iso.length_scale - 1.0).abs() < 1e-12);
        assert_eq!(iso.variance, 2.0);
    }

    #[test]
    #[should_panic(expected = "length scales must be positive")]
    fn ard_rejects_bad_scales() {
        Matern52Ard::new(vec![0.5, -1.0], 1.0);
    }
}
