//! Gaussian-process regression for the ROBOTune BO engine.
//!
//! The paper's surrogate (§3.4, §4) is a GP with a **Matérn 5/2 plus white
//! noise** covariance — "preferred to model practical functions" — over
//! observations assumed i.i.d. Gaussian. This crate provides:
//!
//! * [`kernel`] — Matérn 5/2, squared-exponential and white-noise kernels;
//! * [`model`] — [`model::GpModel`]: Cholesky-based posterior mean/variance
//!   and the log marginal likelihood, with automatic jitter escalation;
//! * [`hyper`] — maximum-likelihood hyperparameter fitting via multi-start
//!   Nelder–Mead on log-parameters (our stand-in for scikit-optimize's
//!   L-BFGS-B restarts), with restarts run on scoped threads;
//! * [`prepared`] — the training-set distance cache shared across all
//!   hyperparameter candidates of one fit;
//! * [`opt`] — the Nelder–Mead simplex optimiser itself.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod error;
pub mod hyper;
pub mod kernel;
pub mod model;
pub mod opt;
pub mod prepared;

pub use error::GpError;
pub use hyper::{fit_gp, fit_gp_ard, FitStrategy, HyperFitOptions};
pub use kernel::{Kernel, Matern52, Matern52Ard, SquaredExp};
pub use model::GpModel;
pub use prepared::{CachedKernel, PreparedData};
