//! GP posterior inference.

use std::time::Instant;

use robotune_linalg::{Cholesky, Matrix};

use crate::error::GpError;
use crate::kernel::Kernel;
use crate::prepared::{factor_with_jitter_tracked, CachedKernel, PreparedData};

/// Smallest batch worth spreading over scoped threads in
/// [`GpModel::predict_batch`]; below this the spawn overhead dominates.
const BATCH_PAR_MIN: usize = 64;

/// A fitted Gaussian-process regression model.
///
/// Targets are standardised internally (zero mean, unit variance) so the
/// kernel's signal-variance hyperparameter has a consistent meaning across
/// workloads whose runtimes differ by orders of magnitude. The model adds
/// `noise` to the kernel diagonal — the *white noise* term of the paper's
/// covariance — plus an escalating numerical jitter if the Cholesky
/// factorisation struggles.
#[derive(Debug, Clone)]
pub struct GpModel<K: Kernel> {
    x: Vec<Vec<f64>>,
    kernel: K,
    noise: f64,
    chol: Cholesky,
    /// Total diagonal jitter the factorisation needed (0 when none).
    jitter: f64,
    /// `K⁻¹ ỹ` over standardised targets.
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
    /// Standardised targets, kept for the marginal likelihood.
    y_norm: Vec<f64>,
}

impl<K: Kernel> GpModel<K> {
    /// Fits the GP to observations `(x, y)`.
    ///
    /// `noise` is the white-noise *variance* on standardised targets. If
    /// the kernel matrix is numerically singular the jitter escalates from
    /// `1e-10` by ×10 up to `1e-2` before giving up.
    ///
    /// Returns [`GpError::InvalidInput`] on empty or mismatched inputs,
    /// non-finite targets, or negative noise — degenerate sessions must
    /// never panic the tuning pipeline.
    pub fn fit(x: Vec<Vec<f64>>, y: &[f64], kernel: K, noise: f64) -> Result<Self, GpError> {
        let _span = robotune_obs::span("gp.fit");
        let t0 = robotune_obs::is_enabled().then(Instant::now);
        if x.len() != y.len() {
            return Err(GpError::InvalidInput("x/y length mismatch"));
        }
        if x.is_empty() {
            return Err(GpError::InvalidInput("cannot fit a GP on zero observations"));
        }
        if !y.iter().all(|v| v.is_finite()) {
            return Err(GpError::InvalidInput("non-finite target"));
        }
        if !noise.is_finite() || noise < 0.0 {
            return Err(GpError::InvalidInput("noise variance must be non-negative"));
        }

        let n = y.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = if var > 0.0 { var.sqrt() } else { 1.0 };
        let y_norm: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();

        // The Cholesky only reads the lower triangle, so only that half is
        // built — half the kernel evaluations of the old full build, same
        // factor bit for bit.
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                k[(i, j)] = kernel.eval(&x[i], &x[j]);
            }
            k[(i, i)] = kernel.diag(&x[i]) + noise;
        }

        let (chol, jitter) = factor_with_jitter_tracked(&mut k)?;
        let alpha = chol.solve(&y_norm);
        if let Some(t) = t0 {
            robotune_obs::record("gp.fit_ns", t.elapsed().as_nanos() as f64);
        }

        Ok(GpModel {
            x,
            kernel,
            noise,
            chol,
            jitter,
            alpha,
            y_mean,
            y_std,
            y_norm,
        })
    }

    /// Number of training observations.
    pub fn n_observations(&self) -> usize {
        self.x.len()
    }

    /// The kernel in use.
    pub fn kernel(&self) -> &K {
        &self.kernel
    }

    /// The white-noise variance (standardised-target units).
    pub fn noise(&self) -> f64 {
        self.noise
    }

    /// Total numerical jitter the Cholesky factorisation had to add to
    /// the kernel diagonal (`0.0` for a cleanly conditioned fit).
    pub fn jitter(&self) -> f64 {
        self.jitter
    }

    /// Cheap condition-number estimate of the kernel matrix: the squared
    /// ratio of the largest to smallest Cholesky diagonal entry. Exact
    /// for diagonal matrices, a useful order-of-magnitude indicator
    /// otherwise — large values flag near-singular kernels (lengthscale
    /// collapse, duplicated observations).
    pub fn cond_estimate(&self) -> f64 {
        let l = self.chol.l();
        let n = l.rows();
        let mut min = f64::INFINITY;
        let mut max = 0.0f64;
        for i in 0..n {
            let d = l[(i, i)].abs();
            min = min.min(d);
            max = max.max(d);
        }
        if min > 0.0 && min.is_finite() {
            (max / min) * (max / min)
        } else {
            f64::INFINITY
        }
    }

    /// Posterior mean and variance of the *latent* function at `q`, in the
    /// original target units. Variance is clamped at zero from below.
    pub fn predict(&self, q: &[f64]) -> (f64, f64) {
        let n = self.x.len();
        let mut kstar = Vec::with_capacity(n);
        for xi in &self.x {
            kstar.push(self.kernel.eval(q, xi));
        }
        let mu_norm: f64 = kstar.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        // var = k(q,q) − ‖L⁻¹ k*‖².
        let v = self.chol.solve_lower(&kstar);
        let var_norm = (self.kernel.diag(q) - v.iter().map(|x| x * x).sum::<f64>()).max(0.0);
        (
            mu_norm * self.y_std + self.y_mean,
            var_norm * self.y_std * self.y_std,
        )
    }

    /// Posterior standard deviation at `q` (original units).
    pub fn predict_std(&self, q: &[f64]) -> f64 {
        self.predict(q).1.sqrt()
    }

    /// Posterior mean and variance at every query point at once.
    ///
    /// Builds the `n × m` cross-covariance matrix and runs **one** blocked
    /// triangular solve ([`Cholesky::solve_lower_multi`]) instead of `m`
    /// separate forward substitutions, then accumulates all means and
    /// variances in a single row-major sweep. Results are bit-identical to
    /// calling [`GpModel::predict`] per point: each column's arithmetic
    /// happens in the same order as the pointwise path.
    ///
    /// Batches of [`BATCH_PAR_MIN`] or more queries are split into
    /// contiguous chunks scored on `std::thread::scope` threads when the
    /// host has more than one core; columns are independent, so the output
    /// (concatenated in input order) does not depend on scheduling.
    pub fn predict_batch(&self, qs: &[Vec<f64>]) -> Vec<(f64, f64)>
    where
        K: Sync,
    {
        if qs.is_empty() {
            return Vec::new();
        }
        let workers = std::thread::available_parallelism().map_or(1, usize::from);
        if workers > 1 && qs.len() >= BATCH_PAR_MIN {
            let chunk = qs.len().div_ceil(workers);
            let mut out = Vec::with_capacity(qs.len());
            std::thread::scope(|s| {
                let handles: Vec<_> = qs
                    .chunks(chunk)
                    .map(|c| s.spawn(move || self.predict_batch_chunk(c)))
                    .collect();
                for h in handles {
                    match h.join() {
                        Ok(part) => out.extend(part),
                        Err(payload) => std::panic::resume_unwind(payload),
                    }
                }
            });
            out
        } else {
            self.predict_batch_chunk(qs)
        }
    }

    fn predict_batch_chunk(&self, qs: &[Vec<f64>]) -> Vec<(f64, f64)> {
        let n = self.x.len();
        let m = qs.len();
        let kstar = Matrix::from_fn(n, m, |i, j| self.kernel.eval(&qs[j], &self.x[i]));
        let v = self.chol.solve_lower_multi(&kstar);
        // Accumulate μ and ‖L⁻¹k*‖² for all columns in one pass over the
        // rows; per column the additions run in training-index order,
        // matching the pointwise `predict` sums exactly.
        let mut mu = vec![0.0; m];
        let mut vsq = vec![0.0; m];
        for i in 0..n {
            let krow = kstar.row(i);
            let vrow = v.row(i);
            let ai = self.alpha[i];
            for j in 0..m {
                mu[j] += krow[j] * ai;
                vsq[j] += vrow[j] * vrow[j];
            }
        }
        qs.iter()
            .enumerate()
            .map(|(j, q)| {
                let var_norm = (self.kernel.diag(q) - vsq[j]).max(0.0);
                (
                    mu[j] * self.y_std + self.y_mean,
                    var_norm * self.y_std * self.y_std,
                )
            })
            .collect()
    }

    /// Log marginal likelihood of the standardised data under the model:
    /// `−½ ỹᵀα − ½ log|K| − n/2 · log 2π`.
    pub fn log_marginal_likelihood(&self) -> f64 {
        let n = self.y_norm.len() as f64;
        let fit: f64 = self.y_norm.iter().zip(&self.alpha).map(|(a, b)| a * b).sum();
        -0.5 * fit - 0.5 * self.chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
    }
}

impl<K: CachedKernel> GpModel<K> {
    /// Fits the GP from a [`PreparedData`] cache, skipping re-validation,
    /// re-standardisation and distance recomputation. Bit-identical to
    /// [`GpModel::fit`] on the same `(x, y, kernel, noise)`.
    pub fn fit_prepared(data: &PreparedData, kernel: K, noise: f64) -> Result<Self, GpError> {
        let _span = robotune_obs::span("gp.fit");
        let t0 = robotune_obs::is_enabled().then(Instant::now);
        if !noise.is_finite() || noise < 0.0 {
            return Err(GpError::InvalidInput("noise variance must be non-negative"));
        }
        robotune_obs::incr("gp.distcache_hit", 1);
        let mut k = data.kernel_matrix(&kernel, noise);
        let (chol, jitter) = factor_with_jitter_tracked(&mut k)?;
        let alpha = chol.solve(&data.y_norm);
        if let Some(t) = t0 {
            robotune_obs::record("gp.fit_ns", t.elapsed().as_nanos() as f64);
        }
        Ok(GpModel {
            x: data.x.clone(),
            kernel,
            noise,
            chol,
            jitter,
            alpha,
            y_mean: data.y_mean,
            y_std: data.y_std,
            y_norm: data.y_norm.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::Matern52;

    fn toy_model(noise: f64) -> GpModel<Matern52> {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64 / 7.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 6.0).sin() * 3.0 + 10.0).collect();
        GpModel::fit(x, &y, Matern52::new(0.3, 1.0), noise).unwrap()
    }

    #[test]
    fn interpolates_training_points_with_tiny_noise() {
        let m = toy_model(1e-8);
        for i in 0..8 {
            let x = i as f64 / 7.0;
            let truth = (x * 6.0).sin() * 3.0 + 10.0;
            let (mu, var) = m.predict(&[x]);
            assert!((mu - truth).abs() < 1e-3, "mu {mu} vs {truth}");
            assert!(var < 1e-4, "variance at a training point should vanish, got {var}");
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let m = toy_model(1e-6);
        let (_, var_near) = m.predict(&[0.5]);
        let (_, var_far) = m.predict(&[3.0]);
        assert!(var_far > var_near * 10.0, "near {var_near}, far {var_far}");
    }

    #[test]
    fn far_field_reverts_to_prior_mean() {
        let m = toy_model(1e-6);
        let (mu, var) = m.predict(&[100.0]);
        // Prior mean on standardised targets is 0 → original-unit y_mean.
        let y_mean: f64 = (0..8)
            .map(|i| ((i as f64 / 7.0) * 6.0).sin() * 3.0 + 10.0)
            .sum::<f64>()
            / 8.0;
        assert!((mu - y_mean).abs() < 1e-6);
        // And the variance approaches the prior variance (in y units).
        assert!(var > 0.5);
    }

    #[test]
    fn noise_smooths_interpolation() {
        let exact = toy_model(1e-8);
        let noisy = toy_model(0.5);
        // With substantial white noise, the posterior no longer pins the
        // training targets exactly.
        let (mu_e, _) = exact.predict(&[0.0]);
        let (mu_n, _) = noisy.predict(&[0.0]);
        let truth = 10.0;
        assert!((mu_e - truth).abs() < (mu_n - truth).abs());
    }

    #[test]
    fn lml_prefers_reasonable_hyperparameters() {
        let x: Vec<Vec<f64>> = (0..15).map(|i| vec![i as f64 / 14.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 8.0).sin()).collect();
        let good = GpModel::fit(x.clone(), &y, Matern52::new(0.2, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        let bad_short = GpModel::fit(x.clone(), &y, Matern52::new(1e-3, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        let bad_long = GpModel::fit(x, &y, Matern52::new(50.0, 1.0), 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        assert!(good > bad_short, "good {good} vs too-short {bad_short}");
        assert!(good > bad_long, "good {good} vs too-long {bad_long}");
    }

    #[test]
    fn constant_targets_do_not_blow_up() {
        let x: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let y = vec![4.2; 5];
        let m = GpModel::fit(x, &y, Matern52::new(1.0, 1.0), 1e-6).unwrap();
        let (mu, var) = m.predict(&[2.5]);
        assert!((mu - 4.2).abs() < 1e-6);
        assert!(var.is_finite());
    }

    #[test]
    fn duplicate_inputs_survive_via_jitter() {
        let x = vec![vec![0.5], vec![0.5], vec![0.5]];
        let y = vec![1.0, 1.1, 0.9];
        // Zero declared noise forces the jitter path.
        let m = GpModel::fit(x, &y, Matern52::new(0.5, 1.0), 0.0).unwrap();
        let (mu, _) = m.predict(&[0.5]);
        assert!((mu - 1.0).abs() < 0.05);
    }

    #[test]
    fn empty_fit_rejected_with_typed_error() {
        let r = GpModel::fit(Vec::new(), &[], Matern52::new(1.0, 1.0), 0.0);
        assert!(matches!(r, Err(GpError::InvalidInput(_))), "{r:?}");
    }

    #[test]
    fn nan_target_rejected_with_typed_error() {
        let x = vec![vec![0.1], vec![0.9]];
        let y = vec![1.0, f64::NAN];
        let r = GpModel::fit(x, &y, Matern52::new(1.0, 1.0), 1e-4);
        assert!(matches!(r, Err(GpError::InvalidInput(_))), "{r:?}");
    }

    #[test]
    fn predict_batch_is_bit_identical_to_pointwise_predict() {
        let m = toy_model(1e-4);
        // Cover both the serial path and (on multi-core hosts) the
        // chunk-parallel path by exceeding BATCH_PAR_MIN.
        let qs: Vec<Vec<f64>> = (0..200).map(|i| vec![i as f64 * 0.017 - 0.5]).collect();
        let batch = m.predict_batch(&qs);
        assert_eq!(batch.len(), qs.len());
        for (q, &(bmu, bvar)) in qs.iter().zip(&batch) {
            let (mu, var) = m.predict(q);
            assert_eq!(bmu, mu, "mean at {q:?}");
            assert_eq!(bvar, var, "variance at {q:?}");
        }
        assert!(m.predict_batch(&[]).is_empty());
    }

    #[test]
    fn fit_prepared_is_bit_identical_to_fit() {
        use crate::prepared::PreparedData;
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 / 9.0, (i * i) as f64 / 81.0]).collect();
        let y: Vec<f64> = x.iter().map(|p| p[0] * 2.0 - (p[1] * 4.0).cos()).collect();
        let data = PreparedData::prepare(x.clone(), &y).unwrap();
        let kernel = Matern52::new(0.4, 1.1);
        let fast = GpModel::fit_prepared(&data, kernel, 1e-3).unwrap();
        let slow = GpModel::fit(x, &y, kernel, 1e-3).unwrap();
        assert_eq!(
            fast.log_marginal_likelihood(),
            slow.log_marginal_likelihood()
        );
        for q in [[0.2, 0.3], [0.9, 0.1], [1.5, -0.4]] {
            assert_eq!(fast.predict(&q), slow.predict(&q));
        }
    }
}
