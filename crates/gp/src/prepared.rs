//! Training-set-fixed precomputation for the GP hot path.
//!
//! ML-II hyperparameter fitting evaluates hundreds of `(ℓ, σ², σ_n²)`
//! candidates against the *same* training set: the pairwise distances and
//! the standardised targets never change between candidates, only the
//! kernel hyperparameters do. The pre-optimisation code nevertheless
//! cloned the coordinates and rebuilt the distance matrix on every
//! Nelder–Mead likelihood evaluation. [`PreparedData`] computes those
//! invariants once; [`PreparedData::log_marginal`] then scores one
//! candidate with a lower-triangle kernel-matrix fill straight from the
//! cache plus one Cholesky factorisation — no coordinate clones, no
//! re-standardisation, no model construction.
//!
//! Every cached evaluation is **bit-identical** to the direct one: the
//! kernels' [`Kernel::eval`] implementations delegate to the same
//! distance-based entry points this module feeds from the cache, so a
//! fixed seed replays the exact same hyperparameter trajectory whether or
//! not the cache is used.

use robotune_linalg::{sq_dist, Cholesky, Matrix};

use crate::error::GpError;
use crate::kernel::{Kernel, Matern52, Matern52Ard, SquaredExp};

/// Kernels that can evaluate a training-pair covariance from
/// [`PreparedData`]'s cached pairwise statistics.
pub trait CachedKernel: Kernel {
    /// Covariance between training points `i` and `j` (callers only ask
    /// for the lower triangle, `j ≤ i`), bit-identical to
    /// `self.eval(&x[i], &x[j])`.
    fn eval_cached(&self, data: &PreparedData, i: usize, j: usize) -> f64;
}

impl CachedKernel for Matern52 {
    fn eval_cached(&self, data: &PreparedData, i: usize, j: usize) -> f64 {
        self.eval_sq_dist(data.d2[(i, j)])
    }
}

impl CachedKernel for SquaredExp {
    fn eval_cached(&self, data: &PreparedData, i: usize, j: usize) -> f64 {
        self.eval_sq_dist(data.d2[(i, j)])
    }
}

impl CachedKernel for Matern52Ard {
    fn eval_cached(&self, data: &PreparedData, i: usize, j: usize) -> f64 {
        if data.diffs.len() == self.length_scales.len() {
            let r2: f64 = data
                .diffs
                .iter()
                .zip(&self.length_scales)
                .map(|(m, &l)| {
                    let d = m[(i, j)] / l;
                    d * d
                })
                .sum();
            self.eval_scaled_sq_dist(r2)
        } else {
            // Prepared without per-dimension differences (see
            // [`PreparedData::prepare_ard`]): fall back to the direct
            // evaluation — still correct, just uncached.
            self.eval(&data.x[i], &data.x[j])
        }
    }
}

/// Precomputed quantities of a fixed training set, reused across all
/// hyperparameter candidates of one fit.
#[derive(Debug, Clone)]
pub struct PreparedData {
    pub(crate) x: Vec<Vec<f64>>,
    /// Pairwise squared Euclidean distances (lower triangle, `j < i`;
    /// the diagonal stays zero).
    d2: Matrix,
    /// Per-dimension signed differences `x_i[k] − x_j[k]` (lower
    /// triangle), present only for ARD fits.
    diffs: Vec<Matrix>,
    pub(crate) y_norm: Vec<f64>,
    pub(crate) y_mean: f64,
    pub(crate) y_std: f64,
}

impl PreparedData {
    /// Validates and preprocesses a training set for isotropic kernels:
    /// standardised targets plus the pairwise squared-distance cache.
    ///
    /// Returns the same typed [`GpError::InvalidInput`] cases as
    /// [`crate::model::GpModel::fit`].
    pub fn prepare(x: Vec<Vec<f64>>, y: &[f64]) -> Result<Self, GpError> {
        Self::new(x, y, false)
    }

    /// Like [`PreparedData::prepare`], additionally caching the
    /// per-dimension differences an ARD kernel needs.
    pub fn prepare_ard(x: Vec<Vec<f64>>, y: &[f64]) -> Result<Self, GpError> {
        Self::new(x, y, true)
    }

    fn new(x: Vec<Vec<f64>>, y: &[f64], with_diffs: bool) -> Result<Self, GpError> {
        if x.len() != y.len() {
            return Err(GpError::InvalidInput("x/y length mismatch"));
        }
        if x.is_empty() {
            return Err(GpError::InvalidInput("cannot fit a GP on zero observations"));
        }
        if !y.iter().all(|v| v.is_finite()) {
            return Err(GpError::InvalidInput("non-finite target"));
        }

        let n = y.len();
        let y_mean = y.iter().sum::<f64>() / n as f64;
        let var = y.iter().map(|&v| (v - y_mean) * (v - y_mean)).sum::<f64>() / n as f64;
        let y_std = if var > 0.0 { var.sqrt() } else { 1.0 };
        let y_norm: Vec<f64> = y.iter().map(|&v| (v - y_mean) / y_std).collect();

        let mut d2 = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                d2[(i, j)] = sq_dist(&x[i], &x[j]);
            }
        }
        let diffs = if with_diffs {
            let dim = x[0].len();
            (0..dim)
                .map(|k| {
                    let mut m = Matrix::zeros(n, n);
                    for i in 0..n {
                        for j in 0..i {
                            m[(i, j)] = x[i][k] - x[j][k];
                        }
                    }
                    m
                })
                .collect()
        } else {
            Vec::new()
        };

        Ok(PreparedData {
            x,
            d2,
            diffs,
            y_norm,
            y_mean,
            y_std,
        })
    }

    /// Number of training observations.
    pub fn n_observations(&self) -> usize {
        self.x.len()
    }

    /// The training inputs.
    pub fn x(&self) -> &[Vec<f64>] {
        &self.x
    }

    /// Builds the (lower-triangle plus diagonal) kernel matrix
    /// `K + σ_n² I` from the cache. The Cholesky factorisation only reads
    /// the lower triangle, so the upper triangle is left unfilled — half
    /// the kernel evaluations of a full build.
    pub(crate) fn kernel_matrix<K: CachedKernel>(&self, kernel: &K, noise: f64) -> Matrix {
        let n = self.x.len();
        let mut k = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..i {
                k[(i, j)] = kernel.eval_cached(self, i, j);
            }
            k[(i, i)] = kernel.diag(&self.x[i]) + noise;
        }
        k
    }

    /// Log marginal likelihood of `(kernel, noise)` on the prepared data,
    /// without constructing a model: one cached kernel-matrix fill, one
    /// Cholesky (with the standard jitter escalation), one solve.
    ///
    /// Bit-identical to
    /// `GpModel::fit(x, y, kernel, noise)?.log_marginal_likelihood()`.
    pub fn log_marginal<K: CachedKernel>(&self, kernel: &K, noise: f64) -> Result<f64, GpError> {
        if !noise.is_finite() || noise < 0.0 {
            return Err(GpError::InvalidInput("noise variance must be non-negative"));
        }
        robotune_obs::incr("gp.distcache_hit", 1);
        let mut k = self.kernel_matrix(kernel, noise);
        let chol = factor_with_jitter(&mut k)?;
        let alpha = chol.solve(&self.y_norm);
        let n = self.y_norm.len() as f64;
        let fit: f64 = self.y_norm.iter().zip(&alpha).map(|(a, b)| a * b).sum();
        Ok(-0.5 * fit - 0.5 * chol.log_det() - 0.5 * n * (2.0 * std::f64::consts::PI).ln())
    }
}

/// Factors `k` (lower triangle), escalating a diagonal jitter from
/// `1e-10` by ×10 up to `1e-2` when the matrix is numerically singular —
/// the shared retry loop of every GP fit path.
pub(crate) fn factor_with_jitter(k: &mut Matrix) -> Result<Cholesky, GpError> {
    factor_with_jitter_tracked(k).map(|(c, _)| c)
}

/// Like [`factor_with_jitter`], additionally reporting the total jitter
/// that had to be added to the diagonal before the factorisation
/// succeeded (`0.0` when it worked first try) — the raw material of the
/// `diag.gp.fit` conditioning diagnostics.
pub(crate) fn factor_with_jitter_tracked(k: &mut Matrix) -> Result<(Cholesky, f64), GpError> {
    let mut jitter = 1e-10;
    let mut added = 0.0;
    loop {
        match Cholesky::factor(k) {
            Ok(c) => return Ok((c, added)),
            Err(e) => {
                robotune_obs::incr("gp.chol_retry", 1);
                if jitter > 1e-2 {
                    return Err(GpError::Singular(e));
                }
                k.add_diagonal(jitter);
                added += jitter;
                jitter *= 10.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GpModel;

    fn toy() -> (Vec<Vec<f64>>, Vec<f64>) {
        let x: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![i as f64 / 11.0, (i as f64 * 0.37).fract()])
            .collect();
        let y: Vec<f64> = x.iter().map(|p| (p[0] * 5.0).sin() + p[1]).collect();
        (x, y)
    }

    #[test]
    fn cached_log_marginal_is_bit_identical_to_model_fit() {
        let (x, y) = toy();
        let data = PreparedData::prepare(x.clone(), &y).unwrap();
        for (l, v, n) in [(0.5, 1.0, 1e-3), (0.1, 2.0, 1e-6), (3.0, 0.2, 0.1)] {
            let kernel = Matern52::new(l, v);
            let cached = data.log_marginal(&kernel, n).unwrap();
            let direct = GpModel::fit(x.clone(), &y, kernel, n)
                .unwrap()
                .log_marginal_likelihood();
            assert_eq!(cached, direct, "ℓ={l} σ²={v} σ_n²={n}");
        }
    }

    #[test]
    fn cached_ard_log_marginal_is_bit_identical_to_model_fit() {
        let (x, y) = toy();
        let data = PreparedData::prepare_ard(x.clone(), &y).unwrap();
        let kernel = Matern52Ard::new(vec![0.3, 1.2], 1.5);
        let cached = data.log_marginal(&kernel, 1e-4).unwrap();
        let direct = GpModel::fit(x, &y, kernel, 1e-4)
            .unwrap()
            .log_marginal_likelihood();
        assert_eq!(cached, direct);
    }

    #[test]
    fn ard_kernel_without_diff_cache_falls_back_to_direct_eval() {
        let (x, y) = toy();
        // prepare() (no per-dimension diffs) must still give correct ARD
        // answers through the coordinate fallback.
        let plain = PreparedData::prepare(x.clone(), &y).unwrap();
        let ard = PreparedData::prepare_ard(x, &y).unwrap();
        let kernel = Matern52Ard::new(vec![0.4, 0.9], 1.0);
        assert_eq!(
            plain.log_marginal(&kernel, 1e-3).unwrap(),
            ard.log_marginal(&kernel, 1e-3).unwrap()
        );
    }

    #[test]
    fn prepare_rejects_degenerate_inputs_with_typed_errors() {
        assert!(matches!(
            PreparedData::prepare(Vec::new(), &[]),
            Err(GpError::InvalidInput(_))
        ));
        assert!(matches!(
            PreparedData::prepare(vec![vec![0.0]], &[f64::NAN]),
            Err(GpError::InvalidInput(_))
        ));
        assert!(matches!(
            PreparedData::prepare(vec![vec![0.0]], &[1.0, 2.0]),
            Err(GpError::InvalidInput(_))
        ));
        let data = PreparedData::prepare(vec![vec![0.0], vec![1.0]], &[0.0, 1.0]).unwrap();
        assert!(matches!(
            data.log_marginal(&Matern52::new(1.0, 1.0), -1.0),
            Err(GpError::InvalidInput(_))
        ));
    }
}
