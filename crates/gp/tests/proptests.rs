//! Property-based tests of GP regression.

use proptest::prelude::*;
use robotune_gp::{GpModel, Kernel, Matern52, Matern52Ard};

fn grid_x(n: usize) -> Vec<Vec<f64>> {
    (0..n).map(|i| vec![i as f64 / n.max(2) as f64]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kernel_matrices_are_positive_semidefinite(
        pts in proptest::collection::vec(
            proptest::collection::vec(0.0f64..1.0, 3), 2..15),
        ell in 0.05f64..3.0,
        var in 0.1f64..5.0,
    ) {
        // Check PSD via the quadratic form with random weights.
        let k = Matern52::new(ell, var);
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let w: Vec<f64> = (0..pts.len()).map(|_| rng.gen::<f64>() - 0.5).collect();
            let mut q = 0.0;
            for (i, wi) in w.iter().enumerate() {
                for (j, wj) in w.iter().enumerate() {
                    q += wi * wj * k.eval(&pts[i], &pts[j]);
                }
            }
            prop_assert!(q >= -1e-8, "negative quadratic form {q}");
        }
    }

    #[test]
    fn posterior_variance_never_exceeds_the_prior(
        ys in proptest::collection::vec(-50.0f64..50.0, 3..20),
        q in 0.0f64..1.0,
        ell in 0.05f64..2.0,
    ) {
        let x = grid_x(ys.len());
        let kernel = Matern52::new(ell, 1.0);
        let m = GpModel::fit(x, &ys, kernel, 1e-4).expect("conditioning handled");
        let (_, var) = m.predict(&[q]);
        // Prior variance in original units is σ²·y_std²; conditioning on
        // data can only shrink it (up to jitter slack).
        let y_mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let y_var = ys.iter().map(|&v| (v - y_mean).powi(2)).sum::<f64>() / ys.len() as f64;
        let prior = 1.0 * y_var.max(1.0);
        prop_assert!(var <= prior * 1.01 + 1e-6, "posterior {var} above prior {prior}");
    }

    #[test]
    fn adding_an_observation_shrinks_variance_there(
        ys in proptest::collection::vec(-10.0f64..10.0, 4..15),
        q in 0.05f64..0.95,
    ) {
        let x = grid_x(ys.len());
        let kernel = Matern52::new(0.3, 1.0);
        let before = GpModel::fit(x.clone(), &ys, kernel, 1e-4).expect("fit");
        let (mu_q, var_before) = before.predict(&[q]);

        let mut x2 = x;
        x2.push(vec![q]);
        let mut ys2 = ys.clone();
        ys2.push(mu_q);
        let after = GpModel::fit(x2, &ys2, kernel, 1e-4).expect("fit");
        let (_, var_after) = after.predict(&[q]);
        prop_assert!(var_after <= var_before + 1e-6);
    }

    #[test]
    fn lml_is_finite_for_any_reasonable_data(
        ys in proptest::collection::vec(-100.0f64..100.0, 2..25),
        ell in 0.05f64..3.0,
        noise in 1e-6f64..0.5,
    ) {
        let x = grid_x(ys.len());
        let m = GpModel::fit(x, &ys, Matern52::new(ell, 1.0), noise).expect("fit");
        prop_assert!(m.log_marginal_likelihood().is_finite());
    }

    #[test]
    fn ard_kernel_is_symmetric_and_bounded(
        a in proptest::collection::vec(0.0f64..1.0, 4),
        b in proptest::collection::vec(0.0f64..1.0, 4),
        scales in proptest::collection::vec(0.05f64..5.0, 4),
        var in 0.1f64..4.0,
    ) {
        let k = Matern52Ard::new(scales, var);
        let kab = k.eval(&a, &b);
        prop_assert!((kab - k.eval(&b, &a)).abs() < 1e-12);
        prop_assert!(kab > 0.0 && kab <= var + 1e-12);
        prop_assert!((k.eval(&a, &a) - var).abs() < 1e-12);
    }
}
