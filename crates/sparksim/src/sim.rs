//! The stage-level cost model.
//!
//! Deterministic: given a cluster, parameters, workload and dataset it
//! produces the same [`RunReport`] every time. Run-to-run noise is layered
//! on top by [`crate::job::SparkJob`], which is also where the per-run cap
//! is enforced.
//!
//! The model is intentionally *analytical* rather than event-driven: each
//! stage's duration is the maximum of its wave-based task time and its
//! aggregate IO floors (HDFS, shuffle disk, shuffle network), plus
//! scheduling overheads. That is exactly the fidelity needed to reproduce
//! the paper's response-surface *shape* — who wins and why — without
//! pretending to predict a real cluster's absolute seconds.

use crate::cluster::Cluster;
use crate::layout::ExecutorLayout;
use crate::params::SparkParams;
use crate::workload::{Dataset, Plan, Source, Stage, Workload};

/// Tunable constants of the cost model, collected for visibility.
pub mod consts {
    /// HDFS block size, MiB — decides input-stage partitioning.
    pub const HDFS_BLOCK_MB: f64 = 128.0;
    /// Application / driver startup cost, seconds.
    pub const APP_STARTUP_S: f64 = 8.0;
    /// Fixed per-stage scheduling cost, seconds.
    pub const STAGE_OVERHEAD_S: f64 = 1.0;
    /// Driver-side cost of launching one task, seconds.
    pub const TASK_LAUNCH_S: f64 = 0.08;
    /// Baseline straggler inflation of a wave (fraction of task time).
    pub const STRAGGLER_BASE: f64 = 0.12;
    /// Fraction of straggler inflation removed by speculation.
    pub const SPECULATION_RESCUE: f64 = 0.5;
    /// Extra work fraction caused by speculative duplicates.
    pub const SPECULATION_COST: f64 = 0.04;
    /// GC inflation strength (quadratic above the pressure knee).
    pub const GC_STRENGTH: f64 = 2.0;
    /// Heap-pressure knee above which GC time grows quadratically.
    pub const GC_KNEE: f64 = 0.55;
    /// Maximum GC inflation factor.
    pub const GC_CAP: f64 = 3.0;
    /// Spill slowdown per unit of working-set overflow.
    pub const SPILL_STRENGTH: f64 = 0.5;
    /// Maximum spill overflow ratio contributing to the penalty.
    pub const SPILL_CAP: f64 = 3.0;
    /// Working-set multiplier of shuffle-producing tasks (sort buffers).
    pub const SHUFFLE_WORKSET: f64 = 1.3;
    /// Working-set multiplier of non-shuffle tasks.
    pub const PLAIN_WORKSET: f64 = 0.4;
    /// Ideal memory per task slot, MiB — the centre of the cores-vs-
    /// memory valley in Figs. 8–9.
    pub const IDEAL_MB_PER_SLOT: f64 = 3072.0;
    /// Strength of the memory-balance penalty (per workload sensitivity).
    pub const BALANCE_MEM_STRENGTH: f64 = 0.10;
    /// Strength of the parallelism-mismatch penalty.
    pub const BALANCE_PAR_STRENGTH: f64 = 0.06;
    /// Partitions per slot considered ideal.
    pub const IDEAL_PARTITIONS_PER_SLOT: f64 = 2.5;
    /// Locality-wait penalty per wave, as a fraction of the wait.
    pub const LOCALITY_WAVE_FACTOR: f64 = 0.25;
    /// Block-manager traffic multiplier under cache-eviction churn.
    pub const CACHE_CHURN: f64 = 4.0;
    /// Time burned before an OOM is diagnosed, per retry, seconds.
    pub const OOM_RETRY_S: f64 = 25.0;
    /// Submit-failure turnaround, seconds.
    pub const LAUNCH_FAILURE_S: f64 = 12.0;
}

/// How a simulated run ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// Ran to completion in this many seconds.
    Completed(f64),
    /// Died of OutOfMemory (or an equivalent runtime error) after burning
    /// this many seconds on retries.
    Oom {
        /// Seconds consumed before the application gave up.
        after_s: f64,
    },
    /// The configuration could not even launch (executor doesn't fit,
    /// zero task slots).
    LaunchFailure,
}

/// What bounded a stage's duration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bottleneck {
    /// Wave-based task execution (CPU + serialization + per-task IO).
    Tasks,
    /// Aggregate HDFS read bandwidth.
    HdfsRead,
    /// Aggregate shuffle/output disk bandwidth.
    Disk,
    /// Aggregate shuffle network bandwidth.
    Network,
}

/// Per-stage accounting of a completed portion of the run.
#[derive(Debug, Clone, PartialEq)]
pub struct StageCost {
    /// Stage label.
    pub name: &'static str,
    /// Simulated seconds.
    pub seconds: f64,
    /// Whether tasks spilled to disk.
    pub spilled: bool,
    /// Which resource the stage was bound by.
    pub bottleneck: Bottleneck,
}

/// The full result of one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Terminal outcome.
    pub outcome: Outcome,
    /// Stage breakdown (up to the failure point, if any).
    pub stages: Vec<StageCost>,
    /// The resolved executor layout, when launch succeeded.
    pub layout: Option<ExecutorLayout>,
    /// Fraction of the cached RDD that fit in storage memory (1.0 when
    /// nothing needed caching).
    pub cache_fit: f64,
}

impl RunReport {
    /// Total simulated seconds regardless of outcome.
    pub fn elapsed_s(&self) -> f64 {
        match self.outcome {
            Outcome::Completed(t) => t,
            Outcome::Oom { after_s } => after_s,
            Outcome::LaunchFailure => consts::LAUNCH_FAILURE_S,
        }
    }
}

struct StageContext<'a> {
    cluster: &'a Cluster,
    p: &'a SparkParams,
    layout: &'a ExecutorLayout,
    plan: &'a Plan,
    cache_fit: f64,
    cache_resident_per_exec_mb: f64,
}

/// Simulates one run of a built-in workload.
pub fn simulate(
    cluster: &Cluster,
    p: &SparkParams,
    workload: Workload,
    dataset: Dataset,
) -> RunReport {
    simulate_plan(cluster, p, &workload.plan(dataset))
}

/// Simulates one run of an arbitrary [`Plan`] — the extension point for
/// workloads beyond the paper's five (construct a `Plan` directly and
/// pair it with [`crate::job::SparkJob::with_custom_plan`]).
pub fn simulate_plan(cluster: &Cluster, p: &SparkParams, plan: &Plan) -> RunReport {
    simulate_with(cluster, p, plan, |profile, layout| {
        assemble_analytic(profile, p, layout.total_slots)
    })
}

/// Core simulation loop, generic over how a stage profile is assembled
/// into a duration: the analytic wave model ([`simulate_plan`]) or the
/// discrete-event scheduler ([`crate::event::simulate_event`]).
pub(crate) fn simulate_with(
    cluster: &Cluster,
    p: &SparkParams,
    plan: &Plan,
    mut assemble: impl FnMut(&StageProfile, &ExecutorLayout) -> StageCost,
) -> RunReport {
    let plan = plan.clone();
    let _span = robotune_obs::span("sim.run");
    let Some(layout) = ExecutorLayout::solve(cluster, p) else {
        robotune_obs::incr("sim.launch_failure", 1);
        return RunReport {
            outcome: Outcome::LaunchFailure,
            stages: Vec::new(),
            layout: None,
            cache_fit: 1.0,
        };
    };

    // --- Cache sizing -----------------------------------------------------
    // Deserialized caches inflate by the serializer's object expansion;
    // `spark.rdd.compress` switches to a serialized+compressed level.
    let ser = p.serializer_props();
    let obj_factor = plan.object_factor;
    let cache_resident_need = if plan.cache_mb > 0.0 {
        if p.rdd_compress {
            plan.cache_mb * ser.size_ratio * 0.6
        } else {
            plan.cache_mb * ser.object_expansion * obj_factor.max(0.5)
        }
    } else {
        0.0
    };
    let cache_fit = if cache_resident_need > 0.0 {
        (layout.total_storage_mb() / cache_resident_need).min(1.0)
    } else {
        1.0
    };
    let cache_resident_per_exec =
        (cache_resident_need * cache_fit) / layout.executors as f64;

    let ctx = StageContext {
        cluster,
        p,
        layout: &layout,
        plan: &plan,
        cache_fit,
        cache_resident_per_exec_mb: cache_resident_per_exec,
    };

    let mut stages = Vec::new();
    let mut elapsed = consts::APP_STARTUP_S;

    let mut run_stage = |stage: &Stage,
                         stages: &mut Vec<StageCost>,
                         elapsed: &mut f64|
     -> Result<(), f64> {
        match stage_profile(&ctx, stage).map(|pr| assemble(&pr, ctx.layout)) {
            Ok(cost) => {
                robotune_obs::record("sim.stage_s", cost.seconds);
                if cost.spilled {
                    robotune_obs::incr("sim.spill", 1);
                }
                *elapsed += cost.seconds;
                stages.push(cost);
                Ok(())
            }
            Err(partial) => {
                // Tasks OOM, get retried `task.maxFailures` times, then
                // the application aborts.
                robotune_obs::incr("sim.oom", 1);
                let retries = ctx.p.task_max_failures.clamp(1, 8) as f64;
                Err(*elapsed + partial + retries * consts::OOM_RETRY_S)
            }
        }
    };

    if let Err(after_s) = run_stage(&plan.load, &mut stages, &mut elapsed) {
        return RunReport {
            outcome: Outcome::Oom { after_s },
            stages,
            layout: Some(layout),
            cache_fit,
        };
    }
    if let Some(iter) = &plan.iter {
        for _ in 0..plan.iterations {
            if let Err(after_s) = run_stage(iter, &mut stages, &mut elapsed) {
                return RunReport {
                    outcome: Outcome::Oom { after_s },
                    stages,
                    layout: Some(layout),
                    cache_fit,
                };
            }
        }
    }
    if let Some(finish) = &plan.finish {
        if let Err(after_s) = run_stage(finish, &mut stages, &mut elapsed) {
            return RunReport {
                outcome: Outcome::Oom { after_s },
                stages,
                layout: Some(layout),
                cache_fit,
            };
        }
    }

    RunReport {
        outcome: Outcome::Completed(elapsed),
        stages,
        layout: Some(layout),
        cache_fit,
    }
}

/// Computes one stage's cost profile, or `Err(partial_seconds)` on task
/// OOM.
fn stage_profile(ctx: &StageContext<'_>, stage: &Stage) -> Result<StageProfile, f64> {
    let (cluster, p, layout) = (ctx.cluster, ctx.p, ctx.layout);
    let ser = p.serializer_props();
    let codec = p.codec_props();
    let obj_factor = ctx.plan.object_factor;

    // --- Partitioning ------------------------------------------------------
    // HDFS stages split on the plan's block size — normally the 128 MiB
    // HDFS block; fractional-fidelity plans shrink it in step with the
    // subsample (a `sample(f)` keeps its parent's partitioning, so a
    // 1/16 run has the *same* task count with 1/16 the data per task).
    let block_mb = ctx.plan.hdfs_partition_mb;
    let partitions = match stage.source {
        Source::Hdfs => (stage.input_mb / block_mb).ceil().max(1.0),
        // Cached RDDs keep their lineage partitioning; shuffled stages are
        // partitioned by spark.default.parallelism. Graph iterations
        // re-partition through their joins, so they follow parallelism too.
        Source::Cache => {
            if ctx.plan.iter_partitions_by_parallelism {
                p.default_parallelism as f64
            } else {
                (ctx.plan.load.input_mb / block_mb).ceil().max(1.0)
            }
        }
        Source::Shuffle => p.default_parallelism as f64,
    };
    let dpt_mb = stage.input_mb / partitions;
    let total_slots = layout.total_slots as f64;
    let waves = (partitions / total_slots).ceil().max(1.0);

    // --- OOM check ----------------------------------------------------------
    // Deserialized task records live in user memory, with the execution
    // region absorbing part of the overflow (Spark borrows before it
    // dies); when one task's in-flight objects exceed both, the executor
    // is killed. With the paper's 8 GiB heap floor this only fires for
    // genuinely pathological settings — and for the 1 GiB factory default
    // (§5.2's PR/CC OOMs and TS-D2/D3 runtime errors).
    let user_per_slot = layout.user_mb / layout.slots_per_executor as f64;
    let available_mb = user_per_slot + 0.5 * layout.execution_per_task_mb();
    let live_objects_mb = dpt_mb * ser.object_expansion * obj_factor;
    if live_objects_mb > available_mb {
        // Partial work before the abort: roughly one wave's worth.
        return Err(consts::STAGE_OVERHEAD_S + 5.0);
    }

    // --- Spill --------------------------------------------------------------
    let workset_factor = if stage.shuffle_out_mb > 0.0 {
        consts::SHUFFLE_WORKSET
    } else {
        consts::PLAIN_WORKSET
    };
    let workset_mb = dpt_mb * workset_factor;
    let exec_per_task = layout.execution_per_task_mb().max(1.0);
    let overflow = (workset_mb / exec_per_task - 1.0).max(0.0);
    let spilled = overflow > 0.0;
    let spill_penalty = 1.0 + consts::SPILL_STRENGTH * overflow.min(consts::SPILL_CAP);

    // --- GC pressure ----------------------------------------------------------
    let live_per_exec = live_objects_mb * layout.slots_per_executor as f64 * 0.5
        + ctx.cache_resident_per_exec_mb;
    let pressure = (live_per_exec / layout.heap_mb.max(1.0)).min(1.5);
    let gc_factor = (1.0
        + consts::GC_STRENGTH * (pressure - consts::GC_KNEE).max(0.0).powi(2))
    .min(consts::GC_CAP);
    if gc_factor > 1.05 {
        robotune_obs::incr("sim.gc_pressure", 1);
    }

    // --- Balance penalty (the narrow-optimum shaper) --------------------------
    let mem_per_slot = layout.heap_mb / layout.slots_per_executor as f64;
    let mem_dev = (mem_per_slot / consts::IDEAL_MB_PER_SLOT).log2();
    let par_dev = if stage.source != Source::Hdfs {
        (partitions / (total_slots * consts::IDEAL_PARTITIONS_PER_SLOT)).log2()
    } else {
        0.0
    };
    let balance = 1.0
        + ctx.plan.balance_sensitivity
            * (consts::BALANCE_MEM_STRENGTH * mem_dev * mem_dev
                + consts::BALANCE_PAR_STRENGTH * par_dev * par_dev);

    // --- Per-task compute ------------------------------------------------------
    let mut task_s = dpt_mb * stage.cpu_per_mb * gc_factor * balance;

    // Serialization of shuffled bytes (out + in).
    let shuffle_out_pt = stage.shuffle_out_mb / partitions;
    let shuffle_in_pt = if stage.source == Source::Shuffle {
        dpt_mb
    } else {
        // Iterative stages both consume and produce their shuffle.
        shuffle_out_pt
    };
    task_s += (shuffle_out_pt + shuffle_in_pt) / ser.throughput_mbps;

    // Compression of shuffled bytes.
    let (wire_out_pt, wire_in_pt) = if p.shuffle_compress {
        task_s += (shuffle_out_pt + shuffle_in_pt) / codec.throughput_mbps;
        (shuffle_out_pt * codec.ratio, shuffle_in_pt * codec.ratio)
    } else {
        (shuffle_out_pt, shuffle_in_pt)
    };

    // --- Per-task IO ---------------------------------------------------------
    let concurrent_per_node = layout
        .slots_per_node
        .min((partitions / layout.nodes_used as f64).max(1.0));
    // Shuffle write to local disk, shared with node neighbours.
    let buffer_eff = 0.8 + 0.2 * (p.shuffle_file_buffer_kb as f64 / 1024.0).min(1.0).powf(0.3);
    let disk_per_task = (cluster.disk_mbps * buffer_eff / concurrent_per_node).max(0.5);
    task_s += (wire_out_pt * spill_penalty + stage.output_mb / partitions) / disk_per_task;

    // Shuffle fetch over the network, window-limited.
    if wire_in_pt > 0.0 && stage.source == Source::Shuffle
        || ctx.plan.iter_fetches_over_network && stage.source == Source::Cache
    {
        let window = (p.reducer_max_size_in_flight_mb as f64 / 48.0)
            .powf(0.25)
            .clamp(0.7, 1.08);
        let conn_boost = 1.0 + 0.02 * (p.conns_per_peer as f64 - 1.0).min(3.0);
        let net_per_task =
            (cluster.network_mbps * window * conn_boost / concurrent_per_node).max(0.5);
        task_s += wire_in_pt / net_per_task;
    }

    // Cache reads: memory-speed when resident; misses fall back to the OS
    // page cache or disk plus lineage recomputation.
    let mut stage_extra_s = 0.0;
    if stage.source == Source::Cache {
        let miss = 1.0 - ctx.cache_fit;
        if miss > 0.0 {
            // LRU cliff: with a partially fitting iterative RDD, the
            // partition needed next is exactly the one just evicted, so
            // effective misses saturate well above the naive shortfall.
            let miss_eff = if ctx.cache_fit < 0.95 { miss.max(0.7) } else { miss };
            let reread_mb = ctx.plan.load.input_mb * miss_eff;
            // Data read once recently usually sits in the OS page cache on
            // these RAM-heavy nodes; block-manager churn (evict →
            // recompute → re-cache → evict) multiplies the traffic.
            let total_mem = cluster.memory_per_node_mb * cluster.nodes as f64;
            let bw = if ctx.plan.load.input_mb < 0.5 * total_mem {
                cluster.page_cache_mbps
            } else {
                cluster.disk_mbps
            } * layout.nodes_used as f64;
            stage_extra_s += reread_mb * consts::CACHE_CHURN / bw;
            // Recomputation re-runs the lineage (re-parse is pricier than
            // the first parse thanks to allocator/GC churn).
            stage_extra_s += reread_mb * ctx.plan.recompute_cpu_per_mb * 1.5 * gc_factor
                / total_slots.max(1.0);
        }
    }

    // --- Profile + analytic wave assembly -----------------------------------
    let locality_s = if stage.source != Source::Shuffle {
        (p.locality_wait_ms as f64 / 1000.0) * consts::LOCALITY_WAVE_FACTOR * waves.min(8.0)
    } else {
        0.0
    };
    let hdfs_floor = if stage.source == Source::Hdfs {
        stage.input_mb / cluster.hdfs_read_mbps(layout.nodes_used)
    } else {
        0.0
    };
    let wire_total = if p.shuffle_compress {
        stage.shuffle_out_mb * codec.ratio
    } else {
        stage.shuffle_out_mb
    };
    let disk_floor = (wire_total + stage.output_mb)
        / (cluster.disk_mbps * layout.nodes_used as f64);
    let net_floor = wire_total / (cluster.network_mbps * layout.nodes_used as f64);

    Ok(StageProfile {
        name: stage.name,
        partitions: partitions as usize,
        task_s,
        stage_extra_s,
        locality_s,
        hdfs_floor,
        disk_floor,
        net_floor,
        spilled,
    })
}

/// The per-stage cost profile shared by the analytic wave assembly and the
/// discrete-event scheduler ([`crate::event`]).
#[derive(Debug, Clone)]
pub struct StageProfile {
    /// Stage label.
    pub name: &'static str,
    /// Task count.
    pub partitions: usize,
    /// Mean per-task seconds, before straggler/speculation effects.
    pub task_s: f64,
    /// Stage-level extra seconds (cache-miss churn and recomputation).
    pub stage_extra_s: f64,
    /// Stage-level delay-scheduling penalty, seconds.
    pub locality_s: f64,
    /// Aggregate HDFS read floor, seconds.
    pub hdfs_floor: f64,
    /// Aggregate shuffle/output disk floor, seconds.
    pub disk_floor: f64,
    /// Aggregate shuffle network floor, seconds.
    pub net_floor: f64,
    /// Whether tasks spill.
    pub spilled: bool,
}

impl StageProfile {
    /// Applies the IO floors and fixed overhead to an assembled task-level
    /// duration, classifying the bottleneck.
    pub fn finish(&self, task_level_s: f64) -> StageCost {
        let dominant = task_level_s
            .max(self.hdfs_floor)
            .max(self.disk_floor)
            .max(self.net_floor);
        let bottleneck = if dominant == task_level_s {
            Bottleneck::Tasks
        } else if dominant == self.hdfs_floor {
            Bottleneck::HdfsRead
        } else if dominant == self.disk_floor {
            Bottleneck::Disk
        } else {
            Bottleneck::Network
        };
        StageCost {
            name: self.name,
            seconds: consts::STAGE_OVERHEAD_S + dominant,
            spilled: self.spilled,
            bottleneck,
        }
    }
}

/// Analytic assembly: waves × (mean task time × straggler inflation),
/// with speculation modelled as a straggler rescue plus a work tax.
fn assemble_analytic(profile: &StageProfile, p: &SparkParams, total_slots: usize) -> StageCost {
    let mut task_s = profile.task_s;
    let mut straggler = 1.0 + consts::STRAGGLER_BASE;
    if p.speculation && p.speculation_quantile < 0.9 && p.speculation_multiplier < 3.0 {
        straggler = 1.0 + consts::STRAGGLER_BASE * (1.0 - consts::SPECULATION_RESCUE);
        task_s *= 1.0 + consts::SPECULATION_COST;
    }
    let waves = (profile.partitions as f64 / total_slots as f64).ceil().max(1.0);
    let launch_s = profile.partitions as f64 * consts::TASK_LAUNCH_S / total_slots as f64;
    let wave_time =
        waves * task_s * straggler + launch_s + profile.locality_s + profile.stage_extra_s;
    profile.finish(wave_time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ALL_DATASETS;
    use robotune_space::spark::{names, spark_space};
    use robotune_space::{ParamValue, SearchSpace};

    /// The 1 GiB Spark factory default (§5.2's baseline).
    fn default_params() -> SparkParams {
        SparkParams::factory_defaults(&spark_space())
    }

    /// A hand-tuned "good" configuration: 8-core 24 GiB executors × 20.
    fn tuned_params() -> SparkParams {
        let space = spark_space();
        let mut cfg = space.default_configuration();
        let set_int = |cfg: &mut robotune_space::Configuration, name: &str, v: i64| {
            cfg.set(space.index_of(name).unwrap(), ParamValue::Int(v));
        };
        set_int(&mut cfg, names::EXECUTOR_CORES, 8);
        set_int(&mut cfg, names::EXECUTOR_MEMORY, 24 * 1024);
        set_int(&mut cfg, names::EXECUTOR_INSTANCES, 20);
        set_int(&mut cfg, names::DEFAULT_PARALLELISM, 400);
        cfg.set(space.index_of(names::SERIALIZER).unwrap(), ParamValue::Cat(1));
        SparkParams::extract(&space, &cfg)
    }

    #[test]
    fn default_config_ooms_on_graph_workloads() {
        // §5.2: the 1 GiB default heap OOMs PR and CC.
        let c = Cluster::noleland();
        for w in [Workload::PageRank, Workload::ConnectedComponents] {
            for d in ALL_DATASETS {
                let r = simulate(&c, &default_params(), w, d);
                assert!(
                    matches!(r.outcome, Outcome::Oom { .. }),
                    "{w:?}/{d:?} should OOM at defaults, got {:?}",
                    r.outcome
                );
            }
        }
    }

    #[test]
    fn default_config_completes_km_and_lr_slowly() {
        let c = Cluster::noleland();
        for w in [Workload::KMeans, Workload::LogisticRegression] {
            let def = simulate(&c, &default_params(), w, Dataset::D1);
            let tuned = simulate(&c, &tuned_params(), w, Dataset::D1);
            let (Outcome::Completed(td), Outcome::Completed(tt)) = (def.outcome, tuned.outcome)
            else {
                panic!("{w:?} should complete under both configs: {def:?}");
            };
            assert!(
                td > 2.0 * tt,
                "{w:?}: default {td:.0}s should be much slower than tuned {tt:.0}s"
            );
        }
    }

    #[test]
    fn terasort_default_fails_only_on_larger_datasets() {
        // §5.2: TS speedup 4.16× on 20 GB; runtime errors on 30/40 GB.
        let c = Cluster::noleland();
        let d1 = simulate(&c, &default_params(), Workload::TeraSort, Dataset::D1);
        assert!(matches!(d1.outcome, Outcome::Completed(_)), "{:?}", d1.outcome);
        for d in [Dataset::D2, Dataset::D3] {
            let r = simulate(&c, &default_params(), Workload::TeraSort, d);
            assert!(
                matches!(r.outcome, Outcome::Oom { .. }),
                "TS/{d:?} should error at defaults, got {:?}",
                r.outcome
            );
        }
    }

    #[test]
    fn tuned_config_completes_everything_in_sane_time() {
        let c = Cluster::noleland();
        for w in crate::workload::ALL_WORKLOADS {
            let r = simulate(&c, &tuned_params(), w, Dataset::D1);
            let Outcome::Completed(t) = r.outcome else {
                panic!("{w:?} failed under a good config: {:?}", r.outcome);
            };
            assert!(
                (20.0..480.0).contains(&t),
                "{w:?} tuned time {t:.1}s out of the expected range"
            );
        }
    }

    #[test]
    fn bigger_datasets_take_longer() {
        let c = Cluster::noleland();
        let p = tuned_params();
        for w in crate::workload::ALL_WORKLOADS {
            let t1 = simulate(&c, &p, w, Dataset::D1).elapsed_s();
            let t3 = simulate(&c, &p, w, Dataset::D3).elapsed_s();
            assert!(t3 > t1, "{w:?}: D3 ({t3:.1}s) not slower than D1 ({t1:.1}s)");
        }
    }

    #[test]
    fn launch_failure_when_executor_cannot_fit() {
        let c = Cluster::noleland();
        let mut p = default_params();
        p.executor_memory_mb = 300.0 * 1024.0;
        let r = simulate(&c, &p, Workload::KMeans, Dataset::D1);
        assert_eq!(r.outcome, Outcome::LaunchFailure);
        assert_eq!(r.elapsed_s(), consts::LAUNCH_FAILURE_S);
    }

    #[test]
    fn kmeans_cache_eviction_is_catastrophic() {
        // §5.3: configurations that evict KMeans' cached RDD land in the
        // distribution's long tail.
        let c = Cluster::noleland();
        let mut fits = tuned_params();
        fits.storage_fraction = 0.6;
        let mut evicts = tuned_params();
        // Enough user memory to run, far too little storage to cache D3.
        evicts.executor_memory_mb = 6.0 * 1024.0;
        evicts.storage_fraction = 0.3;
        evicts.executor_instances = 20;
        let good = simulate(&c, &fits, Workload::KMeans, Dataset::D3);
        let bad = simulate(&c, &evicts, Workload::KMeans, Dataset::D3);
        let (Outcome::Completed(tg), Outcome::Completed(tb)) = (good.outcome, bad.outcome)
        else {
            panic!("both should complete: {good:?} / {bad:?}");
        };
        assert!(good.cache_fit > 0.95, "cache_fit = {}", good.cache_fit);
        assert!(bad.cache_fit < 0.5, "cache_fit = {}", bad.cache_fit);
        assert!(tb > 1.5 * tg, "eviction should hurt: {tb:.0}s vs {tg:.0}s");
    }

    #[test]
    fn kryo_beats_java_on_shuffle_heavy_workloads() {
        let c = Cluster::noleland();
        let kryo = tuned_params();
        let mut java = tuned_params();
        java.kryo = false;
        let tk = simulate(&c, &kryo, Workload::PageRank, Dataset::D2).elapsed_s();
        let tj = simulate(&c, &java, Workload::PageRank, Dataset::D2).elapsed_s();
        assert!(tk < tj, "kryo {tk:.1}s should beat java {tj:.1}s");
    }

    #[test]
    fn compression_helps_terasort() {
        let c = Cluster::noleland();
        let comp = tuned_params();
        let mut raw = tuned_params();
        raw.shuffle_compress = false;
        let tc = simulate(&c, &comp, Workload::TeraSort, Dataset::D2).elapsed_s();
        let tr = simulate(&c, &raw, Workload::TeraSort, Dataset::D2).elapsed_s();
        assert!(tc < tr, "compressed {tc:.1}s should beat raw {tr:.1}s");
    }

    #[test]
    fn bottleneck_diagnosis_matches_workload_character() {
        let c = Cluster::noleland();
        let p = tuned_params();
        // TeraSort's map stage writes its whole input to shuffle disk.
        let ts = simulate(&c, &p, Workload::TeraSort, Dataset::D2);
        let map = &ts.stages[0];
        assert!(
            matches!(map.bottleneck, Bottleneck::Disk | Bottleneck::HdfsRead),
            "TS map should be IO-bound, got {:?}",
            map.bottleneck
        );
        // KMeans iterations are compute over cached data.
        let km = simulate(&c, &p, Workload::KMeans, Dataset::D1);
        let iter = km.stages.iter().find(|s| s.name == "assign+update").unwrap();
        assert_eq!(iter.bottleneck, Bottleneck::Tasks, "KM iter should be task-bound");
    }

    #[test]
    fn simulation_is_deterministic() {
        let c = Cluster::noleland();
        let p = tuned_params();
        let a = simulate(&c, &p, Workload::PageRank, Dataset::D1);
        let b = simulate(&c, &p, Workload::PageRank, Dataset::D1);
        assert_eq!(a, b);
    }

    #[test]
    fn random_configs_never_panic_and_report_coherently() {
        use rand::Rng;
        let c = Cluster::noleland();
        let space = spark_space();
        let mut rng = robotune_stats::rng_from_seed(9);
        for _ in 0..300 {
            let pt: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
            let cfg = space.decode(&pt);
            let p = SparkParams::extract(&space, &cfg);
            for w in crate::workload::ALL_WORKLOADS {
                let r = simulate(&c, &p, w, Dataset::D1);
                assert!(r.elapsed_s() > 0.0);
                assert!(r.elapsed_s().is_finite());
                if let Outcome::Completed(t) = r.outcome {
                    assert!(t < 1e6, "absurd runtime {t}");
                }
            }
        }
    }
}
