//! Typed extraction of the 44 Spark parameters from a configuration.

use robotune_space::spark::names;
use robotune_space::{ConfigSpace, Configuration};

/// Compression codec properties used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecProps {
    /// Compressed-size ratio on shuffle data (smaller = better ratio).
    pub ratio: f64,
    /// Single-core (de)compression throughput, MiB/s.
    pub throughput_mbps: f64,
}

/// Serializer properties used by the cost model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SerializerProps {
    /// Single-core serialization throughput, MiB/s.
    pub throughput_mbps: f64,
    /// Serialized-size ratio relative to Java serialization.
    pub size_ratio: f64,
    /// In-heap object expansion of deserialized generic data.
    pub object_expansion: f64,
}

/// All 44 parameters of the paper's Spark space, decoded into native
/// types. Field order follows the space declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct SparkParams {
    // Resource sizing.
    /// Cores per executor.
    pub executor_cores: i64,
    /// Executor heap, MiB.
    pub executor_memory_mb: f64,
    /// Requested executor count.
    pub executor_instances: i64,
    /// Driver cores.
    pub driver_cores: i64,
    /// Driver heap, MiB.
    pub driver_memory_mb: f64,
    /// Off-heap overhead per executor, MiB.
    pub memory_overhead_mb: f64,
    /// Cores reserved per task.
    pub task_cpus: i64,
    // Parallelism and scheduling.
    /// Default shuffle partition count.
    pub default_parallelism: i64,
    /// Delay-scheduling wait, ms.
    pub locality_wait_ms: i64,
    /// FAIR scheduler enabled.
    pub fair_scheduler: bool,
    /// Scheduler revive interval, ms.
    pub revive_interval_ms: i64,
    /// Task retry limit.
    pub task_max_failures: i64,
    /// Speculative execution enabled.
    pub speculation: bool,
    /// Speculation multiplier.
    pub speculation_multiplier: f64,
    /// Speculation quantile.
    pub speculation_quantile: f64,
    // Memory management.
    /// `spark.memory.fraction`.
    pub memory_fraction: f64,
    /// `spark.memory.storageFraction`.
    pub storage_fraction: f64,
    /// Off-heap memory enabled.
    pub offheap_enabled: bool,
    /// Off-heap size, MiB.
    pub offheap_size_mb: f64,
    /// Memory-map threshold, MiB.
    pub memory_map_threshold_mb: i64,
    // Shuffle.
    /// Compress map outputs.
    pub shuffle_compress: bool,
    /// Compress spill files.
    pub spill_compress: bool,
    /// Shuffle file buffer, KiB.
    pub shuffle_file_buffer_kb: i64,
    /// Sort-bypass merge threshold.
    pub bypass_merge_threshold: i64,
    /// Shuffle fetch retries.
    pub shuffle_io_max_retries: i64,
    /// Prefer direct buffers.
    pub prefer_direct_bufs: bool,
    /// Connections per peer.
    pub conns_per_peer: i64,
    /// Reducer fetch window, MiB.
    pub reducer_max_size_in_flight_mb: i64,
    /// Maximum in-flight fetch requests.
    pub reducer_max_reqs_in_flight: i64,
    // Compression / serialization.
    /// Codec choice index (lz4/lzf/snappy/zstd).
    pub codec: usize,
    /// LZ4 block size, KiB.
    pub lz4_block_kb: i64,
    /// Compress cached RDD partitions (serialized levels).
    pub rdd_compress: bool,
    /// Compress broadcasts.
    pub broadcast_compress: bool,
    /// Broadcast block size, MiB.
    pub broadcast_block_mb: i64,
    /// Kryo serializer selected.
    pub kryo: bool,
    /// Kryo buffer, KiB.
    pub kryo_buffer_kb: i64,
    /// Kryo buffer max, MiB.
    pub kryo_buffer_max_mb: i64,
    /// Kryo reference tracking.
    pub kryo_reference_tracking: bool,
    // Networking / RPC.
    /// Network timeout, s.
    pub network_timeout_s: i64,
    /// Heartbeat interval, s.
    pub heartbeat_interval_s: i64,
    /// RPC message max, MiB.
    pub rpc_message_max_mb: i64,
    /// Driver max result size, MiB.
    pub driver_max_result_mb: i64,
    // Dynamic allocation.
    /// Dynamic allocation enabled.
    pub dynamic_allocation: bool,
    /// External shuffle service enabled.
    pub shuffle_service: bool,
}

impl SparkParams {
    /// Decodes a full configuration of the [`robotune_space::spark`]
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `config` does not belong to a space containing all 44
    /// Spark parameter names.
    pub fn extract(space: &ConfigSpace, config: &Configuration) -> Self {
        let int = |name: &str| -> i64 {
            config
                .get_by_name(space, name)
                .unwrap_or_else(|| panic!("missing parameter {name}"))
                .as_int()
        };
        let flt = |name: &str| -> f64 {
            config
                .get_by_name(space, name)
                .unwrap_or_else(|| panic!("missing parameter {name}"))
                .as_float()
        };
        let flag = |name: &str| -> bool {
            config
                .get_by_name(space, name)
                .unwrap_or_else(|| panic!("missing parameter {name}"))
                .as_bool()
        };
        let cat = |name: &str| -> usize {
            config
                .get_by_name(space, name)
                .unwrap_or_else(|| panic!("missing parameter {name}"))
                .as_cat()
        };

        SparkParams {
            executor_cores: int(names::EXECUTOR_CORES),
            executor_memory_mb: int(names::EXECUTOR_MEMORY) as f64,
            executor_instances: int(names::EXECUTOR_INSTANCES),
            driver_cores: int("spark.driver.cores"),
            driver_memory_mb: int("spark.driver.memory") as f64,
            memory_overhead_mb: int(names::EXECUTOR_MEMORY_OVERHEAD) as f64,
            task_cpus: int("spark.task.cpus"),
            default_parallelism: int(names::DEFAULT_PARALLELISM),
            locality_wait_ms: int(names::LOCALITY_WAIT),
            fair_scheduler: cat("spark.scheduler.mode") == 1,
            revive_interval_ms: int("spark.scheduler.revive.interval"),
            task_max_failures: int("spark.task.maxFailures"),
            speculation: flag(names::SPECULATION),
            speculation_multiplier: flt("spark.speculation.multiplier"),
            speculation_quantile: flt("spark.speculation.quantile"),
            memory_fraction: flt(names::MEMORY_FRACTION),
            storage_fraction: flt(names::MEMORY_STORAGE_FRACTION),
            offheap_enabled: flag("spark.memory.offHeap.enabled"),
            offheap_size_mb: int("spark.memory.offHeap.size") as f64,
            memory_map_threshold_mb: int("spark.storage.memoryMapThreshold"),
            shuffle_compress: flag(names::SHUFFLE_COMPRESS),
            spill_compress: flag("spark.shuffle.spill.compress"),
            shuffle_file_buffer_kb: int(names::SHUFFLE_FILE_BUFFER),
            bypass_merge_threshold: int("spark.shuffle.sort.bypassMergeThreshold"),
            shuffle_io_max_retries: int("spark.shuffle.io.maxRetries"),
            prefer_direct_bufs: flag("spark.shuffle.io.preferDirectBufs"),
            conns_per_peer: int("spark.shuffle.io.numConnectionsPerPeer"),
            reducer_max_size_in_flight_mb: int(names::REDUCER_MAX_SIZE_IN_FLIGHT),
            reducer_max_reqs_in_flight: int("spark.reducer.maxReqsInFlight"),
            codec: cat(names::IO_COMPRESSION_CODEC),
            lz4_block_kb: int("spark.io.compression.lz4.blockSize"),
            rdd_compress: flag(names::RDD_COMPRESS),
            broadcast_compress: flag("spark.broadcast.compress"),
            broadcast_block_mb: int("spark.broadcast.blockSize"),
            kryo: cat(names::SERIALIZER) == 1,
            kryo_buffer_kb: int("spark.kryoserializer.buffer"),
            kryo_buffer_max_mb: int("spark.kryoserializer.buffer.max"),
            kryo_reference_tracking: flag("spark.kryo.referenceTracking"),
            network_timeout_s: int("spark.network.timeout"),
            heartbeat_interval_s: int("spark.executor.heartbeatInterval"),
            rpc_message_max_mb: int("spark.rpc.message.maxSize"),
            driver_max_result_mb: int("spark.driver.maxResultSize"),
            dynamic_allocation: flag("spark.dynamicAllocation.enabled"),
            shuffle_service: flag("spark.shuffle.service.enabled"),
        }
    }

    /// The Spark *factory* defaults — what an untuned installation runs
    /// with. This differs from `space.default_configuration()` in one
    /// deliberate way: the executor heap is the real 1 GiB default, which
    /// sits *below* the paper's 8–180 GiB search range. §5.2's
    /// default-configuration comparison (PR/CC OOM, TS-D2/D3 runtime
    /// errors, 27×/2.17× KM/LR speedups) is measured against this.
    pub fn factory_defaults(space: &ConfigSpace) -> Self {
        let mut p = Self::extract(space, &space.default_configuration());
        p.executor_memory_mb = 1024.0;
        p
    }

    /// Cost-model properties of the selected compression codec.
    ///
    /// Ratios/throughputs follow the usual ordering: LZ4 fast with a
    /// moderate ratio, LZF slower, Snappy close to LZ4, Zstd best ratio
    /// but CPU-hungry. LZ4's throughput improves mildly with block size.
    pub fn codec_props(&self) -> CodecProps {
        match self.codec {
            0 => {
                // lz4: bigger blocks help throughput a little.
                let block_boost = 1.0 + 0.1 * ((self.lz4_block_kb as f64 / 32.0).ln().max(0.0) / 3.0);
                CodecProps {
                    ratio: 0.45,
                    throughput_mbps: 420.0 * block_boost,
                }
            }
            1 => CodecProps { ratio: 0.48, throughput_mbps: 240.0 }, // lzf
            2 => CodecProps { ratio: 0.46, throughput_mbps: 380.0 }, // snappy
            _ => CodecProps { ratio: 0.33, throughput_mbps: 150.0 }, // zstd
        }
    }

    /// Cost-model properties of the selected serializer.
    pub fn serializer_props(&self) -> SerializerProps {
        if self.kryo {
            // Reference tracking costs a little throughput; tiny initial
            // buffers add negligible resize overhead (deliberately
            // near-zero impact — these are the paper's "unimportant"
            // dependent parameters).
            let ref_penalty = if self.kryo_reference_tracking { 0.96 } else { 1.0 };
            let buffer_penalty = if self.kryo_buffer_kb < 32 { 0.99 } else { 1.0 };
            SerializerProps {
                throughput_mbps: 260.0 * ref_penalty * buffer_penalty,
                size_ratio: 0.55,
                object_expansion: 2.0,
            }
        } else {
            SerializerProps {
                throughput_mbps: 110.0,
                size_ratio: 1.0,
                object_expansion: 2.8,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;

    #[test]
    fn extract_defaults() {
        let space = spark_space();
        let p = SparkParams::extract(&space, &space.default_configuration());
        assert_eq!(p.executor_cores, 1);
        assert_eq!(p.executor_memory_mb, 8192.0); // space floor; factory default is 1 GiB
        assert_eq!(p.executor_instances, 2);
        assert!((p.memory_fraction - 0.6).abs() < 1e-12);
        assert!(!p.kryo);
        assert!(p.shuffle_compress);
        assert!(!p.speculation);
        assert_eq!(p.codec, 0); // lz4
    }

    #[test]
    fn factory_defaults_use_the_real_one_gib_heap() {
        let space = spark_space();
        let p = SparkParams::factory_defaults(&space);
        assert_eq!(p.executor_memory_mb, 1024.0);
        assert_eq!(p.executor_cores, 1);
        assert_eq!(p.executor_instances, 2);
    }

    #[test]
    fn zstd_trades_cpu_for_ratio() {
        let space = spark_space();
        let mut cfg = space.default_configuration();
        let codec_idx = space.index_of(robotune_space::spark::names::IO_COMPRESSION_CODEC).unwrap();
        cfg.set(codec_idx, robotune_space::ParamValue::Cat(3));
        let p = SparkParams::extract(&space, &cfg);
        let zstd = p.codec_props();
        let lz4 = SparkParams::extract(&space, &space.default_configuration()).codec_props();
        assert!(zstd.ratio < lz4.ratio, "zstd compresses harder");
        assert!(zstd.throughput_mbps < lz4.throughput_mbps, "zstd is slower");
    }

    #[test]
    fn kryo_is_faster_and_smaller_than_java() {
        let space = spark_space();
        let mut cfg = space.default_configuration();
        let ser_idx = space.index_of(robotune_space::spark::names::SERIALIZER).unwrap();
        cfg.set(ser_idx, robotune_space::ParamValue::Cat(1));
        let kryo = SparkParams::extract(&space, &cfg).serializer_props();
        let java = SparkParams::extract(&space, &space.default_configuration()).serializer_props();
        assert!(kryo.throughput_mbps > java.throughput_mbps);
        assert!(kryo.size_ratio < java.size_ratio);
        assert!(kryo.object_expansion < java.object_expansion);
    }

    #[test]
    fn extraction_round_trips_random_configs() {
        use rand::Rng;
        use robotune_space::SearchSpace;
        let space = spark_space();
        let mut rng = robotune_stats::rng_from_seed(1);
        for _ in 0..50 {
            let pt: Vec<f64> = (0..space.dim()).map(|_| rng.gen::<f64>()).collect();
            let cfg = space.decode(&pt);
            let p = SparkParams::extract(&space, &cfg);
            assert!((1..=32).contains(&p.executor_cores));
            assert!(p.executor_memory_mb >= 8192.0);
            assert!((0.3..=0.9).contains(&p.memory_fraction));
        }
    }
}
