//! The five SparkBench workloads and their Table-1 datasets.

use robotune_tuners::Fidelity;

/// A tunable workload (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// GraphX PageRank over a generated web graph.
    PageRank,
    /// MLlib KMeans clustering; caches the full point RDD.
    KMeans,
    /// GraphX ConnectedComponents.
    ConnectedComponents,
    /// MLlib LogisticRegression; caches the training RDD.
    LogisticRegression,
    /// TeraSort micro-benchmark: one full shuffle of the input.
    TeraSort,
}

/// All five workloads in the paper's Table-1 order.
pub const ALL_WORKLOADS: [Workload; 5] = [
    Workload::PageRank,
    Workload::KMeans,
    Workload::ConnectedComponents,
    Workload::LogisticRegression,
    Workload::TeraSort,
];

/// One of the three input datasets per workload (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Smallest input.
    D1,
    /// Middle input.
    D2,
    /// Largest input.
    D3,
}

/// All datasets in Table-1 order.
pub const ALL_DATASETS: [Dataset; 3] = [Dataset::D1, Dataset::D2, Dataset::D3];

impl Dataset {
    /// Scale of this dataset relative to D1, per Table 1
    /// (PR/CC: 5 / 7.5 / 10 M pages; KM: 200/300/400 M points;
    /// LR: 100/200/300 M examples; TS: 20/30/40 GB).
    pub fn scale(self, workload: Workload) -> f64 {
        match (workload, self) {
            (_, Dataset::D1) => 1.0,
            (Workload::LogisticRegression, Dataset::D2) => 2.0,
            (Workload::LogisticRegression, Dataset::D3) => 3.0,
            (_, Dataset::D2) => 1.5,
            (_, Dataset::D3) => 2.0,
        }
    }

    /// Scale of a *fractional subsample* of this dataset relative to D1:
    /// [`Dataset::scale`] times the fidelity fraction. The fraction was
    /// validated at [`Fidelity::new`] — finite, in `(0, 1]` — so the
    /// result is always a positive multiplier with no clamping and no
    /// panic path; a 1/16 subsample of D1 really is `1/16` of D1, below
    /// every Table-1 point.
    pub fn scale_at(self, workload: Workload, fidelity: Fidelity) -> f64 {
        self.scale(workload) * fidelity.fraction()
    }

    /// Index (0 for D1, 1 for D2, 2 for D3) — handy for seeding and
    /// report labelling.
    pub fn index(self) -> usize {
        match self {
            Dataset::D1 => 0,
            Dataset::D2 => 1,
            Dataset::D3 => 2,
        }
    }
}

/// Where a stage's input bytes come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// HDFS read (disk/network bound, 128 MiB blocks decide partitioning).
    Hdfs,
    /// A cached RDD (memory speed when it fits; re-read/recompute when
    /// evicted).
    Cache,
    /// The previous stage's shuffle output.
    Shuffle,
}

/// One stage of a workload's plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage label for reports.
    pub name: &'static str,
    /// Bytes processed per occurrence, MiB (raw, pre-compression).
    pub input_mb: f64,
    /// Input source.
    pub source: Source,
    /// Bytes written to shuffle, MiB (raw).
    pub shuffle_out_mb: f64,
    /// Single-core compute seconds per MiB of input.
    pub cpu_per_mb: f64,
    /// Bytes written back to HDFS, MiB.
    pub output_mb: f64,
}

/// The full execution plan of one workload on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The initial load/materialise stage.
    pub load: Stage,
    /// The repeated iteration stage, if the workload is iterative.
    pub iter: Option<Stage>,
    /// Number of repetitions of `iter`.
    pub iterations: usize,
    /// A final stage (e.g. TeraSort's reduce+write), if any.
    pub finish: Option<Stage>,
    /// Raw size of the RDD this workload caches, MiB (0 = no caching).
    pub cache_mb: f64,
    /// How sensitive the workload is to executor-shape imbalance; larger
    /// values carve a narrower high-performance region (PR/CC/LR vs the
    /// plateaus of KM/TS — §5.2).
    pub balance_sensitivity: f64,
    /// Single-core CPU seconds per MiB to *recompute* an evicted cache
    /// partition (on top of re-reading its lineage input).
    pub recompute_cpu_per_mb: f64,
    /// In-heap object expansion multiplier of this workload's records on
    /// top of the serializer's own expansion (graph structures blow up
    /// badly; primitive arrays barely; streamed records hardly at all).
    pub object_factor: f64,
    /// Whether iteration stages re-partition through shuffles and thus
    /// follow `spark.default.parallelism` (GraphX joins) instead of the
    /// cached RDD's lineage partitioning (MLlib scans).
    pub iter_partitions_by_parallelism: bool,
    /// Whether iteration stages fetch shuffle blocks over the network in
    /// addition to reading the cache (graph message exchange).
    pub iter_fetches_over_network: bool,
    /// Split size of HDFS-sourced stages, MiB per partition. The 128 MiB
    /// HDFS block for full-fidelity plans; fractional-fidelity plans
    /// shrink it with the subsample, because `sample(f)` keeps its
    /// parent's partition count and thins each partition's data instead.
    pub hdfs_partition_mb: f64,
}

impl Stage {
    fn scaled(&self, fraction: f64) -> Stage {
        Stage {
            name: self.name,
            input_mb: self.input_mb * fraction,
            source: self.source,
            shuffle_out_mb: self.shuffle_out_mb * fraction,
            cpu_per_mb: self.cpu_per_mb,
            output_mb: self.output_mb * fraction,
        }
    }
}

impl Plan {
    /// This plan on a `fidelity` fraction of its input: every data volume
    /// (stage inputs, shuffle and HDFS outputs, the cached RDD) scales by
    /// the fraction; per-MiB CPU rates, iteration counts and the shape
    /// parameters stay put. This is how *custom* plans (the ones not built
    /// from a [`Workload`]) join the fidelity axis.
    pub fn at_fidelity(&self, fidelity: Fidelity) -> Plan {
        let f = fidelity.fraction();
        Plan {
            load: self.load.scaled(f),
            iter: self.iter.as_ref().map(|s| s.scaled(f)),
            iterations: self.iterations,
            finish: self.finish.as_ref().map(|s| s.scaled(f)),
            cache_mb: self.cache_mb * f,
            balance_sensitivity: self.balance_sensitivity,
            recompute_cpu_per_mb: self.recompute_cpu_per_mb,
            object_factor: self.object_factor,
            iter_partitions_by_parallelism: self.iter_partitions_by_parallelism,
            iter_fetches_over_network: self.iter_fetches_over_network,
            hdfs_partition_mb: self.hdfs_partition_mb * f,
        }
    }
}

impl Workload {
    /// Short display name used throughout the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Workload::PageRank => "PR",
            Workload::KMeans => "KM",
            Workload::ConnectedComponents => "CC",
            Workload::LogisticRegression => "LR",
            Workload::TeraSort => "TS",
        }
    }

    /// Builds the stage plan for the full `dataset`.
    pub fn plan(self, dataset: Dataset) -> Plan {
        self.plan_at(dataset, Fidelity::FULL)
    }

    /// Builds the stage plan for a `fidelity` fraction of `dataset`. Data
    /// volumes (inputs, shuffles, cache) scale linearly with the fraction;
    /// iteration counts do not — a subsampled KMeans still makes ten
    /// passes, just over 1/16 of the points — so simulated cost is roughly
    /// proportional to fidelity on top of the fixed per-run overheads.
    pub fn plan_at(self, dataset: Dataset, fidelity: Fidelity) -> Plan {
        let s = dataset.scale_at(self, fidelity);
        // A subsample keeps its parent's partition count: the effective
        // split shrinks with the fraction so task counts stay put while
        // per-task data thins.
        let split_mb = crate::sim::consts::HDFS_BLOCK_MB * fidelity.fraction();
        match self {
            Workload::PageRank => {
                // 5 M pages ≈ 6 GiB of edges+vertices on HDFS; the links
                // RDD (cached) carries the adjacency structure.
                let input = 6_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+partition",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input * 0.8,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "rank-iteration",
                        input_mb: input * 1.2,
                        source: Source::Cache,
                        shuffle_out_mb: input * 0.55,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    }),
                    iterations: 10,
                    finish: None,
                    cache_mb: input * 1.3,
                    balance_sensitivity: 1.0,
                    recompute_cpu_per_mb: 0.012,
                    object_factor: 1.5,
                    iter_partitions_by_parallelism: true,
                    iter_fetches_over_network: true,
                    hdfs_partition_mb: split_mb,
                }
            }
            Workload::ConnectedComponents => {
                let input = 6_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+partition",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input * 0.8,
                        cpu_per_mb: 0.010,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "label-propagation",
                        input_mb: input * 1.1,
                        source: Source::Cache,
                        shuffle_out_mb: input * 0.45,
                        cpu_per_mb: 0.010,
                        output_mb: 0.0,
                    }),
                    iterations: 8,
                    finish: None,
                    cache_mb: input * 1.3,
                    balance_sensitivity: 0.9,
                    recompute_cpu_per_mb: 0.010,
                    object_factor: 1.5,
                    iter_partitions_by_parallelism: true,
                    iter_fetches_over_network: true,
                    hdfs_partition_mb: split_mb,
                }
            }
            Workload::KMeans => {
                // 200 M points ≈ 24 GiB of text; all points cached. The
                // load is parse-heavy (≈ 80 MiB/s/core), which is what
                // makes cache eviction — recompute-from-text every
                // iteration — so punishing (§5.2's 27× default slowdown).
                let input = 24_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+cache",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: 4.0,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "assign+update",
                        input_mb: input,
                        source: Source::Cache,
                        shuffle_out_mb: 4.0,
                        cpu_per_mb: 0.006,
                        output_mb: 0.0,
                    }),
                    iterations: 10,
                    finish: None,
                    cache_mb: input,
                    balance_sensitivity: 0.15,
                    recompute_cpu_per_mb: 0.012,
                    object_factor: 0.55,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                    hdfs_partition_mb: split_mb,
                }
            }
            Workload::LogisticRegression => {
                // 100 M examples ≈ 8 GiB of dense feature rows; gradient
                // aggregation per pass. Cheap to recompute relative to
                // KMeans, which keeps the default-configuration penalty
                // moderate (§5.2: LR 2.17× vs KM 27×).
                let input = 8_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+cache",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: 2.0,
                        cpu_per_mb: 0.005,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "gradient-pass",
                        input_mb: input,
                        source: Source::Cache,
                        shuffle_out_mb: 2.0,
                        cpu_per_mb: 0.005,
                        output_mb: 0.0,
                    }),
                    iterations: 8,
                    finish: None,
                    cache_mb: input,
                    balance_sensitivity: 0.55,
                    recompute_cpu_per_mb: 0.002,
                    object_factor: 0.55,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                    hdfs_partition_mb: split_mb,
                }
            }
            Workload::TeraSort => {
                // 20/30/40 GiB: map reads + shuffles everything, reduce
                // sorts and writes back.
                let input = 20_480.0 * s;
                Plan {
                    load: Stage {
                        name: "map",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input,
                        cpu_per_mb: 0.0015,
                        output_mb: 0.0,
                    },
                    iter: None,
                    iterations: 0,
                    finish: Some(Stage {
                        name: "sort+write",
                        input_mb: input,
                        source: Source::Shuffle,
                        shuffle_out_mb: 0.0,
                        cpu_per_mb: 0.003,
                        output_mb: input,
                    }),
                    cache_mb: 0.0,
                    balance_sensitivity: 0.15,
                    recompute_cpu_per_mb: 0.0,
                    object_factor: 0.75,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                    hdfs_partition_mb: split_mb,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_plans_are_internally_consistent() {
        for w in ALL_WORKLOADS {
            for d in ALL_DATASETS {
                let p = w.plan(d);
                assert!(p.load.input_mb > 0.0);
                assert_eq!(p.load.source, Source::Hdfs);
                assert_eq!(p.iter.is_some(), p.iterations > 0, "{w:?}");
                if let Some(it) = &p.iter {
                    assert!(it.input_mb > 0.0);
                }
                assert!(p.balance_sensitivity >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_scaling_follows_table_1() {
        assert_eq!(Dataset::D2.scale(Workload::PageRank), 1.5); // 7.5/5
        assert_eq!(Dataset::D3.scale(Workload::PageRank), 2.0); // 10/5
        assert_eq!(Dataset::D2.scale(Workload::LogisticRegression), 2.0); // 200/100
        assert_eq!(Dataset::D3.scale(Workload::LogisticRegression), 3.0); // 300/100
        assert_eq!(Dataset::D3.scale(Workload::TeraSort), 2.0); // 40/20
        assert_eq!(Dataset::D1.scale(Workload::KMeans), 1.0);
    }

    #[test]
    fn fractional_fidelity_scales_below_d1_without_clamping() {
        // Satellite pin: 1/16, 1/4, 1/2 of each dataset, plus the
        // existing D1–D3 points at full fidelity.
        let f16 = Fidelity::new(1.0 / 16.0).unwrap();
        let f4 = Fidelity::new(0.25).unwrap();
        let f2 = Fidelity::new(0.5).unwrap();
        assert_eq!(Dataset::D1.scale_at(Workload::PageRank, f16), 1.0 / 16.0);
        assert_eq!(Dataset::D1.scale_at(Workload::KMeans, f4), 0.25);
        assert_eq!(Dataset::D1.scale_at(Workload::TeraSort, f2), 0.5);
        // Fidelity composes multiplicatively with the Table-1 scale…
        assert_eq!(Dataset::D2.scale_at(Workload::PageRank, f2), 0.75);
        assert_eq!(Dataset::D3.scale_at(Workload::LogisticRegression, f4), 0.75);
        assert_eq!(Dataset::D3.scale_at(Workload::TeraSort, f16), 2.0 / 16.0);
        // …and FULL fidelity reproduces Table 1 exactly.
        for w in ALL_WORKLOADS {
            for d in ALL_DATASETS {
                assert_eq!(d.scale_at(w, Fidelity::FULL), d.scale(w));
            }
        }
    }

    #[test]
    fn plan_at_scales_data_volumes_not_iterations() {
        let f4 = Fidelity::new(0.25).unwrap();
        for w in ALL_WORKLOADS {
            let full = w.plan(Dataset::D2);
            let quarter = w.plan_at(Dataset::D2, f4);
            assert_eq!(quarter.load.input_mb, full.load.input_mb * 0.25, "{w:?}");
            assert_eq!(quarter.cache_mb, full.cache_mb * 0.25, "{w:?}");
            assert_eq!(quarter.iterations, full.iterations, "{w:?}");
            assert_eq!(quarter.load.cpu_per_mb, full.load.cpu_per_mb, "{w:?}");
            // plan_at(FULL) is bit-identical to plan().
            assert_eq!(w.plan_at(Dataset::D2, Fidelity::FULL), full, "{w:?}");
        }
    }

    #[test]
    fn custom_plan_at_fidelity_matches_workload_path() {
        let f16 = Fidelity::new(1.0 / 16.0).unwrap();
        // Workloads whose stage volumes all scale with input size: the
        // generic Plan::at_fidelity is exactly the builder's own scaling.
        for w in [Workload::PageRank, Workload::ConnectedComponents, Workload::TeraSort] {
            let via_workload = w.plan_at(Dataset::D3, f16);
            let via_plan = w.plan(Dataset::D3).at_fidelity(f16);
            assert_eq!(via_workload, via_plan, "{w:?}");
        }
        // KM/LR carry tiny constant shuffle terms (centroid/gradient
        // aggregation does not shrink with the sample); everything that
        // represents data volume still matches.
        for w in [Workload::KMeans, Workload::LogisticRegression] {
            let via_workload = w.plan_at(Dataset::D3, f16);
            let via_plan = w.plan(Dataset::D3).at_fidelity(f16);
            assert_eq!(via_workload.load.input_mb, via_plan.load.input_mb, "{w:?}");
            assert_eq!(via_workload.cache_mb, via_plan.cache_mb, "{w:?}");
            assert_eq!(
                via_workload.hdfs_partition_mb, via_plan.hdfs_partition_mb,
                "{w:?}"
            );
        }
    }

    #[test]
    fn iterative_workloads_cache_noniterative_do_not() {
        assert!(Workload::PageRank.plan(Dataset::D1).cache_mb > 0.0);
        assert!(Workload::KMeans.plan(Dataset::D1).cache_mb > 0.0);
        assert_eq!(Workload::TeraSort.plan(Dataset::D1).cache_mb, 0.0);
    }

    #[test]
    fn narrow_vs_broad_optimum_encoding() {
        // §5.2: PR/CC/LR benefit from exploitation (narrow optima); KM/TS
        // have large high-performing regions.
        let narrow = [Workload::PageRank, Workload::ConnectedComponents, Workload::LogisticRegression];
        let broad = [Workload::KMeans, Workload::TeraSort];
        let min_narrow = narrow
            .iter()
            .map(|w| w.plan(Dataset::D1).balance_sensitivity)
            .fold(f64::INFINITY, f64::min);
        let max_broad = broad
            .iter()
            .map(|w| w.plan(Dataset::D1).balance_sensitivity)
            .fold(0.0, f64::max);
        assert!(min_narrow > max_broad);
    }

    #[test]
    fn short_names_match_paper() {
        let names: Vec<&str> = ALL_WORKLOADS.iter().map(|w| w.short_name()).collect();
        assert_eq!(names, vec!["PR", "KM", "CC", "LR", "TS"]);
    }

    #[test]
    fn terasort_shuffles_its_whole_input() {
        let p = Workload::TeraSort.plan(Dataset::D2);
        assert_eq!(p.load.shuffle_out_mb, p.load.input_mb);
        let finish = p.finish.as_ref().unwrap();
        assert_eq!(finish.output_mb, p.load.input_mb);
        assert_eq!(finish.source, Source::Shuffle);
    }
}
