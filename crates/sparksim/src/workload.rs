//! The five SparkBench workloads and their Table-1 datasets.

/// A tunable workload (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// GraphX PageRank over a generated web graph.
    PageRank,
    /// MLlib KMeans clustering; caches the full point RDD.
    KMeans,
    /// GraphX ConnectedComponents.
    ConnectedComponents,
    /// MLlib LogisticRegression; caches the training RDD.
    LogisticRegression,
    /// TeraSort micro-benchmark: one full shuffle of the input.
    TeraSort,
}

/// All five workloads in the paper's Table-1 order.
pub const ALL_WORKLOADS: [Workload; 5] = [
    Workload::PageRank,
    Workload::KMeans,
    Workload::ConnectedComponents,
    Workload::LogisticRegression,
    Workload::TeraSort,
];

/// One of the three input datasets per workload (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// Smallest input.
    D1,
    /// Middle input.
    D2,
    /// Largest input.
    D3,
}

/// All datasets in Table-1 order.
pub const ALL_DATASETS: [Dataset; 3] = [Dataset::D1, Dataset::D2, Dataset::D3];

impl Dataset {
    /// Scale of this dataset relative to D1, per Table 1
    /// (PR/CC: 5 / 7.5 / 10 M pages; KM: 200/300/400 M points;
    /// LR: 100/200/300 M examples; TS: 20/30/40 GB).
    pub fn scale(self, workload: Workload) -> f64 {
        match (workload, self) {
            (_, Dataset::D1) => 1.0,
            (Workload::LogisticRegression, Dataset::D2) => 2.0,
            (Workload::LogisticRegression, Dataset::D3) => 3.0,
            (_, Dataset::D2) => 1.5,
            (_, Dataset::D3) => 2.0,
        }
    }

    /// Index (0 for D1, 1 for D2, 2 for D3) — handy for seeding and
    /// report labelling.
    pub fn index(self) -> usize {
        match self {
            Dataset::D1 => 0,
            Dataset::D2 => 1,
            Dataset::D3 => 2,
        }
    }
}

/// Where a stage's input bytes come from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Source {
    /// HDFS read (disk/network bound, 128 MiB blocks decide partitioning).
    Hdfs,
    /// A cached RDD (memory speed when it fits; re-read/recompute when
    /// evicted).
    Cache,
    /// The previous stage's shuffle output.
    Shuffle,
}

/// One stage of a workload's plan.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage label for reports.
    pub name: &'static str,
    /// Bytes processed per occurrence, MiB (raw, pre-compression).
    pub input_mb: f64,
    /// Input source.
    pub source: Source,
    /// Bytes written to shuffle, MiB (raw).
    pub shuffle_out_mb: f64,
    /// Single-core compute seconds per MiB of input.
    pub cpu_per_mb: f64,
    /// Bytes written back to HDFS, MiB.
    pub output_mb: f64,
}

/// The full execution plan of one workload on one dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The initial load/materialise stage.
    pub load: Stage,
    /// The repeated iteration stage, if the workload is iterative.
    pub iter: Option<Stage>,
    /// Number of repetitions of `iter`.
    pub iterations: usize,
    /// A final stage (e.g. TeraSort's reduce+write), if any.
    pub finish: Option<Stage>,
    /// Raw size of the RDD this workload caches, MiB (0 = no caching).
    pub cache_mb: f64,
    /// How sensitive the workload is to executor-shape imbalance; larger
    /// values carve a narrower high-performance region (PR/CC/LR vs the
    /// plateaus of KM/TS — §5.2).
    pub balance_sensitivity: f64,
    /// Single-core CPU seconds per MiB to *recompute* an evicted cache
    /// partition (on top of re-reading its lineage input).
    pub recompute_cpu_per_mb: f64,
    /// In-heap object expansion multiplier of this workload's records on
    /// top of the serializer's own expansion (graph structures blow up
    /// badly; primitive arrays barely; streamed records hardly at all).
    pub object_factor: f64,
    /// Whether iteration stages re-partition through shuffles and thus
    /// follow `spark.default.parallelism` (GraphX joins) instead of the
    /// cached RDD's lineage partitioning (MLlib scans).
    pub iter_partitions_by_parallelism: bool,
    /// Whether iteration stages fetch shuffle blocks over the network in
    /// addition to reading the cache (graph message exchange).
    pub iter_fetches_over_network: bool,
}

impl Workload {
    /// Short display name used throughout the paper's figures.
    pub fn short_name(self) -> &'static str {
        match self {
            Workload::PageRank => "PR",
            Workload::KMeans => "KM",
            Workload::ConnectedComponents => "CC",
            Workload::LogisticRegression => "LR",
            Workload::TeraSort => "TS",
        }
    }

    /// Builds the stage plan for `dataset`.
    pub fn plan(self, dataset: Dataset) -> Plan {
        let s = dataset.scale(self);
        match self {
            Workload::PageRank => {
                // 5 M pages ≈ 6 GiB of edges+vertices on HDFS; the links
                // RDD (cached) carries the adjacency structure.
                let input = 6_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+partition",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input * 0.8,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "rank-iteration",
                        input_mb: input * 1.2,
                        source: Source::Cache,
                        shuffle_out_mb: input * 0.55,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    }),
                    iterations: 10,
                    finish: None,
                    cache_mb: input * 1.3,
                    balance_sensitivity: 1.0,
                    recompute_cpu_per_mb: 0.012,
                    object_factor: 1.5,
                    iter_partitions_by_parallelism: true,
                    iter_fetches_over_network: true,
                }
            }
            Workload::ConnectedComponents => {
                let input = 6_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+partition",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input * 0.8,
                        cpu_per_mb: 0.010,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "label-propagation",
                        input_mb: input * 1.1,
                        source: Source::Cache,
                        shuffle_out_mb: input * 0.45,
                        cpu_per_mb: 0.010,
                        output_mb: 0.0,
                    }),
                    iterations: 8,
                    finish: None,
                    cache_mb: input * 1.3,
                    balance_sensitivity: 0.9,
                    recompute_cpu_per_mb: 0.010,
                    object_factor: 1.5,
                    iter_partitions_by_parallelism: true,
                    iter_fetches_over_network: true,
                }
            }
            Workload::KMeans => {
                // 200 M points ≈ 24 GiB of text; all points cached. The
                // load is parse-heavy (≈ 80 MiB/s/core), which is what
                // makes cache eviction — recompute-from-text every
                // iteration — so punishing (§5.2's 27× default slowdown).
                let input = 24_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+cache",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: 4.0,
                        cpu_per_mb: 0.012,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "assign+update",
                        input_mb: input,
                        source: Source::Cache,
                        shuffle_out_mb: 4.0,
                        cpu_per_mb: 0.006,
                        output_mb: 0.0,
                    }),
                    iterations: 10,
                    finish: None,
                    cache_mb: input,
                    balance_sensitivity: 0.15,
                    recompute_cpu_per_mb: 0.012,
                    object_factor: 0.55,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                }
            }
            Workload::LogisticRegression => {
                // 100 M examples ≈ 8 GiB of dense feature rows; gradient
                // aggregation per pass. Cheap to recompute relative to
                // KMeans, which keeps the default-configuration penalty
                // moderate (§5.2: LR 2.17× vs KM 27×).
                let input = 8_000.0 * s;
                Plan {
                    load: Stage {
                        name: "load+cache",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: 2.0,
                        cpu_per_mb: 0.005,
                        output_mb: 0.0,
                    },
                    iter: Some(Stage {
                        name: "gradient-pass",
                        input_mb: input,
                        source: Source::Cache,
                        shuffle_out_mb: 2.0,
                        cpu_per_mb: 0.005,
                        output_mb: 0.0,
                    }),
                    iterations: 8,
                    finish: None,
                    cache_mb: input,
                    balance_sensitivity: 0.55,
                    recompute_cpu_per_mb: 0.002,
                    object_factor: 0.55,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                }
            }
            Workload::TeraSort => {
                // 20/30/40 GiB: map reads + shuffles everything, reduce
                // sorts and writes back.
                let input = 20_480.0 * s;
                Plan {
                    load: Stage {
                        name: "map",
                        input_mb: input,
                        source: Source::Hdfs,
                        shuffle_out_mb: input,
                        cpu_per_mb: 0.0015,
                        output_mb: 0.0,
                    },
                    iter: None,
                    iterations: 0,
                    finish: Some(Stage {
                        name: "sort+write",
                        input_mb: input,
                        source: Source::Shuffle,
                        shuffle_out_mb: 0.0,
                        cpu_per_mb: 0.003,
                        output_mb: input,
                    }),
                    cache_mb: 0.0,
                    balance_sensitivity: 0.15,
                    recompute_cpu_per_mb: 0.0,
                    object_factor: 0.75,
                    iter_partitions_by_parallelism: false,
                    iter_fetches_over_network: false,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_plans_are_internally_consistent() {
        for w in ALL_WORKLOADS {
            for d in ALL_DATASETS {
                let p = w.plan(d);
                assert!(p.load.input_mb > 0.0);
                assert_eq!(p.load.source, Source::Hdfs);
                assert_eq!(p.iter.is_some(), p.iterations > 0, "{w:?}");
                if let Some(it) = &p.iter {
                    assert!(it.input_mb > 0.0);
                }
                assert!(p.balance_sensitivity >= 0.0);
            }
        }
    }

    #[test]
    fn dataset_scaling_follows_table_1() {
        assert_eq!(Dataset::D2.scale(Workload::PageRank), 1.5); // 7.5/5
        assert_eq!(Dataset::D3.scale(Workload::PageRank), 2.0); // 10/5
        assert_eq!(Dataset::D2.scale(Workload::LogisticRegression), 2.0); // 200/100
        assert_eq!(Dataset::D3.scale(Workload::LogisticRegression), 3.0); // 300/100
        assert_eq!(Dataset::D3.scale(Workload::TeraSort), 2.0); // 40/20
        assert_eq!(Dataset::D1.scale(Workload::KMeans), 1.0);
    }

    #[test]
    fn iterative_workloads_cache_noniterative_do_not() {
        assert!(Workload::PageRank.plan(Dataset::D1).cache_mb > 0.0);
        assert!(Workload::KMeans.plan(Dataset::D1).cache_mb > 0.0);
        assert_eq!(Workload::TeraSort.plan(Dataset::D1).cache_mb, 0.0);
    }

    #[test]
    fn narrow_vs_broad_optimum_encoding() {
        // §5.2: PR/CC/LR benefit from exploitation (narrow optima); KM/TS
        // have large high-performing regions.
        let narrow = [Workload::PageRank, Workload::ConnectedComponents, Workload::LogisticRegression];
        let broad = [Workload::KMeans, Workload::TeraSort];
        let min_narrow = narrow
            .iter()
            .map(|w| w.plan(Dataset::D1).balance_sensitivity)
            .fold(f64::INFINITY, f64::min);
        let max_broad = broad
            .iter()
            .map(|w| w.plan(Dataset::D1).balance_sensitivity)
            .fold(0.0, f64::max);
        assert!(min_narrow > max_broad);
    }

    #[test]
    fn short_names_match_paper() {
        let names: Vec<&str> = ALL_WORKLOADS.iter().map(|w| w.short_name()).collect();
        assert_eq!(names, vec!["PR", "KM", "CC", "LR", "TS"]);
    }

    #[test]
    fn terasort_shuffles_its_whole_input() {
        let p = Workload::TeraSort.plan(Dataset::D2);
        assert_eq!(p.load.shuffle_out_mb, p.load.input_mb);
        let finish = p.finish.as_ref().unwrap();
        assert_eq!(finish.output_mb, p.load.input_mb);
        assert_eq!(finish.source, Source::Shuffle);
    }
}
