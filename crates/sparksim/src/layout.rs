//! Executor packing: how many executors and task slots a configuration
//! actually obtains from the cluster.

use crate::cluster::Cluster;
use crate::params::SparkParams;

/// The resolved executor layout of a submitted application.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutorLayout {
    /// Executors actually launched (≤ requested instances).
    pub executors: usize,
    /// Worker nodes hosting at least one executor.
    pub nodes_used: usize,
    /// Concurrent tasks per executor (`⌊cores / task.cpus⌋`).
    pub slots_per_executor: usize,
    /// Total concurrent task slots across the application.
    pub total_slots: usize,
    /// Concurrent tasks per used node (disk/NIC contention divisor).
    pub slots_per_node: f64,
    /// Executor heap, MiB.
    pub heap_mb: f64,
    /// Unified memory region per executor, MiB
    /// (`(heap − 300) × spark.memory.fraction`).
    pub unified_mb: f64,
    /// Eviction-protected storage region per executor, MiB.
    pub storage_mb: f64,
    /// Execution share of the unified region per executor, MiB, plus any
    /// off-heap execution memory.
    pub execution_mb: f64,
    /// User memory per executor (the 1 − memory.fraction share), MiB.
    pub user_mb: f64,
}

impl ExecutorLayout {
    /// Packs executors onto the cluster. Returns `None` when the
    /// configuration cannot launch at all (an executor wouldn't fit on a
    /// node, or yields zero task slots) — the simulator maps that to a
    /// fast submit failure.
    pub fn solve(cluster: &Cluster, p: &SparkParams) -> Option<Self> {
        if p.executor_cores as usize > cluster.cores_per_node {
            return None;
        }
        // Spark's actual container footprint: heap + max(overhead, 10%).
        let overhead = p.memory_overhead_mb.max(p.executor_memory_mb * 0.10);
        let mut footprint = p.executor_memory_mb + overhead;
        if p.offheap_enabled {
            footprint += p.offheap_size_mb;
        }
        if footprint > cluster.usable_memory_per_node_mb() {
            return None;
        }

        let by_cores = cluster.cores_per_node / p.executor_cores as usize;
        let by_mem = (cluster.usable_memory_per_node_mb() / footprint).floor() as usize;
        let per_node = by_cores.min(by_mem);
        if per_node == 0 {
            return None;
        }
        let capacity = per_node * cluster.nodes;
        let executors = capacity.min(p.executor_instances.max(0) as usize);
        if executors == 0 {
            return None;
        }
        let slots_per_executor = (p.executor_cores / p.task_cpus.max(1)) as usize;
        if slots_per_executor == 0 {
            return None;
        }

        // Executors spread round-robin across nodes.
        let nodes_used = executors.min(cluster.nodes);
        let slots_per_node = (executors * slots_per_executor) as f64 / nodes_used as f64;

        let heap = p.executor_memory_mb;
        let unified = ((heap - 300.0) * p.memory_fraction).max(0.0);
        let storage = unified * p.storage_fraction;
        let mut execution = unified - storage;
        if p.offheap_enabled {
            execution += p.offheap_size_mb;
        }
        let user = ((heap - 300.0) * (1.0 - p.memory_fraction)).max(0.0);

        Some(ExecutorLayout {
            executors,
            nodes_used,
            slots_per_executor,
            total_slots: executors * slots_per_executor,
            slots_per_node,
            heap_mb: heap,
            unified_mb: unified,
            storage_mb: storage,
            execution_mb: execution,
            user_mb: user,
        })
    }

    /// Aggregate eviction-protected cache capacity, MiB.
    pub fn total_storage_mb(&self) -> f64 {
        self.storage_mb * self.executors as f64
    }

    /// Execution memory available to one concurrent task, MiB.
    pub fn execution_per_task_mb(&self) -> f64 {
        self.execution_mb / self.slots_per_executor as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;

    fn params_with(f: impl FnOnce(&mut SparkParams)) -> SparkParams {
        let space = spark_space();
        let mut p = SparkParams::extract(&space, &space.default_configuration());
        f(&mut p);
        p
    }

    #[test]
    fn default_layout_launches_two_small_executors() {
        let c = Cluster::noleland();
        let l = ExecutorLayout::solve(&c, &params_with(|_| {})).unwrap();
        assert_eq!(l.executors, 2);
        assert_eq!(l.total_slots, 2);
    }

    #[test]
    fn factory_default_heap_leaves_almost_no_unified_memory() {
        let c = Cluster::noleland();
        let space = spark_space();
        let l = ExecutorLayout::solve(&c, &SparkParams::factory_defaults(&space)).unwrap();
        assert_eq!(l.executors, 2);
        assert!(l.unified_mb < 500.0, "1 GiB heap leaves {} MiB unified", l.unified_mb);
    }

    #[test]
    fn oversized_executor_fails_to_launch() {
        let c = Cluster::noleland();
        let p = params_with(|p| p.executor_memory_mb = 200.0 * 1024.0);
        assert!(ExecutorLayout::solve(&c, &p).is_none());
    }

    #[test]
    fn task_cpus_above_cores_fails() {
        let c = Cluster::noleland();
        let p = params_with(|p| {
            p.executor_cores = 1;
            p.task_cpus = 2;
        });
        assert!(ExecutorLayout::solve(&c, &p).is_none());
    }

    #[test]
    fn memory_limits_packing() {
        let c = Cluster::noleland();
        // 90 GiB executors: only 2 fit per node by memory.
        let p = params_with(|p| {
            p.executor_cores = 4;
            p.executor_memory_mb = 80.0 * 1024.0;
            p.executor_instances = 40;
        });
        let l = ExecutorLayout::solve(&c, &p).unwrap();
        assert_eq!(l.executors, 10, "2 per node × 5 nodes");
        assert_eq!(l.total_slots, 40);
    }

    #[test]
    fn core_limits_packing() {
        let c = Cluster::noleland();
        let p = params_with(|p| {
            p.executor_cores = 16;
            p.executor_memory_mb = 8.0 * 1024.0;
            p.executor_instances = 40;
        });
        let l = ExecutorLayout::solve(&c, &p).unwrap();
        assert_eq!(l.executors, 10, "32 cores / 16 = 2 per node × 5");
        assert_eq!(l.slots_per_executor, 16);
    }

    #[test]
    fn memory_regions_follow_sparks_formula() {
        let c = Cluster::noleland();
        let p = params_with(|p| {
            p.executor_memory_mb = 10_300.0;
            p.memory_fraction = 0.6;
            p.storage_fraction = 0.5;
        });
        let l = ExecutorLayout::solve(&c, &p).unwrap();
        assert!((l.unified_mb - 6_000.0).abs() < 1.0);
        assert!((l.storage_mb - 3_000.0).abs() < 1.0);
        assert!((l.execution_mb - 3_000.0).abs() < 1.0);
        assert!((l.user_mb - 4_000.0).abs() < 1.0);
    }

    #[test]
    fn offheap_adds_execution_memory() {
        let c = Cluster::noleland();
        let base = params_with(|p| p.executor_memory_mb = 8_192.0);
        let with_off = params_with(|p| {
            p.executor_memory_mb = 8_192.0;
            p.offheap_enabled = true;
            p.offheap_size_mb = 4_096.0;
        });
        let l0 = ExecutorLayout::solve(&c, &base).unwrap();
        let l1 = ExecutorLayout::solve(&c, &with_off).unwrap();
        assert!(l1.execution_mb > l0.execution_mb + 4_000.0);
    }

    #[test]
    fn slots_per_node_accounts_for_spread() {
        let c = Cluster::noleland();
        let p = params_with(|p| {
            p.executor_cores = 8;
            p.executor_memory_mb = 16_384.0;
            p.executor_instances = 10;
        });
        let l = ExecutorLayout::solve(&c, &p).unwrap();
        assert_eq!(l.nodes_used, 5);
        assert!((l.slots_per_node - 16.0).abs() < 1e-9);
    }
}
