//! A discrete-event task scheduler — the high-fidelity cross-check of the
//! analytic wave model.
//!
//! Where [`crate::sim::simulate_plan`] estimates a stage as
//! `waves × mean-task-time × straggler-inflation`, this module actually
//! schedules every task onto slot timelines: each task draws its own
//! lognormal duration, the driver dispatches at a bounded launch rate,
//! stragglers emerge from the noise rather than from a fixed factor, and
//! speculative execution genuinely re-launches slow tasks once the
//! configured quantile of the stage has finished (Spark's semantics for
//! `spark.speculation.{quantile,multiplier}`).
//!
//! Both engines share the per-stage [`StageProfile`] (costs, floors,
//! spill/OOM semantics), so any divergence between them isolates the
//! *scheduling* approximation — see the cross-validation tests at the
//! bottom.

use rand::rngs::StdRng;

use robotune_stats::{lognormal, rng_from_seed};

use crate::cluster::Cluster;
use crate::layout::ExecutorLayout;
use crate::params::SparkParams;
use crate::sim::{consts, simulate_with, RunReport, StageCost, StageProfile};
use crate::workload::Plan;

/// Default σ of per-task lognormal duration noise. Calibrated so the
/// emergent straggler inflation of a full wave matches the analytic
/// model's `STRAGGLER_BASE` (~12% over the mean for ~32-task waves).
pub const DEFAULT_TASK_SIGMA: f64 = 0.18;

/// Simulates one run with the discrete-event scheduler.
///
/// `task_sigma` is the per-task duration noise (0 = deterministic tasks);
/// `seed` makes the whole run reproducible.
pub fn simulate_event(
    cluster: &Cluster,
    p: &SparkParams,
    plan: &Plan,
    seed: u64,
    task_sigma: f64,
) -> RunReport {
    assert!(task_sigma >= 0.0, "task noise must be non-negative");
    let mut rng = rng_from_seed(seed);
    simulate_with(cluster, p, plan, |profile, layout| {
        event_stage(profile, p, layout, task_sigma, &mut rng)
    })
}

/// Schedules one stage's tasks and returns its cost.
fn event_stage(
    profile: &StageProfile,
    p: &SparkParams,
    layout: &ExecutorLayout,
    task_sigma: f64,
    rng: &mut StdRng,
) -> StageCost {
    let n = profile.partitions;
    let slots = layout.total_slots.max(1);

    // Draw per-task durations. The lognormal mean is e^(σ²/2); divide it
    // out so the expected duration equals the analytic mean task time.
    let mean_correction = (task_sigma * task_sigma / 2.0).exp();
    let durations: Vec<f64> = (0..n)
        .map(|_| {
            let noise = if task_sigma > 0.0 {
                lognormal(rng, 0.0, task_sigma) / mean_correction
            } else {
                1.0
            };
            // Per-task scheduling overhead rides inside the slot
            // occupancy, matching the analytic model's launch cost.
            profile.task_s * noise + consts::TASK_LAUNCH_S
        })
        .collect();

    // Slot timelines: index of the earliest-free slot via linear scan
    // (slot counts are ≤ 160 here; a heap would be over-engineering).
    let mut free_at = vec![0.0f64; slots];
    let mut starts = vec![0.0f64; n];
    let mut ends = vec![0.0f64; n];
    for (i, &d) in durations.iter().enumerate() {
        // total_cmp keeps straggler-injected NaN durations from panicking
        // the scheduler; NaN sorts above every finite free time.
        let (slot, &t) = match free_at.iter().enumerate().min_by(|a, b| a.1.total_cmp(b.1)) {
            Some(s) => s,
            // Zero slots cannot schedule anything; tasks never start.
            None => break,
        };
        starts[i] = t;
        ends[i] = t + d;
        free_at[slot] = ends[i];
    }

    // Speculative execution: once `quantile` of the stage has completed,
    // any task still running past `multiplier ×` the median completed
    // duration gets a speculative copy; the task finishes at the earlier
    // of the two attempts.
    if p.speculation && n >= 4 {
        let mut sorted_ends = ends.clone();
        sorted_ends.sort_by(f64::total_cmp);
        let q_idx = ((n as f64 * p.speculation_quantile).floor() as usize).min(n - 1);
        let watch_from = sorted_ends[q_idx];
        let mut sorted_durs = durations.clone();
        sorted_durs.sort_by(f64::total_cmp);
        let median_d = sorted_durs[n / 2];
        let threshold = median_d * p.speculation_multiplier.max(1.0);
        for i in 0..n {
            let running_for = ends[i] - starts[i];
            if ends[i] > watch_from && running_for > threshold {
                // Copy launches when the straggler is detected; fresh noise.
                let copy_start = (starts[i] + threshold).max(watch_from);
                let copy_noise = if task_sigma > 0.0 {
                    lognormal(rng, 0.0, task_sigma) / mean_correction
                } else {
                    1.0
                };
                let copy_end = copy_start + profile.task_s * copy_noise;
                ends[i] = ends[i].min(copy_end);
            }
        }
    }

    let span = ends.iter().cloned().fold(0.0, f64::max);
    profile.finish(span + profile.locality_s + profile.stage_extra_s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_plan, Outcome};
    use crate::workload::{Dataset, Workload, ALL_WORKLOADS};
    use robotune_space::spark::{names, spark_space};
    use robotune_space::ParamValue;

    fn tuned_params() -> SparkParams {
        let space = spark_space();
        let mut cfg = space.default_configuration();
        let set = |cfg: &mut robotune_space::Configuration, name: &str, v: i64| {
            cfg.set(space.index_of(name).unwrap(), ParamValue::Int(v));
        };
        set(&mut cfg, names::EXECUTOR_CORES, 8);
        set(&mut cfg, names::EXECUTOR_MEMORY, 24 * 1024);
        set(&mut cfg, names::EXECUTOR_INSTANCES, 20);
        set(&mut cfg, names::DEFAULT_PARALLELISM, 400);
        SparkParams::extract(&space, &cfg)
    }

    #[test]
    fn noise_free_event_mode_agrees_with_the_analytic_model() {
        // With zero task noise the only differences are the fixed
        // straggler inflation (analytic) vs none (event) and exact slot
        // packing vs whole waves — the two must track each other closely.
        let c = Cluster::noleland();
        let p = tuned_params();
        for w in ALL_WORKLOADS {
            let plan = w.plan(Dataset::D1);
            let analytic = simulate_plan(&c, &p, &plan);
            let event = simulate_event(&c, &p, &plan, 1, 0.0);
            let (Outcome::Completed(ta), Outcome::Completed(te)) =
                (analytic.outcome, event.outcome)
            else {
                panic!("{w:?}: both engines should complete");
            };
            let ratio = te / ta;
            assert!(
                (0.7..=1.05).contains(&ratio),
                "{w:?}: event {te:.1}s vs analytic {ta:.1}s (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn event_mode_is_deterministic_given_a_seed() {
        let c = Cluster::noleland();
        let p = tuned_params();
        let plan = Workload::PageRank.plan(Dataset::D2);
        let a = simulate_event(&c, &p, &plan, 42, DEFAULT_TASK_SIGMA);
        let b = simulate_event(&c, &p, &plan, 42, DEFAULT_TASK_SIGMA);
        assert_eq!(a, b);
        let c2 = simulate_event(&c, &p, &plan, 43, DEFAULT_TASK_SIGMA);
        assert_ne!(a.elapsed_s(), c2.elapsed_s());
    }

    #[test]
    fn task_noise_creates_emergent_stragglers() {
        let c = Cluster::noleland();
        let p = tuned_params();
        let plan = Workload::KMeans.plan(Dataset::D1);
        let quiet = simulate_event(&c, &p, &plan, 5, 0.0).elapsed_s();
        let noisy = simulate_event(&c, &p, &plan, 5, DEFAULT_TASK_SIGMA).elapsed_s();
        assert!(
            noisy > quiet,
            "stragglers must lengthen the run: {noisy:.1} vs {quiet:.1}"
        );
    }

    #[test]
    fn speculation_rescues_stragglers_under_noise() {
        let c = Cluster::noleland();
        let mut off = tuned_params();
        off.speculation = false;
        let mut on = tuned_params();
        on.speculation = true;
        on.speculation_quantile = 0.5;
        on.speculation_multiplier = 1.3;
        let plan = Workload::PageRank.plan(Dataset::D2);
        // Average across seeds — speculation wins in expectation.
        let avg = |p: &SparkParams| -> f64 {
            (0..12)
                .map(|s| simulate_event(&c, p, &plan, s, 0.35).elapsed_s())
                .sum::<f64>()
                / 12.0
        };
        let t_off = avg(&off);
        let t_on = avg(&on);
        assert!(
            t_on < t_off,
            "speculation should shorten noisy runs: on {t_on:.1}s vs off {t_off:.1}s"
        );
    }

    #[test]
    fn oom_semantics_are_identical_across_engines() {
        let c = Cluster::noleland();
        let space = spark_space();
        let p = SparkParams::factory_defaults(&space);
        let plan = Workload::PageRank.plan(Dataset::D1);
        let analytic = simulate_plan(&c, &p, &plan);
        let event = simulate_event(&c, &p, &plan, 7, DEFAULT_TASK_SIGMA);
        assert!(matches!(analytic.outcome, Outcome::Oom { .. }));
        assert!(matches!(event.outcome, Outcome::Oom { .. }));
    }

    #[test]
    fn stage_counts_match_across_engines() {
        let c = Cluster::noleland();
        let p = tuned_params();
        let plan = Workload::TeraSort.plan(Dataset::D1);
        let analytic = simulate_plan(&c, &p, &plan);
        let event = simulate_event(&c, &p, &plan, 9, 0.1);
        assert_eq!(analytic.stages.len(), event.stages.len());
        for (a, e) in analytic.stages.iter().zip(&event.stages) {
            assert_eq!(a.name, e.name);
        }
    }
}
