//! [`SparkJob`]: the objective function tuners evaluate.

use rand::rngs::StdRng;
use robotune_faults::{EvalFaults, FaultPlan};
use robotune_space::{ConfigSpace, Configuration};
use robotune_stats::{lognormal, rng_from_seed};
use robotune_tuners::{Evaluation, Fidelity, Objective};

use crate::cluster::Cluster;
use crate::event::simulate_event;
use crate::params::SparkParams;
use crate::sim::{simulate, Outcome, RunReport};
use crate::workload::{Dataset, Workload};

/// Which simulation engine evaluates configurations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SimEngine {
    /// The analytic wave model (default; what the paper-shape experiments
    /// run on).
    Analytic,
    /// The discrete-event scheduler with per-task duration noise — see
    /// [`crate::event`].
    Event {
        /// Per-task lognormal duration σ.
        task_sigma: f64,
    },
}

/// A (workload, dataset) pair on a cluster, evaluable as an
/// [`Objective`]. Adds multiplicative lognormal noise over the
/// deterministic simulator — the shared-cluster interference the paper
/// motivates BO's noise model with — and enforces the per-run cap.
#[derive(Debug, Clone)]
pub struct SparkJob {
    cluster: Cluster,
    space: ConfigSpace,
    workload: Workload,
    dataset: Dataset,
    /// When set, this plan replaces `workload.plan(dataset)` — the
    /// extension point for user-defined workloads.
    custom_plan: Option<crate::workload::Plan>,
    engine: SimEngine,
    noise_sigma: f64,
    rng: StdRng,
    evaluations: usize,
    /// The fraction of `dataset` each evaluation processes. FULL unless a
    /// multi-fidelity tuner switches it (see [`Objective::set_fidelity`]);
    /// switching never touches the noise or fault streams, so the same
    /// seed replays the same schedule whatever fidelities were requested.
    fidelity: Fidelity,
    /// When set, each evaluation is perturbed by the plan's schedule for
    /// its (global) evaluation index. Independent of the noise stream, so
    /// every tuner sharing a plan seed sees the same fault at the same
    /// evaluation index.
    faults: Option<FaultPlan>,
}

impl SparkJob {
    /// Default run-to-run noise (σ of the underlying normal).
    pub const DEFAULT_NOISE_SIGMA: f64 = 0.05;

    /// Creates a job on the NoleLand-like cluster with default noise.
    pub fn new(space: ConfigSpace, workload: Workload, dataset: Dataset, seed: u64) -> Self {
        SparkJob {
            cluster: Cluster::noleland(),
            space,
            workload,
            dataset,
            custom_plan: None,
            engine: SimEngine::Analytic,
            noise_sigma: Self::DEFAULT_NOISE_SIGMA,
            rng: rng_from_seed(seed),
            evaluations: 0,
            fidelity: Fidelity::FULL,
            faults: None,
        }
    }

    /// Starts the job at `fidelity` (see [`Objective::set_fidelity`] for
    /// switching mid-stream).
    pub fn with_fidelity(mut self, fidelity: Fidelity) -> Self {
        self.fidelity = fidelity;
        self
    }

    /// Seconds burned by a cluster-side submit rejection: the gateway
    /// bounces the application before any executor starts.
    pub const SUBMIT_FAILURE_S: f64 = 6.0;

    /// Injects a deterministic fault schedule into every subsequent
    /// [`Objective::evaluate`] call (see [`robotune_faults::FaultPlan`]).
    /// The schedule is keyed by the job's running evaluation counter, so a
    /// retried evaluation advances to the next scheduled fault rather than
    /// replaying the same one forever.
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The active fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref()
    }

    /// Replaces the built-in workload plan with a user-defined one (the
    /// `workload`/`dataset` passed at construction become labels only).
    /// See [`crate::sim::simulate_plan`].
    pub fn with_custom_plan(mut self, plan: crate::workload::Plan) -> Self {
        self.custom_plan = Some(plan);
        self
    }

    /// Switches the evaluation engine (see [`SimEngine`]). Event mode
    /// derives a fresh scheduler seed per evaluation from the job's RNG,
    /// so the whole evaluation stream stays reproducible.
    pub fn with_engine(mut self, engine: SimEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the noise level (0 disables noise).
    pub fn with_noise(mut self, sigma: f64) -> Self {
        assert!(sigma >= 0.0, "noise sigma must be non-negative");
        self.noise_sigma = sigma;
        self
    }

    /// Overrides the cluster.
    pub fn with_cluster(mut self, cluster: Cluster) -> Self {
        self.cluster = cluster;
        self
    }

    /// The workload under tuning.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The dataset under tuning.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The configuration space this job expects.
    pub fn space(&self) -> &ConfigSpace {
        &self.space
    }

    /// How many evaluations this job has served.
    pub fn evaluations(&self) -> usize {
        self.evaluations
    }

    /// Runs the deterministic simulator without noise or cap — useful for
    /// inspecting the model itself. Honours the current fidelity.
    pub fn dry_run(&self, config: &Configuration) -> RunReport {
        let p = SparkParams::extract(&self.space, config);
        match &self.custom_plan {
            Some(plan) if self.fidelity.is_full() => {
                crate::sim::simulate_plan(&self.cluster, &p, plan)
            }
            Some(plan) => {
                crate::sim::simulate_plan(&self.cluster, &p, &plan.at_fidelity(self.fidelity))
            }
            None if self.fidelity.is_full() => {
                simulate(&self.cluster, &p, self.workload, self.dataset)
            }
            None => crate::sim::simulate_plan(
                &self.cluster,
                &p,
                &self.workload.plan_at(self.dataset, self.fidelity),
            ),
        }
    }

    /// Runs with noise but no cap; returns the "true" noisy runtime (or
    /// time-to-failure). Used for the §5.2 default-configuration
    /// comparison, which measured uncapped runs.
    pub fn run_uncapped(&mut self, config: &Configuration) -> (f64, Outcome) {
        use rand::Rng;
        self.evaluations += 1;
        let report = match self.engine {
            SimEngine::Analytic => self.dry_run(config),
            SimEngine::Event { task_sigma } => {
                let seed = self.rng.gen::<u64>();
                let p = SparkParams::extract(&self.space, config);
                let plan = match &self.custom_plan {
                    Some(plan) => plan.at_fidelity(self.fidelity),
                    None => self.workload.plan_at(self.dataset, self.fidelity),
                };
                simulate_event(&self.cluster, &p, &plan, seed, task_sigma)
            }
        };
        let noise = if self.noise_sigma > 0.0 {
            lognormal(&mut self.rng, 0.0, self.noise_sigma)
        } else {
            1.0
        };
        (report.elapsed_s() * noise, report.outcome)
    }
}

impl Objective for SparkJob {
    fn set_fidelity(&mut self, fidelity: Fidelity) -> bool {
        self.fidelity = fidelity;
        true
    }

    fn fidelity(&self) -> Fidelity {
        self.fidelity
    }

    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        let fault = match &self.faults {
            Some(plan) => plan.for_eval(self.evaluations as u64),
            None => EvalFaults::CLEAN,
        };

        // A submit rejection bounces the application before any executor
        // starts: the run never happens, only the gateway round trip is
        // burned. The evaluation counter still advances so a retry draws
        // the *next* scheduled fault, not the same rejection forever.
        if fault.submit_failure {
            self.evaluations += 1;
            robotune_obs::incr("fault.submit_failure", 1);
            return Evaluation::transient_failure(Self::SUBMIT_FAILURE_S.min(cap_s));
        }

        let (t, outcome) = self.run_uncapped(config);
        // Executor losses (recompute), straggler storms and disk-pressure
        // spill amplification stretch the wall clock of runs that did
        // execute; crashes (OOM, launch failure) already burned their time.
        let slowdown = fault.slowdown();
        let t = t * slowdown;
        if slowdown > 1.0 {
            robotune_obs::record("fault.slowdown", slowdown);
            if fault.executor_losses > 0 {
                robotune_obs::incr("fault.executor_loss", fault.executor_losses as u64);
            }
            if fault.straggler_factor > 1.0 {
                robotune_obs::incr("fault.straggler", 1);
            }
            if fault.disk_amplification > 1.0 {
                robotune_obs::incr("fault.disk_pressure", 1);
            }
        }

        match outcome {
            Outcome::Completed(_) => {
                if fault.measurement_timeout {
                    // The run finished but the harness lost the timing —
                    // the burned wall clock is charged, the measurement is
                    // not trusted, and a retry may succeed.
                    robotune_obs::incr("fault.measurement_timeout", 1);
                    Evaluation::transient_failure(t.min(cap_s))
                } else if t <= cap_s {
                    Evaluation::completed(t)
                } else {
                    Evaluation::capped(cap_s)
                }
            }
            Outcome::Oom { .. } | Outcome::LaunchFailure => Evaluation::failed(t.min(cap_s)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::{names, spark_space};
    use robotune_space::{ParamValue, SearchSpace};

    fn tuned_config(space: &ConfigSpace) -> Configuration {
        let mut cfg = space.default_configuration();
        cfg.set(space.index_of(names::EXECUTOR_CORES).unwrap(), ParamValue::Int(8));
        cfg.set(space.index_of(names::EXECUTOR_MEMORY).unwrap(), ParamValue::Int(24 * 1024));
        cfg.set(space.index_of(names::EXECUTOR_INSTANCES).unwrap(), ParamValue::Int(20));
        cfg.set(space.index_of(names::DEFAULT_PARALLELISM).unwrap(), ParamValue::Int(400));
        cfg.set(space.index_of(names::SERIALIZER).unwrap(), ParamValue::Cat(1));
        cfg
    }

    #[test]
    fn noise_perturbs_but_does_not_bias() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let mut job = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D1, 7);
        let truth = job.dry_run(&cfg).elapsed_s();
        let times: Vec<f64> = (0..200).map(|_| job.run_uncapped(&cfg).0).collect();
        let mean = robotune_stats::mean(&times);
        assert!((mean / truth - 1.0).abs() < 0.03, "mean {mean} vs truth {truth}");
        // And noise actually varies.
        assert!(robotune_stats::std_dev(&times) > 0.0);
        assert_eq!(job.evaluations(), 200);
    }

    #[test]
    fn zero_noise_is_exactly_deterministic() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let mut job =
            SparkJob::new(space, Workload::PageRank, Dataset::D2, 1).with_noise(0.0);
        let a = job.run_uncapped(&cfg).0;
        let b = job.run_uncapped(&cfg).0;
        assert_eq!(a, b);
    }

    #[test]
    fn evaluate_caps_and_flags_failures() {
        let space = spark_space();
        // A config that cannot launch (task.cpus > cores) → failed fast.
        let mut bad = space.default_configuration();
        bad.set(space.index_of("spark.task.cpus").unwrap(), ParamValue::Int(2));
        let mut job = SparkJob::new(space.clone(), Workload::PageRank, Dataset::D1, 2);
        let e = job.evaluate(&bad, 480.0);
        assert!(e.failed);
        assert!(e.time_s <= 480.0);

        // KM on the (slow) in-range default: capped at whatever cap we pass.
        let default = space.default_configuration();
        let mut job = SparkJob::new(space, Workload::KMeans, Dataset::D1, 3);
        let e = job.evaluate(&default, 100.0);
        assert!(!e.completed && !e.failed);
        assert_eq!(e.time_s, 100.0);
    }

    #[test]
    fn good_config_completes_under_generous_cap() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        for w in crate::workload::ALL_WORKLOADS {
            let mut job = SparkJob::new(space.clone(), w, Dataset::D1, 4);
            let e = job.evaluate(&cfg, 480.0);
            assert!(e.completed, "{w:?} should complete: {e:?}");
        }
    }

    #[test]
    fn event_engine_tunes_end_to_end_and_replays() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let run = |seed: u64| -> Vec<f64> {
            let mut job = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D1, seed)
                .with_engine(SimEngine::Event { task_sigma: crate::event::DEFAULT_TASK_SIGMA });
            (0..5).map(|_| job.evaluate(&cfg, 480.0).time_s).collect()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "event engine must replay under a fixed seed");
        // Per-evaluation scheduler seeds differ, so times vary within a run.
        assert!(a.windows(2).any(|w| w[0] != w[1]));
        // And event-mode times sit near the analytic engine's.
        let mut analytic = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D1, 11);
        let t_analytic = analytic.evaluate(&cfg, 480.0).time_s;
        let mean_event = robotune_stats::mean(&a);
        assert!(
            (mean_event / t_analytic - 1.0).abs() < 0.3,
            "event {mean_event:.1}s vs analytic {t_analytic:.1}s"
        );
    }

    #[test]
    fn custom_plans_drive_the_simulation() {
        use crate::workload::{Plan, Source, Stage};
        let space = spark_space();
        // A tiny one-stage "word count": read 2 GiB, shuffle 200 MiB.
        let plan = Plan {
            load: Stage {
                name: "wordcount",
                input_mb: 2048.0,
                source: Source::Hdfs,
                shuffle_out_mb: 200.0,
                cpu_per_mb: 0.002,
                output_mb: 50.0,
            },
            iter: None,
            iterations: 0,
            finish: None,
            cache_mb: 0.0,
            balance_sensitivity: 0.2,
            recompute_cpu_per_mb: 0.0,
            object_factor: 0.5,
            iter_partitions_by_parallelism: false,
            iter_fetches_over_network: false,
            hdfs_partition_mb: crate::sim::consts::HDFS_BLOCK_MB,
        };
        let job = SparkJob::new(space.clone(), Workload::TeraSort, Dataset::D1, 8)
            .with_custom_plan(plan);
        let cfg = tuned_config(&space);
        let report = job.dry_run(&cfg);
        let t_custom = report.elapsed_s();
        // The custom plan is far lighter than TeraSort-D1.
        let t_ts = SparkJob::new(space, Workload::TeraSort, Dataset::D1, 8)
            .dry_run(&cfg)
            .elapsed_s();
        assert!(t_custom < t_ts, "custom {t_custom:.1}s vs TS {t_ts:.1}s");
        assert_eq!(report.stages.len(), 1);
        assert_eq!(report.stages[0].name, "wordcount");
    }

    #[test]
    fn fault_plan_replays_identically_for_the_same_seed() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let run = |job_seed: u64, plan_seed: u64| -> Vec<(f64, bool, bool)> {
            let plan = FaultPlan::from_profile(robotune_faults::FaultProfile::Hostile, plan_seed);
            let mut job = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D1, job_seed)
                .with_faults(plan);
            (0..30)
                .map(|_| {
                    let e = job.evaluate(&cfg, 480.0);
                    (e.time_s, e.completed, e.failed)
                })
                .collect()
        };
        assert_eq!(run(9, 77), run(9, 77));
        assert_ne!(run(9, 77), run(9, 78), "different plan seeds must differ");
    }

    #[test]
    fn hostile_faults_perturb_but_never_panic() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let plan = FaultPlan::from_profile(robotune_faults::FaultProfile::Hostile, 5);
        let mut job =
            SparkJob::new(space.clone(), Workload::PageRank, Dataset::D1, 5).with_faults(plan);
        let mut transients = 0;
        let mut slowed = 0;
        let clean = SparkJob::new(space, Workload::PageRank, Dataset::D1, 5)
            .dry_run(&cfg)
            .elapsed_s();
        for _ in 0..60 {
            let e = job.evaluate(&cfg, 480.0);
            assert!(e.time_s.is_finite() && e.time_s >= 0.0);
            if e.failed && e.transient {
                transients += 1;
            }
            if e.completed && e.time_s > clean * 1.3 {
                slowed += 1;
            }
        }
        assert_eq!(job.evaluations(), 60, "every evaluation must be counted");
        assert!(transients > 0, "hostile profile should produce transient failures");
        assert!(slowed > 0, "hostile profile should produce visible slowdowns");
    }

    #[test]
    fn submit_failures_burn_only_the_gateway_round_trip() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        // A plan that always rejects the submit.
        let cfgf = robotune_faults::FaultConfig {
            submit_failure_p: 1.0,
            ..robotune_faults::FaultConfig::NONE
        };
        let mut job = SparkJob::new(space, Workload::KMeans, Dataset::D1, 6)
            .with_faults(FaultPlan::new(cfgf, 1));
        let e = job.evaluate(&cfg, 480.0);
        assert!(e.failed && e.transient && !e.completed);
        assert_eq!(e.time_s, SparkJob::SUBMIT_FAILURE_S);
        assert_eq!(job.evaluations(), 1);
    }

    #[test]
    fn none_profile_matches_the_unfaulted_job_exactly() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let plan = FaultPlan::from_profile(robotune_faults::FaultProfile::None, 3);
        let mut faulted =
            SparkJob::new(space.clone(), Workload::TeraSort, Dataset::D1, 12).with_faults(plan);
        let mut clean = SparkJob::new(space, Workload::TeraSort, Dataset::D1, 12);
        for _ in 0..10 {
            assert_eq!(faulted.evaluate(&cfg, 480.0), clean.evaluate(&cfg, 480.0));
        }
    }

    #[test]
    fn fidelity_cuts_cost_roughly_proportionally() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        for w in crate::workload::ALL_WORKLOADS {
            let full = SparkJob::new(space.clone(), w, Dataset::D2, 1)
                .dry_run(&cfg)
                .elapsed_s();
            let sixteenth = SparkJob::new(space.clone(), w, Dataset::D2, 1)
                .with_fidelity(Fidelity::new(1.0 / 16.0).unwrap())
                .dry_run(&cfg)
                .elapsed_s();
            // Fixed overheads (app startup, scheduling) don't shrink, so the
            // ratio lands between the data fraction and ~1/2.
            let ratio = sixteenth / full;
            assert!(
                ratio > 1.0 / 32.0 && ratio < 0.5,
                "{w:?}: 1/16 fidelity ratio {ratio:.3} (full {full:.1}s, sub {sixteenth:.1}s)"
            );
        }
    }

    #[test]
    fn fidelity_switching_preserves_the_noise_and_fault_streams() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let half = Fidelity::new(0.5).unwrap();
        // Stream A: evaluate twice at FULL. Stream B: one half-fidelity
        // probe first, then FULL. The shared noise RNG must hand the same
        // multiplier to evaluation #2 either way.
        let plan = || FaultPlan::from_profile(robotune_faults::FaultProfile::Hostile, 21);
        let mut a = SparkJob::new(space.clone(), Workload::PageRank, Dataset::D1, 13)
            .with_faults(plan());
        let mut b = SparkJob::new(space.clone(), Workload::PageRank, Dataset::D1, 13)
            .with_faults(plan());
        let _ = a.evaluate(&cfg, 480.0);
        assert!(b.set_fidelity(half));
        assert_eq!(b.fidelity(), half);
        let _ = b.evaluate(&cfg, 480.0);
        assert!(b.set_fidelity(Fidelity::FULL));
        assert_eq!(a.evaluate(&cfg, 480.0), b.evaluate(&cfg, 480.0));
    }

    #[test]
    fn full_fidelity_job_is_bit_identical_to_the_default_path() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let mut plain = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D3, 17);
        let mut tagged = SparkJob::new(space.clone(), Workload::KMeans, Dataset::D3, 17)
            .with_fidelity(Fidelity::FULL);
        for _ in 0..5 {
            assert_eq!(plain.evaluate(&cfg, 480.0), tagged.evaluate(&cfg, 480.0));
        }
    }

    #[test]
    fn custom_plans_scale_with_fidelity_too() {
        let space = spark_space();
        let cfg = tuned_config(&space);
        let plan = Workload::TeraSort.plan(Dataset::D1);
        let full = SparkJob::new(space.clone(), Workload::TeraSort, Dataset::D1, 8)
            .with_custom_plan(plan.clone())
            .dry_run(&cfg)
            .elapsed_s();
        let quarter = SparkJob::new(space, Workload::TeraSort, Dataset::D1, 8)
            .with_custom_plan(plan)
            .with_fidelity(Fidelity::new(0.25).unwrap())
            .dry_run(&cfg)
            .elapsed_s();
        assert!(quarter < full, "quarter {quarter:.1}s vs full {full:.1}s");
    }

    #[test]
    fn same_seed_reproduces_the_whole_evaluation_stream() {
        let space = spark_space();
        use rand::Rng;
        let mut point_rng = robotune_stats::rng_from_seed(5);
        let points: Vec<Vec<f64>> = (0..10)
            .map(|_| (0..space.dim()).map(|_| point_rng.gen::<f64>()).collect())
            .collect();
        let stream = |seed: u64| -> Vec<f64> {
            let mut job = SparkJob::new(space.clone(), Workload::TeraSort, Dataset::D1, seed);
            points
                .iter()
                .map(|p| job.evaluate(&space.decode(p), 480.0).time_s)
                .collect()
        };
        assert_eq!(stream(42), stream(42));
    }
}
