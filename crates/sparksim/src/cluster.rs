//! The hardware model.

/// A homogeneous worker cluster (the master node only runs the driver and
/// is not modelled as a compute resource).
#[derive(Debug, Clone, PartialEq)]
pub struct Cluster {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Physical cores per worker.
    pub cores_per_node: usize,
    /// RAM per worker in MiB.
    pub memory_per_node_mb: f64,
    /// RAM reserved for the OS and daemons per worker, MiB.
    pub reserved_memory_mb: f64,
    /// Sustained sequential disk bandwidth per worker, MiB/s
    /// (7200-RPM spinning disk in the paper's testbed).
    pub disk_mbps: f64,
    /// Effective page-cache read bandwidth per worker, MiB/s, used when a
    /// dataset that was recently read still fits in free RAM.
    pub page_cache_mbps: f64,
    /// Network bandwidth per worker, MiB/s (10 GbE ≈ 1150 MiB/s usable).
    pub network_mbps: f64,
}

impl Cluster {
    /// The paper's NoleLand testbed: 5 workers × (32 cores, 192 GB RAM,
    /// 2 TB 7200-RPM disk, 10 GbE).
    pub fn noleland() -> Self {
        Cluster {
            nodes: 5,
            cores_per_node: 32,
            memory_per_node_mb: 192.0 * 1024.0,
            reserved_memory_mb: 4.0 * 1024.0,
            disk_mbps: 140.0,
            page_cache_mbps: 2500.0,
            network_mbps: 1150.0,
        }
    }

    /// Total worker cores.
    pub fn total_cores(&self) -> usize {
        self.nodes * self.cores_per_node
    }

    /// RAM available to executors per worker, MiB.
    pub fn usable_memory_per_node_mb(&self) -> f64 {
        self.memory_per_node_mb - self.reserved_memory_mb
    }

    /// Aggregate HDFS read bandwidth, MiB/s: blocks are replicated across
    /// all workers, so reads are limited by the lesser of all disks
    /// combined and the readers' network intake.
    pub fn hdfs_read_mbps(&self, reader_nodes: usize) -> f64 {
        let disks = self.nodes as f64 * self.disk_mbps;
        let net = reader_nodes.min(self.nodes) as f64 * self.network_mbps;
        disks.min(net).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noleland_matches_the_paper() {
        let c = Cluster::noleland();
        // §5.1: "a total of 192 cores and 1152 GB memory" counting the
        // master; the 5 workers contribute 160 cores / 960 GB.
        assert_eq!(c.total_cores(), 160);
        assert_eq!(c.nodes, 5);
        assert!((c.memory_per_node_mb - 196_608.0).abs() < 1e-9);
    }

    #[test]
    fn hdfs_bandwidth_is_disk_bound_for_many_readers() {
        let c = Cluster::noleland();
        // All five nodes reading: 5 disks = 700 MiB/s < 5 NICs.
        assert!((c.hdfs_read_mbps(5) - 700.0).abs() < 1e-9);
        // A single reader node is NIC-bound at 700 vs 1150 → still disk.
        assert!((c.hdfs_read_mbps(1) - 700.0).abs() < 1e-9);
    }

    #[test]
    fn usable_memory_excludes_reservation() {
        let c = Cluster::noleland();
        assert!(c.usable_memory_per_node_mb() < c.memory_per_node_mb);
        assert!(c.usable_memory_per_node_mb() > 180.0 * 1024.0);
    }
}
