//! An analytical Spark cluster simulator.
//!
//! The paper evaluates ROBOTune on a six-node Spark 2.4.1 cluster
//! (NoleLand: 2×16-core Xeon Gold 6130, 192 GB RAM, 10 GbE per node)
//! running five SparkBench workloads. This crate substitutes for that
//! testbed: it maps a full 44-parameter [`robotune_space::Configuration`]
//! to an execution time (or failure) through a physically-motivated cost
//! model, so that every tuner in the workspace optimises the same kind of
//! response surface the paper's tuners faced:
//!
//! * few genuinely impactful parameters hidden among 44 (executor sizing,
//!   parallelism, memory fractions, serializer, compression);
//! * multimodal, workload-dependent structure — narrow high-performance
//!   regions for PageRank/ConnectedComponents/LogisticRegression, broad
//!   plateaus for KMeans/TeraSort (the paper's §5.2 reading of Fig. 3);
//! * catastrophic cliffs: OOM failures at under-provisioned memory
//!   (§5.2's default-configuration OOMs), RDD-cache eviction thrash
//!   (§5.3's KMeans long tail), spill slowdowns;
//! * multiplicative lognormal noise standing in for shared-cluster
//!   interference.
//!
//! Modules: [`cluster`] (hardware model), [`params`] (typed decode of all
//! 44 parameters), [`workload`] (the five workload stage plans and Table-1
//! datasets), [`layout`] (executor packing), [`sim`] (the stage cost
//! model), and [`job`] ([`job::SparkJob`], the
//! [`robotune_tuners::Objective`] implementation tuners consume).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod cluster;
pub mod event;
pub mod job;
pub mod layout;
pub mod params;
pub mod sim;
pub mod workload;

pub use cluster::Cluster;
pub use robotune_faults::{EvalFaults, FaultConfig, FaultPlan, FaultProfile};
pub use event::simulate_event;
pub use job::{SimEngine, SparkJob};
pub use layout::ExecutorLayout;
pub use params::SparkParams;
pub use sim::{simulate, simulate_plan, Bottleneck, Outcome, RunReport};
pub use workload::{Dataset, Workload, ALL_WORKLOADS};
