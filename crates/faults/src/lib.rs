//! Deterministic cluster fault injection for the Spark simulator.
//!
//! Real Spark clusters fail in ways the paper's threshold-stopping (§5.3)
//! exists to survive: executors are preempted mid-stage and their shuffle
//! output recomputed, submissions bounce off a busy YARN RM, whole waves
//! straggle behind a noisy neighbour, disk pressure amplifies spills, and
//! sometimes the *measurement* times out even though the job finished.
//! This crate models all of those as a [`FaultPlan`]: a seedable schedule
//! that maps an evaluation index to the set of faults ([`EvalFaults`])
//! injected into that run.
//!
//! Two properties make the plans useful for tuner evaluation:
//!
//! * **Determinism** — the faults of evaluation `i` are a pure function of
//!   `(plan seed, i)`. Re-running a session with the same seed replays the
//!   identical fault schedule, and two different tuners handed the same
//!   plan face the same chaos at the same evaluation indices, regardless
//!   of which configurations they propose.
//! * **Independence** — draws are keyed per evaluation, not streamed from
//!   a shared RNG, so injecting a fault never perturbs the simulator's own
//!   noise stream.
//!
//! [`FaultProfile`] bundles the three calibrations the benchmark suite
//! replays (`none` / `transient` / `hostile`); [`FaultConfig`] exposes the
//! raw probabilities for custom chaos.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

use std::fmt;
use std::str::FromStr;

use rand::Rng;
use robotune_stats::rng_from_seed;

/// Probabilities and magnitudes of every injectable fault class.
///
/// All probabilities are per *evaluation attempt*. Magnitudes are
/// multiplicative factors on the simulated runtime, standing in for the
/// work the cluster redoes (lost executors), waits out (stragglers) or
/// grinds through (disk pressure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Probability that a submission bounces (YARN RM busy, AM container
    /// denied). Transient: a retry usually lands.
    pub submit_failure_p: f64,
    /// Probability that at least one executor is lost mid-stage.
    pub executor_loss_p: f64,
    /// Upper bound on executors lost in one run (≥ 1 when losses occur).
    pub max_executor_losses: u32,
    /// Runtime fraction redone per lost executor (lineage recompute +
    /// shuffle refetch).
    pub recompute_frac: f64,
    /// Probability of a straggler storm slowing the whole run.
    pub straggler_p: f64,
    /// Worst-case straggler slowdown factor (≥ 1); the injected factor is
    /// drawn uniformly from `[1, straggler_factor]`.
    pub straggler_factor: f64,
    /// Probability of cluster-wide disk pressure during the run.
    pub disk_pressure_p: f64,
    /// Worst-case spill-amplification factor under disk pressure (≥ 1).
    pub disk_amplification: f64,
    /// Probability that the measurement itself is lost (monitoring agent
    /// timeout) even though the run finished. Transient: the time was
    /// burned but no usable observation came back.
    pub measurement_timeout_p: f64,
}

impl FaultConfig {
    /// A configuration that injects nothing.
    pub const NONE: FaultConfig = FaultConfig {
        submit_failure_p: 0.0,
        executor_loss_p: 0.0,
        max_executor_losses: 0,
        recompute_frac: 0.0,
        straggler_p: 0.0,
        straggler_factor: 1.0,
        disk_pressure_p: 0.0,
        disk_amplification: 1.0,
        measurement_timeout_p: 0.0,
    };

    /// Occasional transient flakiness: the weather on a healthy but shared
    /// cluster.
    pub const TRANSIENT: FaultConfig = FaultConfig {
        submit_failure_p: 0.08,
        executor_loss_p: 0.06,
        max_executor_losses: 1,
        recompute_frac: 0.15,
        straggler_p: 0.10,
        straggler_factor: 1.4,
        disk_pressure_p: 0.05,
        disk_amplification: 1.3,
        measurement_timeout_p: 0.03,
    };

    /// A cluster having a very bad day: every fault class fires often and
    /// hard. Tuners must survive this without panicking or corrupting
    /// their accounting.
    pub const HOSTILE: FaultConfig = FaultConfig {
        submit_failure_p: 0.18,
        executor_loss_p: 0.25,
        max_executor_losses: 3,
        recompute_frac: 0.25,
        straggler_p: 0.30,
        straggler_factor: 2.0,
        disk_pressure_p: 0.20,
        disk_amplification: 1.8,
        measurement_timeout_p: 0.08,
    };

    /// Whether this configuration can ever inject anything.
    pub fn is_quiet(&self) -> bool {
        self.submit_failure_p <= 0.0
            && self.executor_loss_p <= 0.0
            && self.straggler_p <= 0.0
            && self.disk_pressure_p <= 0.0
            && self.measurement_timeout_p <= 0.0
    }

    /// Clamps every probability into `[0, 1]` and every factor to ≥ 1 (or
    /// ≥ 0 for fractions), so arbitrary fuzzed configs are always usable.
    pub fn sanitized(mut self) -> FaultConfig {
        let p = |v: f64| if v.is_finite() { v.clamp(0.0, 1.0) } else { 0.0 };
        let f = |v: f64| if v.is_finite() { v.max(1.0) } else { 1.0 };
        self.submit_failure_p = p(self.submit_failure_p);
        self.executor_loss_p = p(self.executor_loss_p);
        self.straggler_p = p(self.straggler_p);
        self.disk_pressure_p = p(self.disk_pressure_p);
        self.measurement_timeout_p = p(self.measurement_timeout_p);
        self.straggler_factor = f(self.straggler_factor);
        self.disk_amplification = f(self.disk_amplification);
        self.recompute_frac = if self.recompute_frac.is_finite() {
            self.recompute_frac.clamp(0.0, 2.0)
        } else {
            0.0
        };
        self
    }
}

/// The three named calibrations the benchmark suite replays
/// (`experiments --faults <profile>` and the CI fault matrix).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultProfile {
    /// No injected faults (the paper's original evaluation conditions).
    None,
    /// Occasional transient flakiness ([`FaultConfig::TRANSIENT`]).
    Transient,
    /// Frequent, compounding failures ([`FaultConfig::HOSTILE`]).
    Hostile,
}

impl FaultProfile {
    /// All profiles, for matrix-style iteration.
    pub const ALL: [FaultProfile; 3] =
        [FaultProfile::None, FaultProfile::Transient, FaultProfile::Hostile];

    /// The fault configuration this profile denotes.
    pub fn config(self) -> FaultConfig {
        match self {
            FaultProfile::None => FaultConfig::NONE,
            FaultProfile::Transient => FaultConfig::TRANSIENT,
            FaultProfile::Hostile => FaultConfig::HOSTILE,
        }
    }

    /// Lower-case profile name (`none`/`transient`/`hostile`).
    pub fn name(self) -> &'static str {
        match self {
            FaultProfile::None => "none",
            FaultProfile::Transient => "transient",
            FaultProfile::Hostile => "hostile",
        }
    }
}

impl fmt::Display for FaultProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a [`FaultProfile`] name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProfileError(String);

impl fmt::Display for ParseProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown fault profile {:?} (expected none|transient|hostile)", self.0)
    }
}

impl std::error::Error for ParseProfileError {}

impl FromStr for FaultProfile {
    type Err = ParseProfileError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" | "off" => Ok(FaultProfile::None),
            "transient" => Ok(FaultProfile::Transient),
            "hostile" => Ok(FaultProfile::Hostile),
            other => Err(ParseProfileError(other.to_string())),
        }
    }
}

/// The faults injected into one evaluation attempt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EvalFaults {
    /// The submission bounced before anything ran (transient).
    pub submit_failure: bool,
    /// Executors lost mid-run; each costs a recompute fraction.
    pub executor_losses: u32,
    /// Runtime fraction redone per lost executor.
    pub recompute_frac: f64,
    /// Straggler slowdown factor (1.0 = no storm).
    pub straggler_factor: f64,
    /// Spill amplification factor (1.0 = no disk pressure).
    pub disk_amplification: f64,
    /// The measurement was lost despite the run finishing (transient).
    pub measurement_timeout: bool,
}

impl EvalFaults {
    /// An attempt with nothing injected.
    pub const CLEAN: EvalFaults = EvalFaults {
        submit_failure: false,
        executor_losses: 0,
        recompute_frac: 0.0,
        straggler_factor: 1.0,
        disk_amplification: 1.0,
        measurement_timeout: false,
    };

    /// Whether this attempt is entirely fault-free.
    pub fn is_clean(&self) -> bool {
        !self.submit_failure
            && self.executor_losses == 0
            && self.straggler_factor <= 1.0
            && self.disk_amplification <= 1.0
            && !self.measurement_timeout
    }

    /// The combined runtime multiplier of the non-terminal faults
    /// (executor recompute × stragglers × disk pressure).
    pub fn slowdown(&self) -> f64 {
        (1.0 + self.executor_losses as f64 * self.recompute_frac)
            * self.straggler_factor
            * self.disk_amplification
    }
}

/// A deterministic, seedable fault schedule.
///
/// `for_eval(i)` is a pure function of `(seed, i)`: the schedule is fixed
/// up front, shared across tuners, and replayable. Construct one per
/// session (or per `(workload, dataset, rep)` cell) and hand it to
/// whatever executes evaluations — in this workspace,
/// `SparkJob::with_faults`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    config: FaultConfig,
    seed: u64,
}

/// SplitMix64 finaliser — decorrelates consecutive evaluation indices.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// Creates a plan from a raw configuration (sanitised) and a seed.
    pub fn new(config: FaultConfig, seed: u64) -> Self {
        FaultPlan { config: config.sanitized(), seed }
    }

    /// Creates a plan from a named profile and a seed.
    pub fn from_profile(profile: FaultProfile, seed: u64) -> Self {
        FaultPlan::new(profile.config(), seed)
    }

    /// The (sanitised) fault configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// The schedule seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The faults injected into evaluation attempt `index`.
    ///
    /// Pure: same `(seed, index)` ⇒ same faults, independent of call
    /// order and of any other RNG in the process.
    pub fn for_eval(&self, index: u64) -> EvalFaults {
        let c = &self.config;
        if c.is_quiet() {
            return EvalFaults::CLEAN;
        }
        // Key the per-evaluation stream on (seed, index) so schedules are
        // random-access and never perturb (or get perturbed by) the
        // simulator's own noise stream.
        let key = splitmix64(self.seed ^ splitmix64(index.wrapping_mul(0xa076_1d64_78bd_642f)));
        let mut rng = rng_from_seed(key);

        // Fixed draw order keeps every fault class's marginal distribution
        // independent of the others' probabilities.
        let submit_failure = rng.gen::<f64>() < c.submit_failure_p;
        let loss_roll = rng.gen::<f64>();
        let loss_extra = rng.gen::<f64>();
        let executor_losses = if loss_roll < c.executor_loss_p && c.max_executor_losses > 0 {
            1 + (loss_extra * c.max_executor_losses.saturating_sub(1) as f64).floor() as u32
        } else {
            0
        };
        let straggler_roll = rng.gen::<f64>();
        let straggler_mag = rng.gen::<f64>();
        let straggler_factor = if straggler_roll < c.straggler_p {
            1.0 + straggler_mag * (c.straggler_factor - 1.0)
        } else {
            1.0
        };
        let disk_roll = rng.gen::<f64>();
        let disk_mag = rng.gen::<f64>();
        let disk_amplification = if disk_roll < c.disk_pressure_p {
            1.0 + disk_mag * (c.disk_amplification - 1.0)
        } else {
            1.0
        };
        let measurement_timeout = rng.gen::<f64>() < c.measurement_timeout_p;

        EvalFaults {
            submit_failure,
            executor_losses,
            recompute_frac: c.recompute_frac,
            straggler_factor,
            disk_amplification,
            measurement_timeout,
        }
    }

    /// Expected fault counts over the first `n` evaluations — a cheap
    /// summary for reports and sanity tests.
    pub fn census(&self, n: u64) -> FaultCensus {
        let mut census = FaultCensus::default();
        for i in 0..n {
            let f = self.for_eval(i);
            census.attempts += 1;
            census.submit_failures += u64::from(f.submit_failure);
            census.executor_losses += u64::from(f.executor_losses);
            census.straggler_storms += u64::from(f.straggler_factor > 1.0);
            census.disk_pressure += u64::from(f.disk_amplification > 1.0);
            census.measurement_timeouts += u64::from(f.measurement_timeout);
        }
        census
    }
}

/// Fault counts over a window of a plan (see [`FaultPlan::census`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCensus {
    /// Evaluation attempts inspected.
    pub attempts: u64,
    /// Attempts whose submission bounced.
    pub submit_failures: u64,
    /// Total executors lost.
    pub executor_losses: u64,
    /// Attempts hit by a straggler storm.
    pub straggler_storms: u64,
    /// Attempts under disk pressure.
    pub disk_pressure: u64,
    /// Attempts whose measurement was lost.
    pub measurement_timeouts: u64,
}

impl FaultCensus {
    /// Total injected fault events.
    pub fn total(&self) -> u64 {
        self.submit_failures
            + self.executor_losses
            + self.straggler_storms
            + self.disk_pressure
            + self.measurement_timeouts
    }
}

/// Names of the telemetry metrics the fault-injection and retry paths
/// emit, for consumers that filter or document them (the flight
/// recorder, the service `metrics` verb, dashboards).
///
/// The emit sites live elsewhere — `fault.*` fires in the simulator when
/// a [`FaultPlan`] injects something, `retry.*` in the tuning pipeline's
/// retry layer as it recovers — but this crate owns the fault taxonomy,
/// so it owns the name inventory too.
pub mod telemetry {
    /// Prefix of every fault-injection metric.
    pub const FAULT_METRIC_PREFIX: &str = "fault.";
    /// Prefix of every retry-layer metric (recovery from injected faults).
    pub const RETRY_METRIC_PREFIX: &str = "retry.";

    /// Every `fault.*` metric an evaluation can emit, sorted.
    /// `fault.slowdown` is a histogram of injected runtime factors; the
    /// rest are counters keyed to [`super::EvalFaults`] fields.
    pub const FAULT_METRICS: [&str; 6] = [
        "fault.disk_pressure",
        "fault.executor_loss",
        "fault.measurement_timeout",
        "fault.slowdown",
        "fault.straggler",
        "fault.submit_failure",
    ];

    /// Every `retry.*` metric the retry layer can emit, sorted.
    /// `retry.backoff_s` is a histogram of backoff sleeps; the rest are
    /// counters.
    pub const RETRY_METRICS: [&str; 5] = [
        "retry.attempt",
        "retry.backoff_s",
        "retry.evals_retried",
        "retry.exhausted",
        "retry.recovered",
    ];

    /// Whether `name` belongs to the fault/retry metric families — the
    /// subset a failure post-mortem cares about first.
    pub fn is_fault_related(name: &str) -> bool {
        name.starts_with(FAULT_METRIC_PREFIX) || name.starts_with(RETRY_METRIC_PREFIX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_inventory_is_sorted_and_prefixed() {
        for w in telemetry::FAULT_METRICS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        for w in telemetry::RETRY_METRICS.windows(2) {
            assert!(w[0] < w[1], "{} !< {}", w[0], w[1]);
        }
        for name in telemetry::FAULT_METRICS.iter().chain(&telemetry::RETRY_METRICS) {
            assert!(telemetry::is_fault_related(name), "{name}");
        }
        assert!(!telemetry::is_fault_related("bo.suggest"));
        assert!(!telemetry::is_fault_related("faulty.metric"));
    }

    #[test]
    fn none_profile_is_always_clean() {
        let plan = FaultPlan::from_profile(FaultProfile::None, 7);
        for i in 0..200 {
            assert!(plan.for_eval(i).is_clean());
        }
        assert_eq!(plan.census(200).total(), 0);
    }

    #[test]
    fn schedules_are_deterministic_and_random_access() {
        let plan = FaultPlan::from_profile(FaultProfile::Hostile, 42);
        let forward: Vec<EvalFaults> = (0..50).map(|i| plan.for_eval(i)).collect();
        let backward: Vec<EvalFaults> = (0..50).rev().map(|i| plan.for_eval(i)).collect();
        for (i, f) in forward.iter().enumerate() {
            assert_eq!(*f, backward[49 - i], "eval {i} differs by access order");
            assert_eq!(*f, plan.for_eval(i as u64), "eval {i} not replayable");
        }
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = FaultPlan::from_profile(FaultProfile::Hostile, 1);
        let b = FaultPlan::from_profile(FaultProfile::Hostile, 2);
        let same = (0..100).filter(|&i| a.for_eval(i) == b.for_eval(i)).count();
        assert!(same < 100, "seeds 1 and 2 produce identical schedules");
    }

    #[test]
    fn hostile_rates_land_near_their_probabilities() {
        let plan = FaultPlan::from_profile(FaultProfile::Hostile, 3);
        let n = 4000;
        let census = plan.census(n);
        let rate = |c: u64| c as f64 / n as f64;
        assert!((rate(census.submit_failures) - 0.18).abs() < 0.03);
        assert!((rate(census.straggler_storms) - 0.30).abs() < 0.03);
        assert!((rate(census.disk_pressure) - 0.20).abs() < 0.03);
        assert!((rate(census.measurement_timeouts) - 0.08).abs() < 0.02);
        // Loss events fire on 25% of attempts with 1–3 executors each.
        let loss_rate = rate(census.executor_losses);
        assert!(loss_rate > 0.2 && loss_rate < 0.6, "loss rate {loss_rate}");
    }

    #[test]
    fn slowdown_composes_multiplicatively() {
        let f = EvalFaults {
            submit_failure: false,
            executor_losses: 2,
            recompute_frac: 0.25,
            straggler_factor: 1.5,
            disk_amplification: 1.2,
            measurement_timeout: false,
        };
        assert!((f.slowdown() - 1.5 * 1.5 * 1.2).abs() < 1e-12);
        assert_eq!(EvalFaults::CLEAN.slowdown(), 1.0);
    }

    #[test]
    fn magnitudes_stay_in_their_declared_ranges() {
        let plan = FaultPlan::from_profile(FaultProfile::Hostile, 9);
        for i in 0..500 {
            let f = plan.for_eval(i);
            assert!(f.straggler_factor >= 1.0 && f.straggler_factor <= 2.0);
            assert!(f.disk_amplification >= 1.0 && f.disk_amplification <= 1.8);
            assert!(f.executor_losses <= 3);
            assert!(f.slowdown().is_finite() && f.slowdown() >= 1.0);
        }
    }

    #[test]
    fn sanitize_tames_pathological_configs() {
        let wild = FaultConfig {
            submit_failure_p: f64::NAN,
            executor_loss_p: 7.0,
            max_executor_losses: 2,
            recompute_frac: -3.0,
            straggler_p: -0.5,
            straggler_factor: f64::INFINITY,
            disk_pressure_p: 2.0,
            disk_amplification: 0.1,
            measurement_timeout_p: 1.5,
        };
        let plan = FaultPlan::new(wild, 5);
        let c = plan.config();
        assert_eq!(c.submit_failure_p, 0.0);
        assert_eq!(c.executor_loss_p, 1.0);
        assert_eq!(c.recompute_frac, 0.0);
        assert_eq!(c.straggler_p, 0.0);
        assert_eq!(c.straggler_factor, 1.0);
        assert_eq!(c.disk_pressure_p, 1.0);
        assert_eq!(c.disk_amplification, 1.0);
        assert_eq!(c.measurement_timeout_p, 1.0);
        for i in 0..100 {
            let f = plan.for_eval(i);
            assert!(f.slowdown().is_finite());
        }
    }

    #[test]
    fn profiles_parse_and_display_round_trip() {
        for p in FaultProfile::ALL {
            assert_eq!(p.name().parse::<FaultProfile>(), Ok(p));
            assert_eq!(p.to_string(), p.name());
        }
        assert_eq!("HOSTILE".parse::<FaultProfile>(), Ok(FaultProfile::Hostile));
        assert_eq!("off".parse::<FaultProfile>(), Ok(FaultProfile::None));
        assert!("chaotic".parse::<FaultProfile>().is_err());
    }
}
