//! Uniform random sampling of the unit hypercube.

use rand::Rng;

/// Draws `n` points uniformly from `[0, 1)^dim`.
///
/// This is both the Random Search baseline's proposal distribution (§5.1)
/// and the initial-population generator of the Gunther baseline.
pub fn uniform<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    #[test]
    fn shape_and_range() {
        let mut rng = rng_from_seed(8);
        let pts = uniform(25, 7, &mut rng);
        assert_eq!(pts.len(), 25);
        assert!(pts.iter().all(|p| p.len() == 7));
        assert!(pts.iter().flatten().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn deterministic_under_seed() {
        assert_eq!(
            uniform(5, 3, &mut rng_from_seed(9)),
            uniform(5, 3, &mut rng_from_seed(9))
        );
    }
}
