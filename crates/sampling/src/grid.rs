//! Axis-aligned grids for response-surface rendering.

/// Builds an `nx × ny` grid over two chosen dimensions of a `dim`-
/// dimensional unit cube, holding every other coordinate at `fill`.
///
/// Points are returned row-major in `y`-then-`x` order:
/// `[(x0,y0), (x1,y0), …, (x0,y1), …]`. Used to evaluate the GP posterior
/// over the cores-vs-memory plane (paper Fig. 9).
///
/// # Panics
///
/// Panics if the two axes coincide or fall outside `dim`, or if either
/// resolution is zero.
pub fn grid_2d(dim: usize, axis_x: usize, axis_y: usize, nx: usize, ny: usize, fill: f64) -> Vec<Vec<f64>> {
    assert!(axis_x < dim && axis_y < dim, "grid axes out of range");
    assert_ne!(axis_x, axis_y, "grid axes must differ");
    assert!(nx > 0 && ny > 0, "grid resolution must be positive");
    let mut out = Vec::with_capacity(nx * ny);
    for iy in 0..ny {
        // Cell centres so decoded integer parameters hit distinct values.
        let y = (iy as f64 + 0.5) / ny as f64;
        for ix in 0..nx {
            let x = (ix as f64 + 0.5) / nx as f64;
            let mut p = vec![fill; dim];
            p[axis_x] = x;
            p[axis_y] = y;
            out.push(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_shape_and_order() {
        let g = grid_2d(4, 0, 2, 3, 2, 0.5);
        assert_eq!(g.len(), 6);
        // First row: y fixed at 0.25, x sweeping.
        assert_eq!(g[0][2], 0.25);
        assert_eq!(g[1][2], 0.25);
        assert_eq!(g[2][2], 0.25);
        assert_eq!(g[3][2], 0.75);
        assert!(g[0][0] < g[1][0] && g[1][0] < g[2][0]);
        // Untouched dims hold the fill value.
        assert!(g.iter().all(|p| p[1] == 0.5 && p[3] == 0.5));
    }

    #[test]
    #[should_panic(expected = "axes must differ")]
    fn rejects_equal_axes() {
        grid_2d(3, 1, 1, 2, 2, 0.5);
    }
}
