//! Latin Hypercube Sampling.
//!
//! For `M` samples, every dimension's `[0, 1)` range is split into `M`
//! equally probable intervals and each interval contributes exactly one
//! sample (paper §3.2, after McKay et al.). This stratification is what
//! lets the paper initialise both the Random-Forests selector and the GP
//! model from far fewer runs than random sampling would need.

use rand::seq::SliceRandom;
use rand::Rng;

/// Number of candidate designs [`lhs_maximin`] scores by default. Chosen so
/// that generating 100 samples in 44 dimensions stays well under a
/// millisecond while still reliably improving the minimum pairwise distance
/// over a single draw.
pub const DEFAULT_MAXIMIN_CANDIDATES: usize = 16;

/// Classic LHS: one uniformly random point inside each stratum, with an
/// independent random stratum permutation per dimension.
///
/// Returns `n` points of dimension `dim`.
pub fn lhs<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    lhs_impl(n, dim, rng, false)
}

/// Centred LHS: the midpoint of each stratum instead of a random offset.
/// Deterministic up to the per-dimension permutations; useful in tests.
pub fn lhs_centered<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R) -> Vec<Vec<f64>> {
    lhs_impl(n, dim, rng, true)
}

fn lhs_impl<R: Rng + ?Sized>(n: usize, dim: usize, rng: &mut R, centered: bool) -> Vec<Vec<f64>> {
    if n == 0 || dim == 0 {
        return vec![Vec::new(); n];
    }
    let mut points = vec![vec![0.0; dim]; n];
    let mut strata: Vec<usize> = (0..n).collect();
    for d in 0..dim {
        strata.shuffle(rng);
        for (i, point) in points.iter_mut().enumerate() {
            let offset = if centered { 0.5 } else { rng.gen::<f64>() };
            point[d] = (strata[i] as f64 + offset) / n as f64;
        }
    }
    points
}

/// Space-filling LHS: draws `candidates` independent classic designs and
/// keeps the one with the largest minimum pairwise squared distance.
///
/// This is the pragmatic maximin construction space-filling DOE libraries
/// (like the DOEPY generator the paper used) apply; a full simulated-
/// annealing optimisation buys little at our sample counts.
pub fn lhs_maximin<R: Rng + ?Sized>(
    n: usize,
    dim: usize,
    rng: &mut R,
    candidates: usize,
) -> Vec<Vec<f64>> {
    assert!(candidates > 0, "need at least one candidate design");
    let mut best: (f64, Vec<Vec<f64>>) = {
        let design = lhs(n, dim, rng);
        (min_pairwise_sq_dist(&design), design)
    };
    for _ in 1..candidates {
        let design = lhs(n, dim, rng);
        let score = min_pairwise_sq_dist(&design);
        if score > best.0 {
            best = (score, design);
        }
    }
    best.1
}

/// Minimum squared Euclidean distance over all point pairs (`+∞` for fewer
/// than two points).
pub fn min_pairwise_sq_dist(points: &[Vec<f64>]) -> f64 {
    let mut min = f64::INFINITY;
    for i in 0..points.len() {
        for j in i + 1..points.len() {
            let d: f64 = points[i]
                .iter()
                .zip(&points[j])
                .map(|(a, b)| (a - b) * (a - b))
                .sum();
            min = min.min(d);
        }
    }
    min
}

/// Checks the Latin property: along every dimension, each of the `n`
/// strata holds exactly one point. Exposed for tests and debugging.
pub fn is_latin(points: &[Vec<f64>]) -> bool {
    let n = points.len();
    if n == 0 {
        return true;
    }
    let dim = points[0].len();
    for d in 0..dim {
        let mut seen = vec![false; n];
        for p in points {
            let stratum = ((p[d] * n as f64).floor() as usize).min(n - 1);
            if seen[stratum] {
                return false;
            }
            seen[stratum] = true;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    #[test]
    fn latin_property_holds() {
        let mut rng = rng_from_seed(10);
        for (n, dim) in [(1usize, 1usize), (5, 2), (20, 44), (100, 44), (97, 7)] {
            let pts = lhs(n, dim, &mut rng);
            assert_eq!(pts.len(), n);
            assert!(pts.iter().all(|p| p.len() == dim));
            assert!(is_latin(&pts), "latin property violated for n={n} dim={dim}");
            assert!(pts.iter().flatten().all(|&x| (0.0..1.0).contains(&x)));
        }
    }

    #[test]
    fn centered_points_sit_on_midpoints() {
        let mut rng = rng_from_seed(3);
        let n = 8;
        let pts = lhs_centered(n, 3, &mut rng);
        assert!(is_latin(&pts));
        for p in &pts {
            for &x in p {
                let scaled = x * n as f64 - 0.5;
                assert!((scaled - scaled.round()).abs() < 1e-9, "x = {x}");
            }
        }
    }

    #[test]
    fn maximin_never_worse_than_its_candidates_on_average() {
        let mut rng = rng_from_seed(4);
        let n = 30;
        let dim = 5;
        let mm = lhs_maximin(n, dim, &mut rng, 16);
        assert!(is_latin(&mm));
        // Compare against the mean single-shot score.
        let mut single = 0.0;
        let trials = 20;
        for _ in 0..trials {
            single += min_pairwise_sq_dist(&lhs(n, dim, &mut rng));
        }
        single /= trials as f64;
        assert!(
            min_pairwise_sq_dist(&mm) >= single,
            "maximin should beat the average random design"
        );
    }

    #[test]
    fn zero_samples_and_zero_dims() {
        let mut rng = rng_from_seed(5);
        assert!(lhs(0, 3, &mut rng).is_empty());
        let pts = lhs(4, 0, &mut rng);
        assert_eq!(pts.len(), 4);
        assert!(pts.iter().all(|p| p.is_empty()));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = lhs(10, 4, &mut rng_from_seed(77));
        let b = lhs(10, 4, &mut rng_from_seed(77));
        assert_eq!(a, b);
    }

    #[test]
    fn marginals_are_uniformish() {
        // The mean of each coordinate over an LHS design is 0.5 ± O(1/n)
        // by construction — much tighter than random sampling.
        let mut rng = rng_from_seed(6);
        let n = 200;
        let pts = lhs(n, 3, &mut rng);
        for d in 0..3 {
            let mean: f64 = pts.iter().map(|p| p[d]).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 0.01, "dimension {d} mean {mean}");
        }
    }
}
