//! Sampling strategies over configuration spaces.
//!
//! All samplers emit points in the unit hypercube `[0, 1)^dim`; decoding to
//! concrete [`robotune_space::Configuration`]s goes through a
//! [`robotune_space::SearchSpace`]. Three families are provided:
//!
//! * [`lhs`] — Latin Hypercube Sampling, the paper's workhorse (§3.2):
//!   classic, centred, and a *maximin* space-filling variant that plays the
//!   role of the DOEPY generator the original implementation used;
//! * [`random`] — plain uniform sampling, both a baseline tuner on its own
//!   (§5.1, "Random Search") and the initialisation of Gunther;
//! * [`grid`] — evenly spaced axis grids used to render response surfaces
//!   (paper Fig. 9).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod grid;
pub mod lhs;
pub mod random;

pub use grid::grid_2d;
pub use lhs::{lhs, lhs_centered, lhs_maximin};
pub use random::uniform;

use rand::Rng;
use robotune_space::{Configuration, SearchSpace};

/// Draws `n` maximin-LHS points from `space` and decodes them.
///
/// This is the convenience entry point most callers want: "give me `n`
/// well-spread valid configurations".
pub fn lhs_configs<S: SearchSpace + ?Sized, R: Rng + ?Sized>(
    space: &S,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    lhs_maximin(n, space.dim(), rng, lhs::DEFAULT_MAXIMIN_CANDIDATES)
        .iter()
        .map(|p| space.decode(p))
        .collect()
}

/// Draws `n` uniform-random configurations from `space`.
pub fn random_configs<S: SearchSpace + ?Sized, R: Rng + ?Sized>(
    space: &S,
    n: usize,
    rng: &mut R,
) -> Vec<Configuration> {
    uniform(n, space.dim(), rng)
        .iter()
        .map(|p| space.decode(p))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;
    use robotune_stats::rng_from_seed;

    #[test]
    fn lhs_configs_are_valid_and_distinct() {
        let space = spark_space();
        let mut rng = rng_from_seed(1);
        let configs = lhs_configs(&space, 20, &mut rng);
        assert_eq!(configs.len(), 20);
        for c in &configs {
            assert!(space.validate(c).is_ok());
        }
        // With 44 dimensions, collisions are essentially impossible.
        for i in 0..configs.len() {
            for j in i + 1..configs.len() {
                assert_ne!(configs[i], configs[j]);
            }
        }
    }

    #[test]
    fn random_configs_are_valid() {
        let space = spark_space();
        let mut rng = rng_from_seed(2);
        for c in random_configs(&space, 50, &mut rng) {
            assert!(space.validate(&c).is_ok());
        }
    }
}
