//! Acquisition functions in minimisation form.
//!
//! With `d = f(x⁺) − µ(x) − ξ` (paper Eqs. 2–4):
//!
//! * **PI**: `Φ(d/σ)` — probability the point improves on the incumbent;
//! * **EI**: `d·Φ(d/σ) + σ·φ(d/σ)` — expected magnitude of improvement;
//! * **LCB**: select the point minimising `µ − κσ`; scored here as
//!   `−(µ − κσ)` so that *larger is better* uniformly across all three.

use robotune_stats::{norm_cdf, norm_pdf};

/// The three portfolio members.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AcquisitionKind {
    /// Probability of improvement.
    Pi,
    /// Expected improvement.
    Ei,
    /// Lower confidence bound.
    Lcb,
}

/// All portfolio members in canonical order (PI, EI, LCB).
pub const ALL_ACQUISITIONS: [AcquisitionKind; 3] =
    [AcquisitionKind::Pi, AcquisitionKind::Ei, AcquisitionKind::Lcb];

impl AcquisitionKind {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            AcquisitionKind::Pi => "PI",
            AcquisitionKind::Ei => "EI",
            AcquisitionKind::Lcb => "LCB",
        }
    }

    /// Higher-is-better acquisition score at a point with posterior mean
    /// `mu` and standard deviation `sigma`, given the incumbent best
    /// (lowest) observed value `best` and the exploration knobs `xi`
    /// (PI/EI) and `kappa` (LCB).
    pub fn score(self, mu: f64, sigma: f64, best: f64, xi: f64, kappa: f64) -> f64 {
        debug_assert!(sigma >= 0.0, "negative sigma");
        match self {
            AcquisitionKind::Pi => {
                if sigma <= 0.0 {
                    // Degenerate posterior: improvement is certain iff the
                    // mean already beats the incumbent.
                    return if best - mu - xi > 0.0 { 1.0 } else { 0.0 };
                }
                let d = best - mu - xi;
                norm_cdf(d / sigma)
            }
            AcquisitionKind::Ei => {
                if sigma <= 0.0 {
                    return 0.0; // Eq. 3's σ = 0 branch.
                }
                let d = best - mu - xi;
                let z = d / sigma;
                // EI is mathematically non-negative; the clamp absorbs the
                // ~1e-7 tail error of the erf approximation at extreme z.
                (d * norm_cdf(z) + sigma * norm_pdf(z)).max(0.0)
            }
            AcquisitionKind::Lcb => -(mu - kappa * sigma),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const XI: f64 = 0.01;
    const KAPPA: f64 = 1.96;

    #[test]
    fn ei_zero_at_zero_sigma() {
        assert_eq!(AcquisitionKind::Ei.score(1.0, 0.0, 5.0, XI, KAPPA), 0.0);
    }

    #[test]
    fn ei_positive_whenever_sigma_positive() {
        // Even a point with a worse mean has some expected improvement.
        let v = AcquisitionKind::Ei.score(10.0, 1.0, 5.0, XI, KAPPA);
        assert!(v > 0.0);
        assert!(v < 1e-3, "improvement should be tiny, got {v}");
    }

    #[test]
    fn ei_prefers_lower_mean_at_equal_sigma() {
        let lo = AcquisitionKind::Ei.score(3.0, 1.0, 5.0, XI, KAPPA);
        let hi = AcquisitionKind::Ei.score(4.0, 1.0, 5.0, XI, KAPPA);
        assert!(lo > hi);
    }

    #[test]
    fn ei_prefers_higher_sigma_at_equal_mean() {
        let narrow = AcquisitionKind::Ei.score(5.0, 0.1, 5.0, XI, KAPPA);
        let wide = AcquisitionKind::Ei.score(5.0, 2.0, 5.0, XI, KAPPA);
        assert!(wide > narrow);
    }

    #[test]
    fn pi_is_a_probability() {
        for (mu, sigma) in [(0.0, 1.0), (10.0, 0.5), (-3.0, 2.0)] {
            let p = AcquisitionKind::Pi.score(mu, sigma, 1.0, XI, KAPPA);
            assert!((0.0..=1.0).contains(&p), "PI out of range: {p}");
        }
    }

    #[test]
    fn pi_half_when_mean_equals_incumbent_minus_xi() {
        let p = AcquisitionKind::Pi.score(5.0 - XI, 1.0, 5.0, XI, KAPPA);
        assert!((p - 0.5).abs() < 1e-9);
    }

    #[test]
    fn pi_degenerate_sigma_is_an_indicator() {
        assert_eq!(AcquisitionKind::Pi.score(1.0, 0.0, 5.0, XI, KAPPA), 1.0);
        assert_eq!(AcquisitionKind::Pi.score(9.0, 0.0, 5.0, XI, KAPPA), 0.0);
    }

    #[test]
    fn lcb_balances_mean_and_uncertainty() {
        // Exploit: low mean, no uncertainty.
        let exploit = AcquisitionKind::Lcb.score(1.0, 0.0, 0.0, XI, KAPPA);
        // Explore: mediocre mean, huge uncertainty — wins under κ = 1.96.
        let explore = AcquisitionKind::Lcb.score(2.0, 1.0, 0.0, XI, KAPPA);
        assert!(explore > exploit);
        // But tame uncertainty loses to a clearly better mean.
        let tame = AcquisitionKind::Lcb.score(2.0, 0.1, 0.0, XI, KAPPA);
        assert!(exploit > tame);
    }

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = ALL_ACQUISITIONS.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["PI", "EI", "LCB"]);
    }
}
