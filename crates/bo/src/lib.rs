//! Bayesian optimisation with a GP-Hedge acquisition portfolio.
//!
//! Implements the paper's BO engine (§3.4, Algorithm 1) as a reusable
//! ask/tell component over the unit hypercube:
//!
//! * [`acquisition`] — PI, EI and LCB in their minimisation forms
//!   (Eqs. 2–4, with ξ = 0.01 and κ = 1.96 defaults from §4);
//! * [`hedge`] — the adaptive portfolio of Hoffman et al. 2011 that picks
//!   one acquisition per iteration with probability proportional to its
//!   accumulated gains;
//! * [`optimize`] — acquisition maximisation via random multi-start plus
//!   pattern-search refinement (the role L-BFGS-B plays in the original);
//! * [`engine`] — [`engine::BoEngine`], the ask/tell loop: fit GP →
//!   nominate per-acquisition candidates → Hedge-select → evaluate →
//!   update gains.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod acquisition;
pub mod engine;
pub mod error;
pub mod hedge;
pub mod optimize;

pub use acquisition::{AcquisitionKind, ALL_ACQUISITIONS};
pub use engine::{BoEngine, BoOptions};
pub use error::EngineError;
pub use hedge::Hedge;
pub use optimize::maximize_acquisition;
