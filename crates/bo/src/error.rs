//! Typed errors for the ask/tell BO engine.
//!
//! The engine sits at the heart of the tuning loop, where a panic aborts a
//! whole session. Anything a caller can plausibly get wrong — dimension
//! mismatches, non-finite objective values from failed cluster runs — is
//! reported as an [`EngineError`] so the session can censor or retry the
//! observation instead of dying.

/// Why an observation could not be recorded.
#[derive(Debug, Clone, PartialEq)]
pub enum EngineError {
    /// The observed point's dimension does not match the engine's.
    DimensionMismatch {
        /// Dimension the engine was constructed with.
        expected: usize,
        /// Dimension of the offending point.
        got: usize,
    },
    /// The objective value is NaN or infinite. Failed runs must be mapped
    /// to a finite penalty first — see `BoEngine::observe_penalized`.
    NonFiniteObservation(f64),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::DimensionMismatch { expected, got } => {
                write!(f, "observation dimension mismatch: expected {expected}, got {got}")
            }
            EngineError::NonFiniteObservation(y) => {
                write!(f, "objective must be finite (got {y}); censor failures to a penalty")
            }
        }
    }
}

impl std::error::Error for EngineError {}
