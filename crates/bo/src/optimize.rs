//! Acquisition maximisation over the unit hypercube.
//!
//! The original implementation hands this to L-BFGS-B; we use the equally
//! standard derivative-free recipe: score a batch of random candidates,
//! then refine the best few with a coordinate pattern search (step halving
//! with box clamping). At BO's dimensionalities (≤ ~10 after parameter
//! selection) this finds acquisition optima reliably and cheaply.

use rand::Rng;

/// Options for [`maximize_acquisition`].
#[derive(Debug, Clone)]
pub struct OptimizeOptions {
    /// Random candidates scored in the global phase.
    pub candidates: usize,
    /// How many of the top candidates get local refinement.
    pub refine_top: usize,
    /// Initial pattern-search step (unit-cube units).
    pub initial_step: f64,
    /// Step halvings before the local search stops.
    pub halvings: usize,
}

impl Default for OptimizeOptions {
    fn default() -> Self {
        OptimizeOptions {
            candidates: 256,
            refine_top: 3,
            initial_step: 0.1,
            halvings: 6,
        }
    }
}

/// A scorer the maximiser can query one point at a time (local
/// refinement) or a whole candidate batch at once (global phase).
trait AcqScorer {
    fn score_batch(&mut self, batch: &[Vec<f64>]) -> Vec<f64>;
    fn score_one(&mut self, p: &[f64]) -> f64;
}

struct Pointwise<F>(F);

impl<F: FnMut(&[f64]) -> f64> AcqScorer for Pointwise<F> {
    fn score_batch(&mut self, batch: &[Vec<f64>]) -> Vec<f64> {
        batch.iter().map(|p| (self.0)(p)).collect()
    }

    fn score_one(&mut self, p: &[f64]) -> f64 {
        (self.0)(p)
    }
}

struct Batched<B, F> {
    batch: B,
    one: F,
}

impl<B, F> AcqScorer for Batched<B, F>
where
    B: FnMut(&[Vec<f64>]) -> Vec<f64>,
    F: FnMut(&[f64]) -> f64,
{
    fn score_batch(&mut self, batch: &[Vec<f64>]) -> Vec<f64> {
        (self.batch)(batch)
    }

    fn score_one(&mut self, p: &[f64]) -> f64 {
        (self.one)(p)
    }
}

/// Maximises `score` over `[0, 1]^dim`; returns the best point found.
///
/// # Panics
///
/// Panics if `dim == 0` or the candidate budget is zero.
pub fn maximize_acquisition<F, R>(
    score: F,
    dim: usize,
    opts: &OptimizeOptions,
    rng: &mut R,
) -> Vec<f64>
where
    F: FnMut(&[f64]) -> f64,
    R: Rng + ?Sized,
{
    maximize_with(&mut Pointwise(score), dim, opts, rng)
}

/// Like [`maximize_acquisition`], but the global phase's candidate batch
/// is scored through `batch_score` in one call — the hook for GP
/// [`predict_batch`](robotune_gp::GpModel::predict_batch)-backed scoring.
/// `score` remains the pointwise scorer the local pattern search uses.
///
/// When `batch_score` returns, element-for-element, exactly what `score`
/// would return on each candidate, the result is bit-identical to
/// [`maximize_acquisition`] with the same RNG: candidates are drawn in the
/// same order and scoring consumes no randomness.
///
/// # Panics
///
/// Panics if `dim == 0`, the candidate budget is zero, or `batch_score`
/// returns a vector of the wrong length.
pub fn maximize_acquisition_batch<B, F, R>(
    batch_score: B,
    score: F,
    dim: usize,
    opts: &OptimizeOptions,
    rng: &mut R,
) -> Vec<f64>
where
    B: FnMut(&[Vec<f64>]) -> Vec<f64>,
    F: FnMut(&[f64]) -> f64,
    R: Rng + ?Sized,
{
    maximize_with(
        &mut Batched {
            batch: batch_score,
            one: score,
        },
        dim,
        opts,
        rng,
    )
}

fn maximize_with<S, R>(scorer: &mut S, dim: usize, opts: &OptimizeOptions, rng: &mut R) -> Vec<f64>
where
    S: AcqScorer + ?Sized,
    R: Rng + ?Sized,
{
    assert!(dim > 0, "dimension must be positive");
    assert!(opts.candidates > 0, "need at least one candidate");

    // Global phase: random scatter. All candidates are drawn before any
    // scoring — the same RNG stream as the historical draw-score-draw
    // loop, since scoring never consumed randomness.
    let cands: Vec<Vec<f64>> = (0..opts.candidates)
        .map(|_| (0..dim).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let scores = scorer.score_batch(&cands);
    assert_eq!(scores.len(), cands.len(), "batch scorer returned wrong length");
    let mut scored: Vec<(f64, Vec<f64>)> = scores.into_iter().zip(cands).collect();
    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
    scored.truncate(opts.refine_top.max(1));

    // Local phase: coordinate pattern search from each survivor.
    let mut best = scored[0].clone();
    for (mut fx, mut x) in scored {
        let mut step = opts.initial_step;
        for _ in 0..=opts.halvings {
            let mut improved = true;
            while improved {
                improved = false;
                for d in 0..dim {
                    for dir in [-1.0, 1.0] {
                        let orig = x[d];
                        let cand = (orig + dir * step).clamp(0.0, 1.0);
                        if cand == orig {
                            continue;
                        }
                        x[d] = cand;
                        let f = scorer.score_one(&x);
                        if f > fx {
                            fx = f;
                            improved = true;
                        } else {
                            x[d] = orig;
                        }
                    }
                }
            }
            step *= 0.5;
        }
        if fx > best.0 {
            best = (fx, x);
        }
    }
    best.1
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    #[test]
    fn finds_an_interior_peak() {
        let mut rng = rng_from_seed(1);
        let target = [0.3, 0.7];
        let x = maximize_acquisition(
            |p| -(p[0] - target[0]).powi(2) - (p[1] - target[1]).powi(2),
            2,
            &OptimizeOptions::default(),
            &mut rng,
        );
        assert!((x[0] - 0.3).abs() < 0.01, "x0 = {}", x[0]);
        assert!((x[1] - 0.7).abs() < 0.01, "x1 = {}", x[1]);
    }

    #[test]
    fn respects_the_box_on_boundary_peaks() {
        let mut rng = rng_from_seed(2);
        // Optimum outside the box: the maximiser should pin to the corner.
        let x = maximize_acquisition(
            |p| p[0] + p[1],
            2,
            &OptimizeOptions::default(),
            &mut rng,
        );
        assert!(x[0] > 0.999 && x[1] > 0.999, "corner not reached: {x:?}");
        assert!(x.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn multimodal_surface_finds_the_better_mode() {
        let mut rng = rng_from_seed(3);
        // Two Gaussian bumps; the one at 0.8 is taller.
        let f = |p: &[f64]| {
            let a = (-((p[0] - 0.2) / 0.05).powi(2)).exp() * 0.8;
            let b = (-((p[0] - 0.8) / 0.05).powi(2)).exp();
            a + b
        };
        let x = maximize_acquisition(f, 1, &OptimizeOptions::default(), &mut rng);
        assert!((x[0] - 0.8).abs() < 0.02, "x = {}", x[0]);
    }

    #[test]
    fn batch_scoring_is_bit_identical_to_pointwise() {
        let f = |p: &[f64]| {
            -(p[0] - 0.37).powi(2) - (p[1] - 0.61).powi(2) + (p[0] * 9.0).sin() * 0.01
        };
        let mut rng_a = rng_from_seed(7);
        let pointwise = maximize_acquisition(f, 2, &OptimizeOptions::default(), &mut rng_a);
        let mut rng_b = rng_from_seed(7);
        let batched = maximize_acquisition_batch(
            |batch| batch.iter().map(|p| f(p)).collect(),
            f,
            2,
            &OptimizeOptions::default(),
            &mut rng_b,
        );
        assert_eq!(pointwise, batched);
    }

    #[test]
    fn works_in_higher_dimensions() {
        let mut rng = rng_from_seed(4);
        let x = maximize_acquisition(
            |p| -p.iter().map(|&v| (v - 0.5).powi(2)).sum::<f64>(),
            8,
            &OptimizeOptions::default(),
            &mut rng,
        );
        for &v in &x {
            assert!((v - 0.5).abs() < 0.05, "coordinate {v}");
        }
    }
}
