//! The ask/tell BO engine (paper Algorithm 1).
//!
//! One [`BoEngine::suggest`] + [`BoEngine::observe`] round trip performs
//! lines 9–13 of the paper's Algorithm 1: fit a GP on the priors, let each
//! acquisition in the portfolio nominate its optimum, Hedge-select the
//! point to evaluate, and (on the next fit) reward every acquisition with
//! the negated posterior mean at its own nominee.

use std::time::Instant;

use rand::Rng;
use robotune_gp::hyper::{fit_gp, HyperFitOptions};
use robotune_gp::kernel::Matern52;
use robotune_gp::model::GpModel;

use crate::acquisition::{AcquisitionKind, ALL_ACQUISITIONS};
use crate::error::EngineError;
use crate::hedge::Hedge;
use crate::optimize::{maximize_acquisition, maximize_acquisition_batch, OptimizeOptions};

/// BO engine configuration.
#[derive(Debug, Clone)]
pub struct BoOptions {
    /// PI/EI exploration margin ξ (paper §4: 0.01).
    pub xi: f64,
    /// LCB confidence multiplier κ (paper §4: 1.96).
    pub kappa: f64,
    /// Hedge learning rate η.
    pub hedge_eta: f64,
    /// Hyperparameter fitting options.
    pub hyper: HyperFitOptions,
    /// Acquisition-maximisation options.
    pub optimize: OptimizeOptions,
    /// Re-optimise GP hyperparameters every this many new observations
    /// (the Cholesky refit itself happens every round).
    pub refit_every: usize,
    /// Points closer than this (∞-norm) to an existing observation are
    /// nudged randomly to keep the kernel matrix well conditioned.
    pub dedup_tol: f64,
    /// Force a single acquisition function instead of the Hedge portfolio
    /// (the paper's design calls for Hedge; this exists for ablations).
    pub acquisition_override: Option<AcquisitionKind>,
    /// Score acquisition candidates and hedge nominees through the GP's
    /// batched posterior ([`GpModel::predict_batch`]: one blocked
    /// triangular solve, chunk-parallel on multi-core hosts) instead of
    /// point-by-point. Bit-identical suggestions either way; `false`
    /// exists as the micro-benchmark baseline.
    pub batched_scoring: bool,
}

impl Default for BoOptions {
    fn default() -> Self {
        BoOptions {
            xi: 0.01,
            kappa: 1.96,
            hedge_eta: 1.0,
            hyper: HyperFitOptions::default(),
            optimize: OptimizeOptions::default(),
            refit_every: 5,
            dedup_tol: 1e-6,
            acquisition_override: None,
            batched_scoring: true,
        }
    }
}

/// Ask/tell Bayesian optimiser over `[0, 1]^dim`, minimising the objective.
#[derive(Debug, Clone)]
pub struct BoEngine {
    dim: usize,
    opts: BoOptions,
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    hedge: Hedge,
    /// Nominees of the previous round, awaiting their Hedge reward.
    pending_nominees: Option<[Vec<f64>; 3]>,
    model: Option<GpModel<Matern52>>,
    /// Kernel hyperparameters carried between full refits.
    kernel_cache: Option<(Matern52, f64)>,
    observations_at_last_hyperfit: usize,
}

impl BoEngine {
    /// Creates an engine for a `dim`-dimensional problem.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn new(dim: usize, opts: BoOptions) -> Self {
        assert!(dim > 0, "dimension must be positive");
        let hedge = Hedge::new(opts.hedge_eta);
        BoEngine {
            dim,
            opts,
            xs: Vec::new(),
            ys: Vec::new(),
            hedge,
            pending_nominees: None,
            model: None,
            kernel_cache: None,
            observations_at_last_hyperfit: 0,
        }
    }

    /// Number of observations recorded so far.
    pub fn n_observations(&self) -> usize {
        self.ys.len()
    }

    /// All observations, in arrival order.
    pub fn observations(&self) -> (&[Vec<f64>], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// The incumbent: lowest observed value and its point.
    pub fn best(&self) -> Option<(&[f64], f64)> {
        self.ys
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, &y)| (self.xs[i].as_slice(), y))
    }

    /// The Hedge portfolio state (for diagnostics / Fig. 8-style plots).
    pub fn hedge(&self) -> &Hedge {
        &self.hedge
    }

    /// Records an evaluated point.
    ///
    /// Rejects dimension mismatches and non-finite objective values with a
    /// typed [`EngineError`] — failed runs must be mapped to a finite
    /// penalty by the caller (the paper's threshold-stopping assigns them
    /// the timeout value; see [`BoEngine::observe_penalized`]).
    pub fn observe(&mut self, x: Vec<f64>, y: f64) -> Result<(), EngineError> {
        if x.len() != self.dim {
            return Err(EngineError::DimensionMismatch {
                expected: self.dim,
                got: x.len(),
            });
        }
        if !y.is_finite() {
            return Err(EngineError::NonFiniteObservation(y));
        }
        // The incumbent scan is only worth paying for when tracing is on.
        if robotune_obs::is_enabled() {
            robotune_obs::incr("bo.observe", 1);
            let improvement = self.ys.iter().all(|&v| y < v);
            if improvement {
                robotune_obs::incr("bo.improvement", 1);
            }
            // Per-round incumbent series: the raw material of the
            // stalled-convergence detector in `experiments doctor`.
            let best = self.ys.iter().copied().fold(y, f64::min);
            robotune_obs::diag("diag.bo.observe", self.ys.len() as u64, || {
                serde_json::json!({
                    "y": y,
                    "best": best,
                    "improvement": improvement,
                })
            });
        }
        self.xs.push(x);
        self.ys.push(y);
        self.model = None; // stale
        Ok(())
    }

    /// Records a *censored* observation for a failed or killed evaluation:
    /// the point is observed at `penalty` (typically the kill threshold or
    /// a multiple of the worst completed time) so the surrogate learns the
    /// region is bad without the session crashing on a non-finite value.
    ///
    /// `penalty` itself must be finite; a non-finite penalty falls back to
    /// twice the worst observation so far (or `1.0` with no history yet).
    pub fn observe_penalized(&mut self, x: Vec<f64>, penalty: f64) -> Result<(), EngineError> {
        let y = if penalty.is_finite() {
            penalty
        } else {
            self.ys.iter().copied().fold(f64::NEG_INFINITY, f64::max).max(0.5) * 2.0
        };
        robotune_obs::incr("bo.censored_observation", 1);
        self.observe(x, y)
    }

    /// Posterior (mean, variance) at `q` under the most recently fitted
    /// model, if any. Mainly for response-surface rendering (Fig. 9).
    /// Returns `None` when observations arrived after the last fit — call
    /// [`BoEngine::refit`] first in that case.
    pub fn posterior(&self, q: &[f64]) -> Option<(f64, f64)> {
        self.model.as_ref().map(|m| m.predict(q))
    }

    /// Ensures the GP reflects all observations (e.g. before reading the
    /// posterior at the end of a loop). No-op with fewer than two
    /// observations.
    pub fn refit<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.ys.len() >= 2 {
            self.ensure_model(rng);
        }
    }

    /// Fits (or refits) the GP over the current data. On failure the model
    /// stays `None` and the caller degrades to a random suggestion — a
    /// degenerate surrogate must never abort the session.
    fn ensure_model<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        if self.model.is_some() {
            return;
        }
        let need_hyperfit = self.kernel_cache.is_none()
            || self.ys.len() >= self.observations_at_last_hyperfit + self.opts.refit_every;
        let fitted = if need_hyperfit {
            fit_gp(&self.xs, &self.ys, &self.opts.hyper, rng).inspect(|m| {
                self.kernel_cache = Some((*m.kernel(), m.noise()));
                self.observations_at_last_hyperfit = self.ys.len();
            })
        } else if let Some((kernel, noise)) = self.kernel_cache {
            // Cheap Cholesky refit with cached hyperparameters; fall back
            // to a full hyperparameter fit if the cache went stale enough
            // to stop factoring.
            GpModel::fit(self.xs.clone(), &self.ys, kernel, noise)
                .or_else(|_| fit_gp(&self.xs, &self.ys, &self.opts.hyper, rng))
        } else {
            fit_gp(&self.xs, &self.ys, &self.opts.hyper, rng)
        };
        match fitted {
            Ok(m) => self.model = Some(m),
            Err(_) => {
                robotune_obs::incr("bo.surrogate_fit_failed", 1);
                self.model = None;
            }
        }
    }

    /// Suggests the next point to evaluate.
    ///
    /// With fewer than two observations the suggestion is uniform random
    /// (there is nothing to model yet). Otherwise: GP fit → pending-gain
    /// update → per-acquisition nomination → Hedge selection.
    pub fn suggest<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        let _span = robotune_obs::span("bo.suggest");
        let t0 = robotune_obs::is_enabled().then(Instant::now);
        let chosen = self.suggest_inner(rng);
        if let Some(t) = t0 {
            robotune_obs::record("bo.suggest_ns", t.elapsed().as_nanos() as f64);
        }
        chosen
    }

    fn suggest_inner<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Vec<f64> {
        if self.ys.len() < 2 {
            robotune_obs::incr("bo.random_suggest", 1);
            return (0..self.dim).map(|_| rng.gen::<f64>()).collect();
        }
        self.ensure_model(rng);
        let Some(model) = self.model.as_ref() else {
            // Surrogate could not be fitted (near-singular data): degrade
            // to a uniform random proposal rather than aborting.
            robotune_obs::incr("bo.surrogate_fallback", 1);
            return (0..self.dim).map(|_| rng.gen::<f64>()).collect();
        };

        // Reward last round's nominees under the refreshed posterior.
        // Gains use standardised units so η keeps a consistent meaning.
        if let Some(nominees) = self.pending_nominees.take() {
            let mean = self.ys.iter().sum::<f64>() / self.ys.len() as f64;
            let var = self
                .ys
                .iter()
                .map(|&y| (y - mean) * (y - mean))
                .sum::<f64>()
                / self.ys.len() as f64;
            let std = if var > 0.0 { var.sqrt() } else { 1.0 };
            let preds: Vec<(f64, f64)> = if self.opts.batched_scoring {
                model.predict_batch(&nominees)
            } else {
                nominees.iter().map(|n| model.predict(n)).collect()
            };
            let mut rewards = [0.0; 3];
            for (r, (mu, _)) in rewards.iter_mut().zip(preds) {
                *r = -(mu - mean) / std;
            }
            self.hedge.update(rewards);
        }

        // All recorded observations are finite (observe() enforces it), so
        // the plain fold is total here.
        let best = self.ys.iter().copied().fold(f64::INFINITY, f64::min);
        let (xi, kappa) = (self.opts.xi, self.opts.kappa);
        let mut nominees: [Vec<f64>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for (slot, kind) in nominees.iter_mut().zip(ALL_ACQUISITIONS) {
            let _acq_span = robotune_obs::span("bo.acq_opt");
            let pointwise = |p: &[f64]| {
                let (mu, var) = model.predict(p);
                kind.score(mu, var.sqrt(), best, xi, kappa)
            };
            *slot = if self.opts.batched_scoring {
                // The 256-candidate global phase goes through one blocked
                // triangular solve (chunk-parallel on multi-core hosts);
                // the pattern-search refinement stays pointwise.
                maximize_acquisition_batch(
                    |batch| {
                        model
                            .predict_batch(batch)
                            .into_iter()
                            .map(|(mu, var)| kind.score(mu, var.sqrt(), best, xi, kappa))
                            .collect()
                    },
                    pointwise,
                    self.dim,
                    &self.opts.optimize,
                    rng,
                )
            } else {
                maximize_acquisition(pointwise, self.dim, &self.opts.optimize, rng)
            };
        }

        let chosen_kind = match self.opts.acquisition_override {
            Some(kind) => kind,
            None => self.hedge.choose(rng),
        };
        robotune_obs::mark("bo.hedge", || {
            let p = self.hedge.probabilities();
            serde_json::json!({
                "chosen": chosen_kind.name(),
                "p_pi": p[0],
                "p_ei": p[1],
                "p_lcb": p[2],
                "round": self.ys.len(),
            })
        });
        let idx = ALL_ACQUISITIONS
            .iter()
            .position(|&k| k == chosen_kind)
            .unwrap_or(0);
        let mut chosen = nominees[idx].clone();
        // Acquisition-health diagnostics: the hedge mixture plus the
        // chosen point's acquisition value under the fresh posterior.
        // Pure telemetry — reads the model, never the RNG.
        if robotune_obs::is_enabled() {
            let p = self.hedge.probabilities();
            let (mu, var) = model.predict(&chosen);
            let acq = chosen_kind.score(mu, var.sqrt(), best, xi, kappa);
            robotune_obs::diag("diag.bo.suggest", self.ys.len() as u64, || {
                serde_json::json!({
                    "chosen": chosen_kind.name(),
                    "p_pi": p[0],
                    "p_ei": p[1],
                    "p_lcb": p[2],
                    "acq": acq,
                    "incumbent": best,
                })
            });
        }
        self.pending_nominees = Some(nominees);

        // De-duplicate against existing observations.
        let too_close = |p: &[f64], xs: &[Vec<f64>], tol: f64| {
            xs.iter().any(|x| {
                x.iter()
                    .zip(p)
                    .all(|(a, b)| (a - b).abs() < tol)
            })
        };
        while too_close(&chosen, &self.xs, self.opts.dedup_tol) {
            robotune_obs::incr("bo.dedup_nudge", 1);
            for v in &mut chosen {
                *v = (*v + rng.gen::<f64>() * 0.05 - 0.025).clamp(0.0, 1.0);
            }
        }
        chosen
    }

    /// Which acquisition the portfolio currently favours (for reporting).
    pub fn dominant_acquisition(&self) -> AcquisitionKind {
        let p = self.hedge.probabilities();
        let i = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0);
        ALL_ACQUISITIONS[i]
    }
}

/// Result of [`minimize`]: `(best_x, best_y, history)`.
pub type MinimizeResult = (Vec<f64>, f64, Vec<(Vec<f64>, f64)>);

/// Convenience driver: LHS-free minimisation loop with `n_init` random
/// initial points followed by `budget − n_init` BO iterations.
///
/// Returns `(best_x, best_y, history)` where `history` holds every
/// `(point, value)` in evaluation order. Library users with custom
/// initial designs (like ROBOTune's memoized sampler) should drive
/// [`BoEngine`] directly instead.
pub fn minimize<F, R>(
    mut f: F,
    dim: usize,
    n_init: usize,
    budget: usize,
    opts: BoOptions,
    rng: &mut R,
) -> MinimizeResult
where
    F: FnMut(&[f64]) -> f64,
    R: Rng + ?Sized,
{
    let mut engine = BoEngine::new(dim, opts);
    let mut history = Vec::with_capacity(budget);
    for i in 0..budget.max(n_init) {
        let x = if i < n_init {
            (0..dim).map(|_| rng.gen::<f64>()).collect()
        } else {
            engine.suggest(rng)
        };
        let y = f(&x);
        history.push((x.clone(), y));
        // Non-finite objective values (crashed evaluations the caller did
        // not censor) are recorded at a penalty instead of panicking.
        if engine.observe(x.clone(), y).is_err() && engine.observe_penalized(x, y).is_err() {
            robotune_obs::incr("bo.observation_dropped", 1);
        }
    }
    history
        .iter()
        .filter(|(_, v)| v.is_finite())
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .map(|(x, y)| (x.clone(), *y, history.clone()))
        .unwrap_or_else(|| (vec![0.5; dim], f64::INFINITY, history.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    fn cheap_opts() -> BoOptions {
        BoOptions {
            hyper: HyperFitOptions {
                restarts: 1,
                evals_per_restart: 40,
                ..HyperFitOptions::default()
            },
            optimize: OptimizeOptions {
                candidates: 64,
                refine_top: 2,
                halvings: 4,
                ..OptimizeOptions::default()
            },
            ..BoOptions::default()
        }
    }

    #[test]
    fn minimises_a_smooth_bowl_better_than_its_init() {
        let mut rng = rng_from_seed(1);
        let f = |p: &[f64]| (p[0] - 0.3).powi(2) + (p[1] - 0.6).powi(2);
        let (x, y, history) = minimize(f, 2, 5, 25, cheap_opts(), &mut rng);
        let init_best = history[..5]
            .iter()
            .map(|(_, v)| *v)
            .fold(f64::INFINITY, f64::min);
        assert!(y <= init_best, "BO should not be worse than its init");
        assert!(y < 0.01, "final value {y} at {x:?}");
    }

    #[test]
    fn beats_random_search_on_a_narrow_optimum() {
        // The Fig. 3 story in miniature: a narrow quadratic well that
        // random search rarely lands in but exploitation finds.
        let f = |p: &[f64]| {
            let d2: f64 = p.iter().map(|&v| (v - 0.42).powi(2)).sum();
            1.0 - (-d2 / 0.005).exp()
        };
        let budget = 30;
        let mut bo_rng = rng_from_seed(2);
        let (_, bo_y, _) = minimize(f, 3, 8, budget, cheap_opts(), &mut bo_rng);
        let mut rs_rng = rng_from_seed(3);
        let rs_y = (0..budget)
            .map(|_| {
                let p: Vec<f64> = (0..3).map(|_| rand::Rng::gen::<f64>(&mut rs_rng)).collect();
                f(&p)
            })
            .fold(f64::INFINITY, f64::min);
        assert!(
            bo_y < rs_y,
            "BO ({bo_y}) should beat random search ({rs_y}) on a narrow optimum"
        );
    }

    #[test]
    fn suggest_before_data_is_random_but_in_bounds() {
        let mut engine = BoEngine::new(4, cheap_opts());
        let mut rng = rng_from_seed(4);
        let p = engine.suggest(&mut rng);
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn best_tracks_the_minimum() {
        let mut engine = BoEngine::new(1, cheap_opts());
        engine.observe(vec![0.1], 5.0).unwrap();
        engine.observe(vec![0.2], 2.0).unwrap();
        engine.observe(vec![0.3], 7.0).unwrap();
        let (x, y) = engine.best().unwrap();
        assert_eq!(x, &[0.2]);
        assert_eq!(y, 2.0);
    }

    #[test]
    fn duplicate_suggestions_get_nudged() {
        let mut engine = BoEngine::new(2, cheap_opts());
        let mut rng = rng_from_seed(5);
        // A constant objective makes every point equally attractive, which
        // tends to re-nominate corners; the dedup must keep points distinct.
        for i in 0..6 {
            let x = engine.suggest(&mut rng);
            engine.observe(x, 1.0 + i as f64 * 1e-9).unwrap();
        }
        let (xs, _) = engine.observations();
        for i in 0..xs.len() {
            for j in i + 1..xs.len() {
                assert_ne!(xs[i], xs[j], "suggestions {i} and {j} collide");
            }
        }
    }

    #[test]
    fn non_finite_observations_rejected_with_typed_error() {
        let mut engine = BoEngine::new(1, cheap_opts());
        let r = engine.observe(vec![0.5], f64::INFINITY);
        assert!(matches!(r, Err(crate::EngineError::NonFiniteObservation(_))), "{r:?}");
        let r = engine.observe(vec![0.5, 0.5], 1.0);
        assert!(
            matches!(r, Err(crate::EngineError::DimensionMismatch { expected: 1, got: 2 })),
            "{r:?}"
        );
        assert_eq!(engine.n_observations(), 0);
    }

    #[test]
    fn penalized_observation_censors_failures_finitely() {
        let mut engine = BoEngine::new(1, cheap_opts());
        engine.observe(vec![0.1], 3.0).unwrap();
        engine.observe_penalized(vec![0.2], 9.0).unwrap();
        // A non-finite penalty degrades to 2x the worst finite observation.
        engine.observe_penalized(vec![0.3], f64::INFINITY).unwrap();
        let (_, ys) = engine.observations();
        assert_eq!(ys, &[3.0, 9.0, 18.0]);
        assert!(ys.iter().all(|y| y.is_finite()));
    }

    #[test]
    fn degenerate_duplicate_data_degrades_to_random_not_panic() {
        // Every observation at the same point with zero spread: the GP fit
        // can struggle, but suggest() must still return an in-bounds point.
        let mut engine = BoEngine::new(3, cheap_opts());
        for _ in 0..6 {
            engine.observe(vec![0.5, 0.5, 0.5], 2.0).unwrap();
        }
        let mut rng = rng_from_seed(9);
        let p = engine.suggest(&mut rng);
        assert_eq!(p.len(), 3);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn hedge_gains_accumulate_over_rounds() {
        let mut engine = BoEngine::new(2, cheap_opts());
        let mut rng = rng_from_seed(6);
        for i in 0..8 {
            let x = engine.suggest(&mut rng);
            let y = (x[0] - 0.5).powi(2) + i as f64 * 0.001;
            engine.observe(x, y).unwrap();
        }
        // After several rounds the gains are no longer all zero.
        let g = engine.hedge().gains();
        assert!(g.iter().any(|&v| v != 0.0), "gains never updated: {g:?}");
    }
}
