//! The GP-Hedge adaptive acquisition portfolio.
//!
//! Hoffman, Brochu & de Freitas (UAI 2011): run all acquisition functions
//! in parallel as "experts"; at each round sample one nominee with
//! probability `p_i ∝ exp(η·g_i)` where `g_i` is expert *i*'s cumulative
//! gain; after the GP is updated, reward every expert with the (negated,
//! for minimisation) posterior mean at *its own* nominee. Empirically the
//! portfolio tracks whichever of PI/EI/LCB suits the current optimisation
//! stage (paper §3.4).

use rand::Rng;

use crate::acquisition::{AcquisitionKind, ALL_ACQUISITIONS};

/// Exponential-weights portfolio over the three acquisitions.
#[derive(Debug, Clone)]
pub struct Hedge {
    gains: [f64; 3],
    eta: f64,
    picks: [usize; 3],
}

impl Hedge {
    /// Creates a portfolio with learning rate `eta` (> 0).
    ///
    /// # Panics
    ///
    /// Panics unless `eta` is positive and finite.
    pub fn new(eta: f64) -> Self {
        assert!(eta > 0.0 && eta.is_finite(), "eta must be positive");
        Hedge {
            gains: [0.0; 3],
            eta,
            picks: [0; 3],
        }
    }

    /// Current selection probabilities (PI, EI, LCB order).
    pub fn probabilities(&self) -> [f64; 3] {
        // Shift by the max gain for numerical stability; softmax is
        // shift-invariant.
        let m = self.gains.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps = self.gains.map(|g| (self.eta * (g - m)).exp());
        let z: f64 = exps.iter().sum();
        exps.map(|e| e / z)
    }

    /// Samples one acquisition according to the current probabilities.
    pub fn choose<R: Rng + ?Sized>(&mut self, rng: &mut R) -> AcquisitionKind {
        let i = pick_index(&self.probabilities(), rng.gen::<f64>());
        self.picks[i] += 1;
        ALL_ACQUISITIONS[i]
    }

    /// Adds this round's rewards (one per expert, PI/EI/LCB order).
    /// Rewards should be on a roughly unit scale — the BO engine feeds
    /// negated posterior means of *standardised* targets.
    pub fn update(&mut self, rewards: [f64; 3]) {
        for (g, r) in self.gains.iter_mut().zip(rewards) {
            debug_assert!(r.is_finite(), "non-finite hedge reward");
            *g += r;
        }
    }

    /// Cumulative gains (PI, EI, LCB order).
    pub fn gains(&self) -> [f64; 3] {
        self.gains
    }

    /// How many times each expert has been chosen so far.
    pub fn pick_counts(&self) -> [usize; 3] {
        self.picks
    }
}

impl Default for Hedge {
    /// η = 1.0, a common default that adapts quickly at BO's sample sizes.
    fn default() -> Self {
        Hedge::new(1.0)
    }
}

/// Maps a uniform draw `u` to an expert index by inverse CDF over `probs`.
///
/// Floating-point rounding can leave `Σ probs` a few ULPs below 1 (or the
/// residual of `u` a few ULPs above the remaining mass), letting the scan
/// fall through every bucket. The fallthrough must credit the last expert
/// with *positive* probability — an expert whose weight underflowed to
/// exactly zero (adversarially large negative gains) may never be picked,
/// which the old always-LCB fallback violated.
fn pick_index(probs: &[f64; 3], mut u: f64) -> usize {
    let mut last_positive = 0;
    for (i, p) in probs.iter().enumerate() {
        if *p > 0.0 {
            last_positive = i;
        }
        if u < *p {
            return i;
        }
        u -= p;
    }
    last_positive
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_stats::rng_from_seed;

    #[test]
    fn starts_uniform() {
        let h = Hedge::default();
        for p in h.probabilities() {
            assert!((p - 1.0 / 3.0).abs() < 1e-12);
        }
    }

    #[test]
    fn rewards_shift_probability_mass() {
        let mut h = Hedge::default();
        for _ in 0..5 {
            h.update([1.0, 0.0, 0.0]); // PI keeps winning
        }
        let p = h.probabilities();
        assert!(p[0] > 0.9, "PI probability {}", p[0]);
        assert!(p[1] < 0.05 && p[2] < 0.05);
    }

    #[test]
    fn probabilities_always_normalised() {
        let mut h = Hedge::new(0.5);
        h.update([1000.0, -1000.0, 3.0]); // extreme gains stay stable
        let p = h.probabilities();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
    }

    #[test]
    fn choose_follows_the_distribution() {
        let mut h = Hedge::default();
        h.update([2.0, 0.0, 0.0]);
        let mut rng = rng_from_seed(1);
        let mut counts = [0usize; 3];
        for _ in 0..3000 {
            match h.choose(&mut rng) {
                AcquisitionKind::Pi => counts[0] += 1,
                AcquisitionKind::Ei => counts[1] += 1,
                AcquisitionKind::Lcb => counts[2] += 1,
            }
        }
        let p = h.probabilities();
        for i in 0..3 {
            let emp = counts[i] as f64 / 3000.0;
            assert!((emp - p[i]).abs() < 0.03, "expert {i}: emp {emp} vs {}", p[i]);
        }
        assert_eq!(h.pick_counts().iter().sum::<usize>(), 3000);
    }

    #[test]
    fn higher_eta_commits_faster() {
        let mut slow = Hedge::new(0.1);
        let mut fast = Hedge::new(5.0);
        slow.update([1.0, 0.0, 0.0]);
        fast.update([1.0, 0.0, 0.0]);
        assert!(fast.probabilities()[0] > slow.probabilities()[0]);
    }

    #[test]
    #[should_panic(expected = "eta must be positive")]
    fn rejects_bad_eta() {
        Hedge::new(0.0);
    }

    #[test]
    fn fallthrough_never_credits_a_zero_probability_expert() {
        // Adversarial gains drive LCB's softmax weight to exactly zero:
        // exp(η·(−10⁴)) underflows. A draw that falls through every bucket
        // (u = 1.0 simulates the worst rounding case; rng draws are < 1
        // but the residual can exceed the remaining mass by a few ULPs)
        // must land on EI — the last expert with positive mass — not LCB.
        let mut h = Hedge::default();
        h.update([0.0, 0.0, -1e4]);
        let p = h.probabilities();
        assert_eq!(p[2], 0.0, "test premise: LCB mass underflows, got {p:?}");
        assert_eq!(pick_index(&p, 1.0), 1, "fallthrough must pick EI");
        // And with all mass on the first expert, fallthrough picks it.
        assert_eq!(pick_index(&[1.0, 0.0, 0.0], 1.0), 0);
        // Ordinary draws still follow the inverse CDF.
        assert_eq!(pick_index(&[0.2, 0.3, 0.5], 0.1), 0);
        assert_eq!(pick_index(&[0.2, 0.3, 0.5], 0.4), 1);
        assert_eq!(pick_index(&[0.2, 0.3, 0.5], 0.9), 2);
    }
}
