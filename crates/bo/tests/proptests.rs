//! Property-based tests of the acquisition functions and the Hedge
//! portfolio.

use proptest::prelude::*;
use robotune_bo::{AcquisitionKind, Hedge};

const XI: f64 = 0.01;
const KAPPA: f64 = 1.96;

proptest! {
    #[test]
    fn ei_is_nonnegative(mu in -1e3f64..1e3, sigma in 0.0f64..1e3, best in -1e3f64..1e3) {
        prop_assert!(AcquisitionKind::Ei.score(mu, sigma, best, XI, KAPPA) >= 0.0);
    }

    #[test]
    fn ei_monotone_in_sigma(
        mu in -100.0f64..100.0,
        best in -100.0f64..100.0,
        s1 in 0.01f64..50.0,
        s2 in 0.01f64..50.0,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let a = AcquisitionKind::Ei.score(mu, lo, best, XI, KAPPA);
        let b = AcquisitionKind::Ei.score(mu, hi, best, XI, KAPPA);
        prop_assert!(b >= a - 1e-9, "EI must grow with uncertainty: {a} vs {b}");
    }

    #[test]
    fn ei_and_pi_monotone_decreasing_in_mu(
        m1 in -100.0f64..100.0,
        m2 in -100.0f64..100.0,
        sigma in 0.01f64..50.0,
        best in -100.0f64..100.0,
    ) {
        let (lo, hi) = if m1 <= m2 { (m1, m2) } else { (m2, m1) };
        for kind in [AcquisitionKind::Ei, AcquisitionKind::Pi] {
            let better = kind.score(lo, sigma, best, XI, KAPPA);
            let worse = kind.score(hi, sigma, best, XI, KAPPA);
            prop_assert!(better >= worse - 1e-9, "{kind:?} must prefer lower means");
        }
    }

    #[test]
    fn pi_stays_a_probability(
        mu in -1e4f64..1e4,
        sigma in 0.0f64..1e4,
        best in -1e4f64..1e4,
    ) {
        let p = AcquisitionKind::Pi.score(mu, sigma, best, XI, KAPPA);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn lcb_is_exactly_linear(mu in -100.0f64..100.0, sigma in 0.0f64..100.0) {
        let v = AcquisitionKind::Lcb.score(mu, sigma, 0.0, XI, KAPPA);
        prop_assert!((v - (-(mu - KAPPA * sigma))).abs() < 1e-12);
    }

    #[test]
    fn hedge_probabilities_always_form_a_distribution(
        rewards in proptest::collection::vec(
            (-100.0f64..100.0, -100.0f64..100.0, -100.0f64..100.0), 0..50),
        eta in 0.01f64..10.0,
    ) {
        let mut hedge = Hedge::new(eta);
        for (a, b, c) in rewards {
            hedge.update([a, b, c]);
            let p = hedge.probabilities();
            prop_assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(p.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn hedge_favours_the_consistently_rewarded_expert(
        winner in 0usize..3,
        rounds in 3usize..30,
    ) {
        let mut hedge = Hedge::default();
        for _ in 0..rounds {
            let mut r = [0.0; 3];
            r[winner] = 1.0;
            hedge.update(r);
        }
        let p = hedge.probabilities();
        for i in 0..3 {
            if i != winner {
                prop_assert!(p[winner] > p[i]);
            }
        }
    }
}
