//! Successive halving: the rung scheduler Hyperband brackets are built
//! from (Jamieson & Talwalkar, AISTATS '16; Li et al., JMLR '18).
//!
//! A bracket starts `n₀` configurations at a low fidelity, ranks them,
//! promotes the top `1/η` to the next rung at `η×` the fidelity, and
//! repeats until one rung runs at the full dataset. Everything here is
//! deterministic given the candidate points: ranking uses
//! `f64::total_cmp` with evaluation order as the tie-break, so two runs
//! with the same seed produce bit-identical schedules and promotions.

use robotune_space::SearchSpace;
use robotune_tuners::{
    evaluate_with_retry, Fidelity, Objective, RetryPolicy, ThresholdPolicy, TuningSession,
};

/// Options shared by every bracket of a multi-fidelity run.
#[derive(Debug, Clone)]
pub struct ShaOptions {
    /// The halving rate η ≥ 2: rungs promote the top `1/η` and raise the
    /// fidelity by `η×`. The default 4 walks the 1/16 → 1/4 → full ladder.
    pub eta: usize,
    /// The lowest fidelity any rung may run at. Together with `eta` this
    /// fixes the deepest bracket: `s_max = ⌊log_η(1/min_fidelity)⌋`.
    pub min_fidelity: Fidelity,
    /// Per-run stop threshold (the full-fidelity cap; see
    /// `scale_cap_with_fidelity`).
    pub threshold: ThresholdPolicy,
    /// Scale the cap by the rung's fidelity fraction (floored at
    /// `min_cap_s`): a configuration that would be killed at 480 s on the
    /// full dataset deserves killing at ~30 s on a 1/16 sample, and not
    /// scaling would let bad configs burn full-size budget on tiny data.
    pub scale_cap_with_fidelity: bool,
    /// Floor for the fidelity-scaled cap, seconds.
    pub min_cap_s: f64,
    /// Retry policy for transient failures (faulted clusters). Retries
    /// charge their burned time to the evaluation, exactly as in the
    /// single-fidelity tuners.
    pub retry: RetryPolicy,
}

impl Default for ShaOptions {
    fn default() -> Self {
        ShaOptions {
            eta: 4,
            // 1/16 by construction of the constant; unreachable error arm.
            min_fidelity: match Fidelity::new(1.0 / 16.0) {
                Ok(f) => f,
                Err(_) => Fidelity::FULL,
            },
            threshold: ThresholdPolicy::Static(480.0),
            scale_cap_with_fidelity: true,
            min_cap_s: 60.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl ShaOptions {
    /// The deepest bracket index: how many halvings fit between
    /// `min_fidelity` and full. `s_max = ⌊log_η(1/min_fidelity)⌋`.
    pub fn s_max(&self) -> usize {
        let eta = self.eta.max(2) as f64;
        let inv = 1.0 / self.min_fidelity.fraction();
        // Floating-point floor of a log can land one short of an exact
        // power (log_4(16) computing 1.999…); nudge before flooring.
        (inv.ln() / eta.ln() + 1e-9).floor().max(0.0) as usize
    }

    /// The rung ladder of bracket `s`: `s + 1` rungs, rung `i` running
    /// `n_i = ⌊n₀ / η^i⌋` (≥ 1) configurations at fidelity `η^{i-s}`, so
    /// the last rung always runs at exactly [`Fidelity::FULL`].
    pub fn rungs(&self, s: usize, n0: usize) -> Vec<RungSpec> {
        let eta = self.eta.max(2);
        (0..=s)
            .map(|i| {
                let frac = 1.0 / (eta.pow((s - i) as u32) as f64);
                let fidelity = if s == i {
                    Fidelity::FULL
                } else {
                    // frac ∈ (0, 1) by construction; unreachable error arm.
                    Fidelity::new(frac).unwrap_or(Fidelity::FULL)
                };
                RungSpec {
                    rung: i,
                    n: (n0 / eta.pow(i as u32)).max(1),
                    fidelity,
                }
            })
            .collect()
    }

    /// The cap for a rung at `fidelity`, derived from the threshold
    /// policy's hard maximum.
    pub fn rung_cap(&self, fidelity: Fidelity) -> f64 {
        let base = self.threshold.max_cap();
        if self.scale_cap_with_fidelity && !fidelity.is_full() {
            (base * fidelity.fraction()).max(self.min_cap_s.min(base))
        } else {
            base
        }
    }
}

/// The `mf.budget_spent.<fidelity>` series a rung's burned seconds land
/// on. Metric names must be `'static`, so the η = 2 and η = 4 ladders get
/// dedicated series and anything exotic aggregates under `.other`.
pub fn budget_metric(fidelity: Fidelity) -> &'static str {
    if fidelity.is_full() {
        return "mf.budget_spent.full";
    }
    let inv = 1.0 / fidelity.fraction();
    let rounded = inv.round();
    if (inv - rounded).abs() > 1e-9 {
        return "mf.budget_spent.other";
    }
    match rounded as u64 {
        2 => "mf.budget_spent.1_2",
        4 => "mf.budget_spent.1_4",
        8 => "mf.budget_spent.1_8",
        16 => "mf.budget_spent.1_16",
        32 => "mf.budget_spent.1_32",
        64 => "mf.budget_spent.1_64",
        _ => "mf.budget_spent.other",
    }
}

/// One rung of a bracket: how many configurations run at which fidelity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RungSpec {
    /// Zero-based rung index within its bracket.
    pub rung: usize,
    /// Number of configurations this rung evaluates.
    pub n: usize,
    /// The dataset fraction they run at.
    pub fidelity: Fidelity,
}

/// What one executed rung cost — the ledger entry behind the
/// `mf.budget_spent.<fidelity>` metric and the accounting proptests.
#[derive(Debug, Clone, PartialEq)]
pub struct RungCost {
    /// Zero-based bracket counter across the whole session.
    pub bracket: usize,
    /// Rung index within the bracket.
    pub rung: usize,
    /// Fidelity the rung ran at.
    pub fidelity: Fidelity,
    /// Evaluations charged against the session budget.
    pub evals: usize,
    /// Seconds charged (including retry burn and backoff).
    pub cost_s: f64,
    /// Configurations promoted out of this rung.
    pub promoted: usize,
}

/// Ledger of everything a multi-fidelity session spent, mirrored into the
/// `mf.*` metrics. Total charged cost is exactly the sum of the per-rung
/// costs — the accounting invariant the proptests pin.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MfAccounting {
    /// Every rung executed, in execution order.
    pub rungs: Vec<RungCost>,
}

impl MfAccounting {
    /// Total seconds charged across all rungs.
    pub fn total_cost_s(&self) -> f64 {
        self.rungs.iter().map(|r| r.cost_s).sum()
    }

    /// Total evaluations charged across all rungs.
    pub fn total_evals(&self) -> usize {
        self.rungs.iter().map(|r| r.evals).sum()
    }

    /// Total promotions across all rungs.
    pub fn total_promotions(&self) -> usize {
        self.rungs.iter().map(|r| r.promoted).sum()
    }
}

/// A surviving configuration after a bracket: its point and the objective
/// value it scored on its last (highest-fidelity) rung.
#[derive(Debug, Clone)]
pub struct Survivor {
    /// Unit-cube point.
    pub point: Vec<f64>,
    /// Objective value (completed time, or the cap-floored penalty) at the
    /// survivor's last rung.
    pub value: f64,
    /// Fidelity of that last rung.
    pub fidelity: Fidelity,
}

/// Runs successive-halving brackets over a candidate set.
#[derive(Debug, Clone, Default)]
pub struct ShaScheduler {
    opts: ShaOptions,
}

impl ShaScheduler {
    /// Creates a scheduler.
    pub fn new(opts: ShaOptions) -> Self {
        ShaScheduler { opts }
    }

    /// The options in force.
    pub fn options(&self) -> &ShaOptions {
        &self.opts
    }

    /// Runs one bracket `s` over `points`, recording every evaluation into
    /// `session` (never exceeding `budget` total session evaluations) and
    /// the spend into `accounting`. Returns the survivors of the last rung
    /// that actually ran, best first.
    ///
    /// If the objective has no fidelity axis ([`Objective::set_fidelity`]
    /// returns `false`) every rung runs at full fidelity — the schedule
    /// degenerates to plain successive halving on evaluation counts.
    #[allow(clippy::too_many_arguments)]
    pub fn run_bracket(
        &self,
        bracket: usize,
        s: usize,
        points: Vec<Vec<f64>>,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        session: &mut TuningSession,
        budget: usize,
        accounting: &mut MfAccounting,
    ) -> Vec<Survivor> {
        // Candidates carry (point, last objective value) through the rungs.
        let mut candidates: Vec<Survivor> = points
            .into_iter()
            .map(|p| Survivor { point: p, value: f64::INFINITY, fidelity: Fidelity::FULL })
            .collect();

        for spec in self.opts.rungs(s, candidates.len()) {
            if session.len() >= budget || candidates.is_empty() {
                break;
            }
            candidates.truncate(spec.n);
            let fidelity_active = if objective.set_fidelity(spec.fidelity) {
                spec.fidelity
            } else {
                Fidelity::FULL
            };
            let cap = self.opts.rung_cap(fidelity_active);

            let mut cost_s = 0.0;
            let mut evals = 0;
            for cand in candidates.iter_mut() {
                if session.len() >= budget {
                    break;
                }
                let config = space.decode(&cand.point);
                let eval = evaluate_with_retry(objective, &config, cap, &self.opts.retry);
                session.push_at(cand.point.clone(), config, eval, cap, fidelity_active);
                cand.value = eval.objective_value(cap);
                cand.fidelity = fidelity_active;
                cost_s += eval.time_s;
                evals += 1;
                robotune_obs::incr("mf.rung_evals", 1);
                robotune_obs::record(budget_metric(fidelity_active), eval.time_s);
            }
            // Candidates the budget cut off never got a value on this rung:
            // drop them from the ranking rather than carry a stale score.
            candidates.truncate(evals);

            // Rank: objective value ascending, evaluation order breaking
            // ties (stable sort ⇒ deterministic bit-identical promotions).
            candidates.sort_by(|a, b| a.value.total_cmp(&b.value));

            // Promote the top 1/η into the next rung, if one remains.
            let promoted = if spec.rung < s && !candidates.is_empty() {
                let keep = (candidates.len() / self.opts.eta.max(2)).max(1);
                candidates.truncate(keep);
                robotune_obs::incr("mf.promotions", keep as u64);
                keep
            } else {
                0
            };
            // Rung-promotion diagnostics: iter is the cumulative rung
            // count across the session's accounting ledger, monotone by
            // construction.
            robotune_obs::diag("diag.mf.rung", accounting.rungs.len() as u64, || {
                serde_json::json!({
                    "bracket": bracket as u64,
                    "rung": spec.rung as u64,
                    "fidelity": fidelity_active.fraction(),
                    "evals": evals as u64,
                    "promoted": promoted as u64,
                    "cost_s": cost_s,
                })
            });
            accounting.rungs.push(RungCost {
                bracket,
                rung: spec.rung,
                fidelity: fidelity_active,
                evals,
                cost_s,
                promoted,
            });
        }
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn s_max_matches_the_ladder() {
        let opts = ShaOptions::default(); // η = 4, min 1/16
        assert_eq!(opts.s_max(), 2);
        let mut o = ShaOptions { eta: 2, ..ShaOptions::default() };
        assert_eq!(o.s_max(), 4); // 1/16 = 2^-4
        o.min_fidelity = Fidelity::new(0.5).unwrap();
        assert_eq!(o.s_max(), 1);
        o.min_fidelity = Fidelity::FULL;
        assert_eq!(o.s_max(), 0);
    }

    #[test]
    fn rung_ladder_ends_at_full_fidelity() {
        let opts = ShaOptions::default();
        let rungs = opts.rungs(2, 16);
        assert_eq!(rungs.len(), 3);
        assert_eq!(rungs[0].n, 16);
        assert_eq!(rungs[0].fidelity.fraction(), 1.0 / 16.0);
        assert_eq!(rungs[1].n, 4);
        assert_eq!(rungs[1].fidelity.fraction(), 0.25);
        assert_eq!(rungs[2].n, 1);
        assert!(rungs[2].fidelity.is_full());
    }

    #[test]
    fn rung_counts_never_hit_zero() {
        let opts = ShaOptions::default();
        let rungs = opts.rungs(2, 2);
        assert!(rungs.iter().all(|r| r.n >= 1));
    }

    #[test]
    fn caps_scale_with_fidelity_but_respect_the_floor() {
        let opts = ShaOptions::default(); // static 480, floor 60
        assert_eq!(opts.rung_cap(Fidelity::FULL), 480.0);
        assert_eq!(opts.rung_cap(Fidelity::new(0.25).unwrap()), 120.0);
        // 480/16 = 30 < floor 60.
        assert_eq!(opts.rung_cap(Fidelity::new(1.0 / 16.0).unwrap()), 60.0);
        let unscaled = ShaOptions { scale_cap_with_fidelity: false, ..ShaOptions::default() };
        assert_eq!(unscaled.rung_cap(Fidelity::new(0.25).unwrap()), 480.0);
    }
}
