//! Hyperband: cycling successive-halving brackets from aggressive
//! (many configs, tiny fidelity) to conservative (few configs, full
//! fidelity), so no single halving rate has to be right (Li et al.,
//! JMLR '18).

use rand::rngs::StdRng;
use robotune_sampling::uniform;
use robotune_space::SearchSpace;
use robotune_tuners::{Fidelity, Objective, Tuner, TuningSession};

use crate::sha::{MfAccounting, ShaOptions, ShaScheduler, Survivor};

/// Hyperband configuration.
#[derive(Debug, Clone, Default)]
pub struct HyperbandOptions {
    /// Bracket/rung mechanics (η, fidelity ladder, caps, retries).
    pub sha: ShaOptions,
}

impl HyperbandOptions {
    /// Starting size of bracket `s`: `n₀ = ⌈(s_max + 1) · η^s / (s + 1)⌉`,
    /// the standard Hyperband allocation that gives every bracket roughly
    /// the same total budget.
    pub fn bracket_size(&self, s: usize) -> usize {
        let eta = self.sha.eta.max(2);
        let s_max = self.sha.s_max();
        ((s_max + 1) * eta.pow(s as u32)).div_ceil(s + 1)
    }
}

/// The Hyperband tuner: a drop-in [`Tuner`] that spends its evaluation
/// budget on successive-halving brackets instead of a single-fidelity
/// loop. Works against any [`Objective`]; on objectives without a
/// fidelity axis it degenerates to successive halving on counts alone.
#[derive(Debug, Clone, Default)]
pub struct HyperbandTuner {
    opts: HyperbandOptions,
    accounting: MfAccounting,
}

impl HyperbandTuner {
    /// Creates a Hyperband tuner.
    pub fn new(opts: HyperbandOptions) -> Self {
        HyperbandTuner { opts, accounting: MfAccounting::default() }
    }

    /// The spend ledger of the most recent [`Tuner::tune`] call.
    pub fn accounting(&self) -> &MfAccounting {
        &self.accounting
    }

    /// The options in force.
    pub fn options(&self) -> &HyperbandOptions {
        &self.opts
    }

    /// Runs brackets into `session` until `budget` total evaluations are
    /// recorded, returning the survivors of every bracket (each bracket's
    /// winners, in bracket order). Shared by [`Tuner::tune`] and the
    /// warm-started `HyperbandBo` pipeline, which caps the Hyperband phase
    /// below the session budget and finishes with BO.
    pub(crate) fn run_into(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        session: &mut TuningSession,
        budget: usize,
        rng: &mut StdRng,
    ) -> Vec<Survivor> {
        self.accounting = MfAccounting::default();
        let scheduler = ShaScheduler::new(self.opts.sha.clone());
        let s_max = self.opts.sha.s_max();
        let mut survivors = Vec::new();
        let mut s = s_max;
        let mut bracket = 0usize;
        while session.len() < budget {
            let n0 = self.opts.bracket_size(s);
            let points = uniform(n0, space.dim(), rng);
            let winners = scheduler.run_bracket(
                bracket,
                s,
                points,
                space,
                objective,
                session,
                budget,
                &mut self.accounting,
            );
            survivors.extend(winners.into_iter().filter(|w| w.value.is_finite()));
            bracket += 1;
            s = if s == 0 { s_max } else { s - 1 };
        }
        // Leave the objective where single-fidelity callers expect it.
        objective.set_fidelity(Fidelity::FULL);
        survivors
    }
}

impl Tuner for HyperbandTuner {
    fn name(&self) -> &str {
        "Hyperband"
    }

    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession {
        let mut session = TuningSession::new(self.name());
        self.run_into(space, objective, &mut session, budget, rng);
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;
    use robotune_stats::rng_from_seed;
    use robotune_tuners::FnObjective;

    #[test]
    fn bracket_sizes_follow_the_hyperband_allocation() {
        let opts = HyperbandOptions::default(); // η = 4, s_max = 2
        assert_eq!(opts.bracket_size(2), 16); // 3·16/3
        assert_eq!(opts.bracket_size(1), 6); // ⌈3·4/2⌉
        assert_eq!(opts.bracket_size(0), 3); // 3·1/1
    }

    #[test]
    fn budget_is_respected_exactly() {
        let space = spark_space();
        let mut obj = FnObjective::new(|c: &robotune_space::Configuration| {
            50.0 + c.values().len() as f64
        });
        let mut tuner = HyperbandTuner::default();
        let mut rng = rng_from_seed(3);
        let session = tuner.tune(&space, &mut obj, 25, &mut rng);
        assert_eq!(session.len(), 25);
        assert_eq!(tuner.accounting().total_evals(), 25);
    }

    #[test]
    fn no_fidelity_axis_degenerates_to_counts_only_halving() {
        let space = spark_space();
        // FnObjective has no fidelity axis: set_fidelity returns false.
        let cores = space.index_of(robotune_space::spark::names::EXECUTOR_CORES).unwrap();
        let mut obj = FnObjective::new(move |c: &robotune_space::Configuration| {
            10.0 + 300.0 / (c.get(cores).as_int() as f64).max(1.0)
        });
        let mut tuner = HyperbandTuner::default();
        let mut rng = rng_from_seed(5);
        let session = tuner.tune(&space, &mut obj, 21, &mut rng);
        assert!(session.records.iter().all(|r| r.fidelity.is_full()));
        // With every record at FULL the session still ranks and promotes.
        assert!(tuner.accounting().total_promotions() > 0);
        assert!(session.best().is_some());
    }

    #[test]
    fn accounting_sums_to_session_cost() {
        let space = spark_space();
        let cores = space.index_of(robotune_space::spark::names::EXECUTOR_CORES).unwrap();
        let mut obj = FnObjective::new(move |c: &robotune_space::Configuration| {
            20.0 + 300.0 / (c.get(cores).as_int() as f64).max(1.0)
        });
        let mut tuner = HyperbandTuner::default();
        let mut rng = rng_from_seed(7);
        let session = tuner.tune(&space, &mut obj, 40, &mut rng);
        let ledger = tuner.accounting().total_cost_s();
        assert!(
            (ledger - session.search_cost()).abs() <= 1e-9 * session.search_cost().max(1.0),
            "ledger {ledger} vs session {}",
            session.search_cost()
        );
    }
}
