//! `HyperbandBo`: the multi-fidelity pipeline — Hyperband exploration on
//! cheap subsamples, then a full-fidelity BO finish warm-started from the
//! bias-corrected low-fidelity observations.

use rand::rngs::StdRng;
use robotune_bo::{BoEngine, BoOptions};
use robotune_space::SearchSpace;
use robotune_tuners::{
    evaluate_with_retry, Fidelity, Objective, RetryPolicy, ThresholdPolicy, Tuner, TuningSession,
};

use crate::hyperband::{HyperbandOptions, HyperbandTuner};
use crate::sha::MfAccounting;
use crate::warmstart::{bias_corrected_observations, seed_engine};

/// Options for the Hyperband→BO pipeline.
#[derive(Debug, Clone)]
pub struct HyperbandBoOptions {
    /// The exploration phase (brackets, fidelity ladder, caps).
    pub hyperband: HyperbandOptions,
    /// Fraction of the evaluation budget the Hyperband phase may spend;
    /// the rest goes to full-fidelity BO. Clamped so at least one
    /// evaluation lands on each side of the split (budget permitting).
    pub explore_frac: f64,
    /// The BO engine configuration for the finishing phase.
    pub bo: BoOptions,
    /// Stop-threshold policy of the BO phase (median-multiple over the
    /// full-fidelity completions, as in the single-fidelity ROBOTune
    /// engine).
    pub threshold: ThresholdPolicy,
    /// Retry policy of the BO phase.
    pub retry: RetryPolicy,
}

impl Default for HyperbandBoOptions {
    fn default() -> Self {
        HyperbandBoOptions {
            hyperband: HyperbandOptions::default(),
            explore_frac: 0.6,
            bo: BoOptions::default(),
            threshold: ThresholdPolicy::MedianMultiple { multiple: 3.0, max: 480.0 },
            retry: RetryPolicy::default(),
        }
    }
}

impl HyperbandBoOptions {
    /// A cheaper profile for tests: lighter acquisition optimisation and
    /// hyperparameter fitting, same algorithmic structure.
    pub fn fast() -> Self {
        let mut o = HyperbandBoOptions::default();
        o.bo.hyper.restarts = 1;
        o.bo.hyper.evals_per_restart = 40;
        o.bo.optimize.candidates = 48;
        o.bo.optimize.halvings = 3;
        o.bo.refit_every = 8;
        o
    }
}

/// Hyperband exploration + warm-started full-fidelity BO, as one
/// [`Tuner`]. The session trace contains both phases; only full-fidelity
/// completions can become the incumbent.
#[derive(Debug, Clone, Default)]
pub struct HyperbandBo {
    opts: HyperbandBoOptions,
    accounting: MfAccounting,
    warm_obs: usize,
}

impl HyperbandBo {
    /// Creates the pipeline tuner.
    pub fn new(opts: HyperbandBoOptions) -> Self {
        HyperbandBo { opts, accounting: MfAccounting::default(), warm_obs: 0 }
    }

    /// The Hyperband phase's spend ledger from the most recent tune.
    pub fn accounting(&self) -> &MfAccounting {
        &self.accounting
    }

    /// How many bias-corrected observations seeded the GP in the most
    /// recent tune.
    pub fn warm_observations(&self) -> usize {
        self.warm_obs
    }
}

impl Tuner for HyperbandBo {
    fn name(&self) -> &str {
        "Hyperband+BO"
    }

    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession {
        let mut session = TuningSession::new(self.name());
        if budget == 0 {
            return session;
        }

        // Phase 1: Hyperband brackets on the fidelity ladder. Reserve at
        // least one evaluation for the BO finish whenever budget allows.
        let explore = ((budget as f64 * self.opts.explore_frac).round() as usize)
            .clamp(1, budget.saturating_sub(1).max(1));
        let mut hb = HyperbandTuner::new(self.opts.hyperband.clone());
        hb.run_into(space, objective, &mut session, explore, rng);
        self.accounting = hb.accounting().clone();

        // Phase 2: bias-correct everything observed so far and seed the
        // full-fidelity GP with it.
        let transferred = bias_corrected_observations(&session);
        let mut bo = BoEngine::new(space.dim(), self.opts.bo.clone());
        self.warm_obs = seed_engine(&mut bo, &transferred);

        // The threshold policy tracks *full-fidelity* completions only;
        // extrapolated warm-start values must not tighten the kill cap.
        let mut completed_times: Vec<f64> = session
            .records
            .iter()
            .filter(|r| r.eval.completed && !r.eval.failed && r.fidelity.is_full())
            .map(|r| r.eval.time_s)
            .collect();

        objective.set_fidelity(Fidelity::FULL);
        while session.len() < budget {
            let point = bo.suggest(rng);
            let cap = self.opts.threshold.cap(&completed_times);
            let config = space.decode(&point);
            let eval = evaluate_with_retry(objective, &config, cap, &self.opts.retry);
            session.push(point.clone(), config, eval, cap);
            if eval.completed {
                completed_times.push(eval.time_s);
            }
            let recorded = if eval.completed {
                bo.observe(point, eval.time_s)
            } else {
                bo.observe_penalized(point, self.opts.threshold.max_cap())
            };
            if recorded.is_err() {
                robotune_obs::incr("tune.observation_dropped", 1);
            }
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;
    use robotune_stats::rng_from_seed;
    use robotune_tuners::FnObjective;

    #[test]
    fn pipeline_spends_the_exact_budget_and_finds_a_full_incumbent() {
        let space = spark_space();
        // A smooth synthetic objective: more cores = faster, bounded well
        // under the cap so every run completes.
        let cores = space.index_of(robotune_space::spark::names::EXECUTOR_CORES).unwrap();
        let mut obj = FnObjective::new(move |c: &robotune_space::Configuration| {
            60.0 + 300.0 / (c.get(cores).as_int() as f64).max(1.0)
        });
        let mut tuner = HyperbandBo::new(HyperbandBoOptions::fast());
        let mut rng = rng_from_seed(11);
        let session = tuner.tune(&space, &mut obj, 30, &mut rng);
        assert_eq!(session.len(), 30);
        let best = session.best().expect("must have a full-fidelity best");
        assert!(best.fidelity.is_full());
        // The BO phase actually ran (some records beyond the explore split).
        assert!(session.records[session.len() - 1].fidelity.is_full());
    }

    #[test]
    fn zero_budget_is_an_empty_session() {
        let space = spark_space();
        let mut obj = FnObjective::new(|_: &robotune_space::Configuration| 10.0);
        let mut tuner = HyperbandBo::default();
        let mut rng = rng_from_seed(1);
        assert!(tuner.tune(&space, &mut obj, 0, &mut rng).is_empty());
    }
}
