//! Multi-fidelity tuning: successive halving and Hyperband over the
//! fidelity axis, beside (not inside) the BO engine.
//!
//! ROBOTune evaluates every probed configuration on the full dataset, so
//! evaluation cost — not model quality — dominates tuning time. This
//! crate adds the MFTune-style alternative: run most probes on small
//! subsamples ([`robotune_tuners::Fidelity`], threaded through the Spark
//! simulator), promote only survivors, and graduate the best to the full
//! dataset. Three layers:
//!
//! * [`sha`] — [`sha::ShaScheduler`]: successive-halving brackets — rung
//!   math, `total_cmp`-deterministic promotion, the [`sha::MfAccounting`]
//!   spend ledger mirrored into the `mf.*` metrics;
//! * [`hyperband`] — [`hyperband::HyperbandTuner`]: cycles brackets from
//!   aggressive to conservative under one evaluation budget, a drop-in
//!   [`robotune_tuners::Tuner`];
//! * [`warmstart`] + [`tuner`] — [`tuner::HyperbandBo`]: bias-corrected
//!   observation transfer from the low-fidelity rungs into a
//!   full-fidelity [`robotune_bo::BoEngine`] finishing phase.
//!
//! Everything is deterministic per seed: the same seed yields
//! bit-identical rung schedules, promotions, and traces, composable with
//! `crates/faults`' scheduled fault plans.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod hyperband;
pub mod sha;
pub mod tuner;
pub mod warmstart;

pub use hyperband::{HyperbandOptions, HyperbandTuner};
pub use sha::{MfAccounting, RungCost, RungSpec, ShaOptions, ShaScheduler, Survivor};
pub use tuner::{HyperbandBo, HyperbandBoOptions};
pub use warmstart::{bias_corrected_observations, seed_engine, TransferredObs};
