//! Bias-corrected observation transfer: turning low-fidelity measurements
//! into usable full-fidelity GP observations.
//!
//! A 1/16-sample runtime is *systematically* smaller than the full-dataset
//! runtime of the same configuration, so raw low-fidelity observations
//! would teach the GP an absurdly optimistic surface. But successive
//! halving re-evaluates every promoted configuration at the next fidelity,
//! which hands us paired measurements `(y_lo, y_hi)` of the *same* config
//! at adjacent fidelities. The median of the `y_hi / y_lo` ratios over a
//! fidelity step is a robust estimate of that step's multiplicative bias;
//! chaining the medians up the ladder yields a correction factor to full
//! fidelity for every level. This observation-transfer design (rather
//! than adding a fidelity input dimension to the kernel) is deliberate:
//! see DESIGN.md "Multi-fidelity tuning" for the trade-off.

use robotune_bo::BoEngine;
use robotune_tuners::{Fidelity, TuningSession};

/// A unit-cube observation ready to seed a full-fidelity GP.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferredObs {
    /// The observed point.
    pub point: Vec<f64>,
    /// Bias-corrected (estimated full-fidelity) runtime, seconds.
    pub y: f64,
    /// The fidelity the underlying measurement actually ran at. FULL means
    /// the value is a real measurement, not an extrapolation.
    pub fidelity: Fidelity,
}

/// Estimates, for each fidelity level present in `session`, the
/// multiplicative correction to full fidelity, then emits one corrected
/// observation per unique point (keeping each point's highest-fidelity
/// completed measurement). Failed, capped, and non-finite records never
/// transfer.
///
/// When a fidelity step has no paired measurements (every promotion
/// crashed, say), the step's ratio falls back to the cost model's own
/// prior: runtime ≈ proportional to fidelity, i.e. `f_hi / f_lo`.
pub fn bias_corrected_observations(session: &TuningSession) -> Vec<TransferredObs> {
    let completed: Vec<(&Vec<f64>, f64, Fidelity)> = session
        .records
        .iter()
        .filter(|r| r.eval.completed && !r.eval.failed && r.eval.time_s.is_finite())
        .map(|r| (&r.point, r.eval.time_s, r.fidelity))
        .collect();
    if completed.is_empty() {
        return Vec::new();
    }

    // Distinct fidelity levels, ascending.
    let mut levels: Vec<Fidelity> = Vec::new();
    for (_, _, f) in &completed {
        if !levels.contains(f) {
            levels.push(*f);
        }
    }
    levels.sort_by(Fidelity::total_cmp);

    // Per-step median ratio y_hi / y_lo between adjacent levels.
    let mut step_ratio: Vec<f64> = Vec::new();
    for w in levels.windows(2) {
        let (lo, hi) = (w[0], w[1]);
        let mut ratios: Vec<f64> = Vec::new();
        for (p_lo, y_lo, _) in completed.iter().filter(|(_, _, f)| *f == lo) {
            if let Some((_, y_hi, _)) = completed
                .iter()
                .find(|(p_hi, _, f_hi)| *f_hi == hi && p_hi == p_lo)
            {
                if *y_lo > 0.0 {
                    ratios.push(*y_hi / *y_lo);
                }
            }
        }
        if ratios.is_empty() {
            step_ratio.push(hi.fraction() / lo.fraction());
        } else {
            step_ratio.push(robotune_stats::median(&ratios));
        }
    }
    // Correction to full for levels[i] = product of the step ratios above it.
    let mut corr = vec![1.0; levels.len()];
    for i in (0..levels.len().saturating_sub(1)).rev() {
        corr[i] = corr[i + 1] * step_ratio[i];
    }
    // The top level might itself be sub-full (Hyperband truncated by
    // budget): extrapolate the remaining distance with the linear prior.
    if let Some(top) = levels.last() {
        if !top.is_full() {
            let to_full = 1.0 / top.fraction();
            for c in corr.iter_mut() {
                *c *= to_full;
            }
        }
    }

    // One observation per unique point: its highest-fidelity measurement.
    let mut out: Vec<TransferredObs> = Vec::new();
    for (point, y, fid) in &completed {
        let level = levels
            .iter()
            .position(|l| l == fid)
            .unwrap_or(levels.len() - 1);
        let corrected = *y * corr[level];
        if !corrected.is_finite() {
            continue;
        }
        match out.iter_mut().find(|o| o.point == **point) {
            Some(existing) => {
                if *fid > existing.fidelity {
                    existing.y = corrected;
                    existing.fidelity = *fid;
                }
            }
            None => out.push(TransferredObs {
                point: (*point).clone(),
                y: corrected,
                fidelity: *fid,
            }),
        }
    }
    out
}

/// Seeds `bo` with transferred observations. Returns how many the engine
/// accepted; rejects (dimension mismatch, non-finite) are counted on
/// `mf.warmstart_dropped` and skipped — a bad seed observation must never
/// abort a session.
pub fn seed_engine(bo: &mut BoEngine, observations: &[TransferredObs]) -> usize {
    let mut accepted = 0;
    for obs in observations {
        if bo.observe(obs.point.clone(), obs.y).is_ok() {
            accepted += 1;
        } else {
            robotune_obs::incr("mf.warmstart_dropped", 1);
        }
    }
    robotune_obs::incr("mf.warmstart_obs", accepted as u64);
    accepted
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::{Configuration, ParamValue};
    use robotune_tuners::Evaluation;

    fn cfg() -> Configuration {
        Configuration::new(vec![ParamValue::Int(1)])
    }

    fn push(
        s: &mut TuningSession,
        point: Vec<f64>,
        t: f64,
        fid: Fidelity,
        completed: bool,
    ) {
        let e = if completed {
            Evaluation::completed(t)
        } else {
            Evaluation::capped(t)
        };
        s.push_at(point, cfg(), e, 480.0, fid);
    }

    #[test]
    fn paired_measurements_estimate_the_bias() {
        let mut s = TuningSession::new("mf");
        let q = Fidelity::new(0.25).unwrap();
        // Two configs measured at 1/4 and again at full, both 4.0× slower
        // at full; a third config only measured at 1/4.
        push(&mut s, vec![0.1], 10.0, q, true);
        push(&mut s, vec![0.2], 20.0, q, true);
        push(&mut s, vec![0.3], 30.0, q, true);
        push(&mut s, vec![0.1], 40.0, Fidelity::FULL, true);
        push(&mut s, vec![0.2], 80.0, Fidelity::FULL, true);
        let obs = bias_corrected_observations(&s);
        assert_eq!(obs.len(), 3);
        // Full-fidelity measurements pass through uncorrected.
        let o1 = obs.iter().find(|o| o.point == vec![0.1]).unwrap();
        assert_eq!(o1.y, 40.0);
        assert!(o1.fidelity.is_full());
        // The unpaired config is corrected by the median ratio (4.0).
        let o3 = obs.iter().find(|o| o.point == vec![0.3]).unwrap();
        assert!((o3.y - 120.0).abs() < 1e-9);
        assert_eq!(o3.fidelity, q);
    }

    #[test]
    fn no_pairs_falls_back_to_the_linear_prior() {
        let mut s = TuningSession::new("mf");
        let q = Fidelity::new(0.25).unwrap();
        push(&mut s, vec![0.1], 10.0, q, true);
        push(&mut s, vec![0.2], 100.0, Fidelity::FULL, true);
        let obs = bias_corrected_observations(&s);
        // Ratio falls back to 1.0 / 0.25 = 4.
        let o1 = obs.iter().find(|o| o.point == vec![0.1]).unwrap();
        assert!((o1.y - 40.0).abs() < 1e-9);
    }

    #[test]
    fn capped_and_failed_records_never_transfer() {
        let mut s = TuningSession::new("mf");
        let q = Fidelity::new(0.25).unwrap();
        push(&mut s, vec![0.1], 60.0, q, false);
        s.push_at(vec![0.2], cfg(), Evaluation::failed(5.0), 480.0, q);
        assert!(bias_corrected_observations(&s).is_empty());
    }

    #[test]
    fn all_low_fidelity_sessions_extrapolate_to_full() {
        let mut s = TuningSession::new("mf");
        let q = Fidelity::new(0.25).unwrap();
        push(&mut s, vec![0.1], 10.0, q, true);
        let obs = bias_corrected_observations(&s);
        assert_eq!(obs.len(), 1);
        // No level above 1/4 in the session: linear extrapolation ×4.
        assert!((obs[0].y - 40.0).abs() < 1e-9);
    }

    #[test]
    fn seeding_feeds_the_engine() {
        let mut bo = BoEngine::new(2, robotune_bo::BoOptions::default());
        let obs = vec![
            TransferredObs { point: vec![0.1, 0.2], y: 50.0, fidelity: Fidelity::FULL },
            TransferredObs { point: vec![0.3, 0.4], y: 60.0, fidelity: Fidelity::FULL },
            // Wrong dimension: dropped, not fatal.
            TransferredObs { point: vec![0.5], y: 70.0, fidelity: Fidelity::FULL },
        ];
        assert_eq!(seed_engine(&mut bo, &obs), 2);
        assert_eq!(bo.n_observations(), 2);
    }
}
