//! End-to-end smoke: eight concurrent tenants drive real sessions over
//! TCP against one persistent shared store; the daemon drains and
//! snapshots on shutdown; a rebooted daemon serves the same workloads
//! warm (selection-cache hits and memoized warm starts).

mod common;

use robotune_service::client::drive_session;
use robotune_service::{PersistentMemoStore, Profile, ServiceOptions, TuningClient};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, SparkJob, ALL_WORKLOADS};
use serde_json::Value;
use std::path::PathBuf;

const TENANTS: usize = 8;
const BUDGET: usize = 4;

fn store_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("robotune-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn drive_tenants(addr: std::net::SocketAddr, tenants: usize) -> Vec<robotune_service::DriveReport> {
    let space = std::sync::Arc::new(spark_space());
    let mut reports: Vec<Option<robotune_service::DriveReport>> = Vec::new();
    reports.resize_with(tenants, || None);
    std::thread::scope(|scope| {
        for (tenant, slot) in reports.iter_mut().enumerate() {
            let space = space.clone();
            scope.spawn(move || {
                let workload = ALL_WORKLOADS[tenant % ALL_WORKLOADS.len()];
                let key = format!("wl-{}", tenant % ALL_WORKLOADS.len());
                let mut job =
                    SparkJob::new((*space).clone(), workload, Dataset::D1, 7 + tenant as u64);
                let mut client = TuningClient::connect(addr).expect("tenant connects");
                let report = drive_session(
                    &mut client,
                    &space,
                    &mut job,
                    &key,
                    1000 + tenant as u64,
                    BUDGET,
                    Profile::Fast,
                )
                .expect("tenant session completes");
                *slot = Some(report);
            });
        }
    });
    reports.into_iter().map(|r| r.expect("every tenant reported")).collect()
}

#[test]
fn concurrent_tenants_then_restart_serves_warm() {
    let dir = store_dir();

    // --- Cold boot: 8 concurrent tenants ------------------------------
    let store = PersistentMemoStore::open(&dir).expect("open store").into_shared();
    let server = common::start(
        ServiceOptions { workers: TENANTS, ..ServiceOptions::default() },
        store,
    );
    let addr = server.addr;
    let reports = drive_tenants(addr, TENANTS);

    // Coherent per-session accounting, via the server's own books.
    let mut client = TuningClient::connect(addr).expect("connect for status");
    for report in &reports {
        assert_eq!(report.evals_recorded as usize, BUDGET, "{}", report.session);
        let status = client.session_status(&report.session).expect("session status");
        assert_eq!(status["state"].as_str(), Some("finished"));
        assert_eq!(status["asked"], status["observed"], "{}", report.session);
        assert_eq!(
            status["observed"].as_u64(),
            Some(report.evals_run),
            "server and client agree on evaluation counts"
        );
        assert_eq!(
            status["outcome"]["best_time_s"].as_f64(),
            report.best_time_s,
            "{}",
            report.session
        );
    }
    let status = client.status().expect("server status");
    assert_eq!(status["shutting_down"], Value::Bool(false));
    assert_eq!(
        status["sessions"].as_array().map(Vec::len),
        Some(TENANTS),
        "all sessions remain queryable"
    );
    assert!(
        status["store_workloads"].as_array().is_some_and(|w| !w.is_empty()),
        "the shared store learned workloads"
    );
    drop(client);

    // --- Drain-and-snapshot shutdown ----------------------------------
    server.shutdown();
    assert!(dir.join("store.meta.json").exists(), "shutdown must leave a v2 store");
    let checkpointed = (0..)
        .map(|i| dir.join(format!("shard-{i:02}")))
        .take_while(|d| d.is_dir())
        .any(|d| d.join("memo.snapshot.json").exists());
    assert!(checkpointed, "shutdown must checkpoint at least one shard snapshot");

    // --- Reboot on the same directory: every workload is warm ---------
    let store = PersistentMemoStore::open(&dir).expect("reopen store").into_shared();
    assert!(!store.workloads().is_empty(), "reboot must reload the store");
    let server = common::start(
        ServiceOptions { workers: ALL_WORKLOADS.len(), ..ServiceOptions::default() },
        store,
    );
    let warm_reports = drive_tenants(server.addr, ALL_WORKLOADS.len());
    let warm_hits = warm_reports.iter().filter(|r| r.cache_hit).count();
    let warm_starts = warm_reports.iter().filter(|r| r.warm_start).count();
    assert_eq!(
        warm_hits,
        ALL_WORKLOADS.len(),
        "every post-restart session must hit the reloaded selection cache"
    );
    assert!(
        warm_starts > 0,
        "memoized configurations must warm-start at least one session"
    );
    for report in &warm_reports {
        // Cache hits skip the 100-sample selection phase entirely.
        assert_eq!(
            report.evals_run as usize, BUDGET,
            "warm session runs exactly the budget"
        );
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
