//! Live introspection and the failure flight recorder, end to end over
//! the real TCP protocol: `metrics` (JSON and Prometheus), `health`,
//! and the JSONL dumps written when sessions are cancelled or trip
//! fault injection.
//!
//! Every test here runs with tracing enabled (null sink) and never
//! disables it — the tests share one process, and the transparency
//! guarantee is covered separately in `determinism.rs`.

mod common;

use robotune::InMemoryMemoStore;
use robotune_service::client::drive_session;
use robotune_service::{Profile, ServiceOptions, Suggestion, TuningClient, FLIGHT_FORMAT_VERSION};
use robotune_space::spark::spark_space;
use robotune_sparksim::{Dataset, FaultPlan, FaultProfile, SparkJob, Workload};
use serde_json::Value;
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn flight_opts(dir: &Path) -> ServiceOptions {
    ServiceOptions {
        workers: 1,
        flight_dir: Some(dir.to_path_buf()),
        ..ServiceOptions::default()
    }
}

/// Polls for the flight dump of `session` until the worker writes it.
fn wait_for_dump(dir: &Path, session: &str) -> String {
    let path = dir.join(format!("flight-{session}.jsonl"));
    let deadline = Instant::now() + Duration::from_secs(10);
    while Instant::now() < deadline {
        if let Ok(text) = std::fs::read_to_string(&path) {
            return text;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no flight dump at {} within 10s", path.display());
}

fn parse_dump(text: &str) -> Vec<Value> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| serde_json::from_str(l).expect("every dump line is JSON"))
        .collect()
}

#[test]
fn metrics_and_health_answer_over_the_wire() {
    robotune_obs::enable_null();
    let space = Arc::new(spark_space());
    let server = common::start(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    );
    let mut client = TuningClient::connect(server.addr).expect("connect");
    let mut job = SparkJob::new((*space).clone(), Workload::KMeans, Dataset::D1, 7);
    let report = drive_session(&mut client, &space, &mut job, "km", 31, 6, Profile::Fast)
        .expect("session completes");

    // Aggregate JSON view.
    let agg = client.metrics().expect("aggregate metrics");
    assert_eq!(agg["scope"].as_str(), Some("aggregate"));
    assert_eq!(agg["tracing_enabled"].as_bool(), Some(true));
    assert!(
        agg["counters"]["service.requests"].as_u64().unwrap_or(0) > 0,
        "aggregate counters include the service's own: {agg:?}"
    );

    // Per-session JSON view: scoped to this tenant only.
    let per = client.session_metrics(&report.session).expect("session metrics");
    assert_eq!(per["scope"].as_str(), Some(report.session.as_str()));
    assert!(per["counters"]["bo.observe"].as_u64().unwrap_or(0) > 0);
    assert!(per["hists"]["service.req_ns.suggest"]["count"].as_u64().unwrap_or(0) > 0);
    assert_eq!(
        per["counters"]["service.connections"].as_u64(),
        None,
        "a session scope must not see server-wide counters"
    );

    // Prometheus text, aggregate and per-session (labelled).
    let body = client.metrics_prometheus(None).expect("prometheus body");
    assert!(body.contains("# TYPE robotune_service_requests counter"), "{body}");
    let labelled = client
        .metrics_prometheus(Some(&report.session))
        .expect("labelled prometheus body");
    assert!(
        labelled.contains(&format!("session=\"{}\"", report.session)),
        "per-session exposition carries the session label: {labelled}"
    );
    assert!(labelled.contains("workload=\"km\""), "{labelled}");

    // Health: pressure, SLO windows, store.
    let h = client.health().expect("health");
    assert_eq!(h["status"].as_str(), Some("ok"));
    assert_eq!(h["workers"].as_u64(), Some(1));
    assert!(h["worker_utilization"].as_f64().is_some());
    assert!(h["slo"]["suggest"]["count"].as_u64().unwrap_or(0) > 0);
    assert!(h["slo"]["suggest"]["p50_ms"].as_f64().unwrap_or(-1.0) >= 0.0);
    assert!(h["store"]["wal_lag"].as_u64().is_some());
    assert_eq!(h["flight_recorder"], Value::Null);

    // Unknown session id is a typed protocol error, not a hang.
    assert!(client.session_metrics("s-99999").is_err());
    server.shutdown();
}

#[test]
fn cancelled_session_leaves_a_parseable_flight_dump() {
    robotune_obs::enable_null();
    let dir = std::env::temp_dir().join(format!("rt-flight-cancel-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = Arc::new(spark_space());
    let server = common::start(flight_opts(&dir), InMemoryMemoStore::new().into_shared());
    let mut client = TuningClient::connect(server.addr).expect("connect");

    let session = client
        .create_session("km", "spark", 5, 8, Profile::Fast)
        .expect("create session");
    // Pull one real suggestion so the trajectory has at least one ask.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match client.suggest(&session, &space).expect("suggest") {
            Suggestion::Config { .. } => break,
            Suggestion::Queued if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("unexpected suggestion {other:?}"),
        }
    }
    client.close_session(&session).expect("cancel");

    let lines = parse_dump(&wait_for_dump(&dir, &session));
    let header = &lines[0];
    assert_eq!(header["kind"].as_str(), Some("flight"));
    assert_eq!(header["version"].as_i64(), Some(FLIGHT_FORMAT_VERSION));
    assert_eq!(header["session"].as_str(), Some(session.as_str()));
    assert_eq!(header["reason"].as_str(), Some("cancelled"));
    assert_eq!(header["workload"].as_str(), Some("km"));
    let footer = lines.last().expect("non-empty dump");
    assert_eq!(footer["kind"].as_str(), Some("recorder"));
    let kind_count =
        |k: &str| lines.iter().filter(|l| l["kind"].as_str() == Some(k)).count();
    assert_eq!(kind_count("stats"), 1);
    assert_eq!(kind_count("counters"), 1);
    assert_eq!(kind_count("fault_counters"), 1);
    assert!(kind_count("ask") >= 1, "trajectory records the pulled ask");
    assert!(kind_count("event") > 0, "scope ring captured events");
    // Ask lines decode: each carries a config object.
    for l in lines.iter().filter(|l| l["kind"].as_str() == Some("ask")) {
        assert!(l["config"].as_object().is_some());
        assert!(l["cap_s"].as_f64().unwrap_or(-1.0) > 0.0);
    }
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fault_killed_session_leaves_a_dump_with_the_failure_story() {
    robotune_obs::enable_null();
    let dir = std::env::temp_dir().join(format!("rt-flight-fault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let space = Arc::new(spark_space());
    let server = common::start(flight_opts(&dir), InMemoryMemoStore::new().into_shared());
    let mut client = TuningClient::connect(server.addr).expect("connect");

    // A hostile fault plan guarantees failed evaluations at this budget.
    let mut job = SparkJob::new((*space).clone(), Workload::PageRank, Dataset::D1, 11)
        .with_faults(FaultPlan::from_profile(FaultProfile::Hostile, 11));
    let report = drive_session(&mut client, &space, &mut job, "pr", 11, 4, Profile::Fast)
        .expect("faulted session still completes");

    let lines = parse_dump(&wait_for_dump(&dir, &report.session));
    assert_eq!(lines[0]["reason"].as_str(), Some("fault_injection"));
    let stats = lines
        .iter()
        .find(|l| l["kind"].as_str() == Some("stats"))
        .expect("stats line");
    assert!(stats["failed"].as_u64().unwrap_or(0) > 0, "{stats:?}");
    // The retry layer runs server-side, so the scope's fault_counters
    // carry the retry story for the injected chaos.
    let fc = lines
        .iter()
        .find(|l| l["kind"].as_str() == Some("fault_counters"))
        .expect("fault_counters line");
    assert!(
        fc["counters"]["retry.attempt"].as_u64().unwrap_or(0) > 0,
        "retries recorded for injected faults: {fc:?}"
    );
    let asks = lines.iter().filter(|l| l["kind"].as_str() == Some("ask")).count();
    let tells = lines.iter().filter(|l| l["kind"].as_str() == Some("tell")).count();
    assert!(asks > 0 && tells > 0, "config trajectory present ({asks} asks, {tells} tells)");
    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
