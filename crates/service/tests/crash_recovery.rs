//! Crash-recovery torture tests for the sharded persistent memo store.
//!
//! Parent tests re-spawn this test binary as a child process with
//! `ROBOTUNE_STORE_CRASH` set so the store kills itself (via
//! `std::process::abort`) at a named point: mid-WAL-record at an
//! arbitrary byte offset, at a segment seal, or between the three
//! steps of a checkpoint (tmp write, rename, segment cleanup). The
//! child acknowledges each durable operation by appending its index to
//! `acks.log` *after* the store call returns, so the parent can assert
//! the recovered store holds **exactly** the acknowledged prefix of
//! operations — plus at most the single in-flight operation whose
//! append happened to complete before the abort.
//!
//! The child-side entry points (`crashtest_child`,
//! `crashtest_tuning_child`) are ordinary `#[test]`s that no-op unless
//! the corresponding `ROBOTUNE_CRASHTEST_*` env var is set, so a plain
//! `cargo test` run treats them as trivially green.

use robotune::{shard_of, ConcurrentMemoStore, RoboTune, RoboTuneOptions};
use robotune_service::{verify_store, PersistentMemoStore, StoreOptions};
use robotune_space::spark::spark_space;
use robotune_space::{ConfigSpace, Configuration, ParamValue};
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;
use robotune_tuners::{Evaluation, Objective};
use serde_json::Value;
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::Arc;

// ---------------------------------------------------------------------------
// The deterministic op stream shared by child (writer) and parent (checker)
// ---------------------------------------------------------------------------

/// Configuration for op `i`: distinct values per op, awkward float bit
/// patterns (including non-finite ones) so "recovered" can only mean
/// "bit-identical through the codec".
fn op_config(i: u64) -> Configuration {
    let f = match i % 7 {
        3 => f64::NAN,
        5 => f64::INFINITY,
        6 => f64::NEG_INFINITY,
        _ => 0.1 * i as f64 + 0.0625,
    };
    Configuration::new(vec![
        ParamValue::Int(i as i64),
        ParamValue::Float(f),
        ParamValue::Bool(i.is_multiple_of(2)),
        ParamValue::Cat((i % 3) as usize),
    ])
}

fn op_workload(i: u64) -> String {
    format!("w{i}")
}

fn op_time(i: u64) -> f64 {
    100.0 + i as f64
}

/// Applies op `i` to a store: even ops store a selection, odd ops
/// memoize a configuration. Every op targets its own workload so
/// presence checks are unambiguous.
fn apply_op(store: &dyn ConcurrentMemoStore, i: u64) {
    let wl = op_workload(i);
    if i.is_multiple_of(2) {
        store.put_selection(&wl, vec![format!("p{i}")]);
    } else {
        store.record_config(&wl, op_config(i), op_time(i));
    }
}

fn f64_bits_eq(a: f64, b: f64) -> bool {
    // NaNs are canonicalized by the codec; treat any NaN as equal.
    (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
}

fn value_bits_eq(a: &ParamValue, b: &ParamValue) -> bool {
    match (a, b) {
        (ParamValue::Int(x), ParamValue::Int(y)) => x == y,
        (ParamValue::Float(x), ParamValue::Float(y)) => f64_bits_eq(*x, *y),
        (ParamValue::Bool(x), ParamValue::Bool(y)) => x == y,
        (ParamValue::Cat(x), ParamValue::Cat(y)) => x == y,
        _ => false,
    }
}

/// Whether op `i` is present in the recovered store with exact values.
fn op_present(store: &PersistentMemoStore, i: u64) -> bool {
    let wl = op_workload(i);
    if i.is_multiple_of(2) {
        store.selection(&wl) == Some(vec![format!("p{i}")])
    } else {
        let recent = store.best_recent(&wl, usize::MAX);
        recent.len() == 1
            && f64_bits_eq(recent[0].1, op_time(i))
            && recent[0].0.len() == 4
            && recent[0]
                .0
                .values()
                .iter()
                .zip(op_config(i).values())
                .all(|(a, b)| value_bits_eq(a, b))
    }
}

// ---------------------------------------------------------------------------
// Child process: write ops, ack each one, die wherever the plan says
// ---------------------------------------------------------------------------

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn child_opts() -> StoreOptions {
    StoreOptions {
        shards: env_u64("CRASHTEST_SHARDS", 4) as usize,
        segment_max_bytes: env_u64("CRASHTEST_SEG", 1 << 20),
        compact_after_sealed: env_u64("CRASHTEST_CKPT_AFTER", u64::MAX),
    }
}

/// Child entry point: no-op unless spawned by a parent test below.
#[test]
fn crashtest_child() {
    if std::env::var("ROBOTUNE_CRASHTEST_CHILD").as_deref() != Ok("1") {
        return;
    }
    let dir = PathBuf::from(std::env::var("CRASHTEST_DIR").expect("CRASHTEST_DIR"));
    let base = env_u64("CRASHTEST_BASE", 0);
    let ops = env_u64("CRASHTEST_OPS", 40);
    let ckpt_every = env_u64("CRASHTEST_CKPT", 0);
    let store = PersistentMemoStore::open_with(&dir, child_opts()).expect("child open");
    let mut acks = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.log"))
        .expect("open acks.log");
    for i in base..base + ops {
        apply_op(&store, i);
        // The store's degraded flag distinguishes "durable" from
        // "served from memory only"; an ack is a durability claim.
        if store.status().degraded() {
            panic!("child went degraded at op {i}");
        }
        writeln!(acks, "{i}").expect("ack write");
        acks.flush().expect("ack flush");
        if ckpt_every > 0 && (i + 1) % ckpt_every == 0 {
            store.checkpoint().expect("child checkpoint");
        }
    }
}

/// Child entry point for the warm-start trajectory test: run one full
/// tuning session against the persistent store, acknowledge it, then
/// die in the middle of a checkpoint rename.
#[test]
fn crashtest_tuning_child() {
    if std::env::var("ROBOTUNE_CRASHTEST_TUNER").as_deref() != Ok("1") {
        return;
    }
    let dir = PathBuf::from(std::env::var("CRASHTEST_DIR").expect("CRASHTEST_DIR"));
    let store = PersistentMemoStore::open_with(&dir, tuning_opts()).expect("child open");
    let shared = store.into_shared();
    run_tuning_session(shared.clone(), Dataset::D1, None);
    fs::write(dir.join("tuned.ok"), "1").expect("ack session");
    // ROBOTUNE_STORE_CRASH=ckpt-rename:1 aborts inside this call.
    let _ = shared.checkpoint();
    panic!("checkpoint was expected to crash the child");
}

// ---------------------------------------------------------------------------
// Parent-side harness
// ---------------------------------------------------------------------------

struct ChildRun {
    crashed: bool,
    acked: Vec<u64>,
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "robotune-crash-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Spawns this very test binary filtered down to one child test, with
/// the crash plan in the environment, and collects the ack log.
fn run_child(test: &str, gate: &str, dir: &Path, crash: Option<&str>, envs: &[(&str, String)]) -> ChildRun {
    let exe = std::env::current_exe().expect("current_exe");
    let mut cmd = Command::new(exe);
    cmd.args([test, "--exact", "--nocapture", "--test-threads=1"])
        .env(gate, "1")
        .env("CRASHTEST_DIR", dir)
        .env_remove("ROBOTUNE_STORE_CRASH");
    if let Some(spec) = crash {
        cmd.env("ROBOTUNE_STORE_CRASH", spec);
    }
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn child");
    let acked = fs::read_to_string(dir.join("acks.log"))
        .unwrap_or_default()
        .lines()
        .map(|l| l.parse().expect("ack line"))
        .collect();
    ChildRun { crashed: !out.status.success(), acked }
}

/// The core invariant: after recovery the store holds a contiguous
/// prefix of the op stream that covers every acknowledged op and at
/// most one unacknowledged in-flight op, with bit-exact values, no
/// quarantined segments, and a clean `verify_store` report.
fn check_recovery(
    dir: &Path,
    opts: StoreOptions,
    base: u64,
    ops: u64,
    run: &ChildRun,
) -> PersistentMemoStore {
    // Acks are issued in order, so the log must be base..base+n.
    for (k, &i) in run.acked.iter().enumerate() {
        assert_eq!(i, base + k as u64, "ack log must be a contiguous prefix");
    }
    // Pre-recovery: verify tolerates a torn tail (warning), flags
    // nothing else.
    let report = verify_store(dir).expect("verify before recovery");
    assert_eq!(
        report["ok"],
        Value::Bool(true),
        "clean crashes must not corrupt the store: {}",
        serde_json::to_string(&report).expect("report json")
    );

    let store = PersistentMemoStore::open_with(dir, opts).expect("recovery must never fail");
    let present: Vec<bool> = (base..base + ops).map(|i| op_present(&store, i)).collect();
    let recovered = present.iter().rposition(|&p| p).map_or(0, |m| m as u64 + 1);
    for k in 0..ops {
        assert_eq!(
            present[k as usize],
            k < recovered,
            "recovered ops must form a contiguous prefix (op {}, prefix {recovered})",
            base + k
        );
    }
    let acked = run.acked.len() as u64;
    assert!(
        recovered >= acked,
        "acknowledged ops must survive recovery ({recovered} recovered < {acked} acked)"
    );
    assert!(
        recovered <= acked + 1,
        "at most the single in-flight op may appear beyond the acks \
         ({recovered} recovered vs {acked} acked)"
    );
    let status = store.status();
    assert_eq!(status.corrupt_segments(), 0, "clean crashes must not quarantine segments");
    assert!(!status.degraded(), "recovered store must not be degraded");
    store
}

fn ops_envs(ops: u64, shards: u64, seg: u64, ckpt: u64) -> Vec<(&'static str, String)> {
    vec![
        ("CRASHTEST_OPS", ops.to_string()),
        ("CRASHTEST_SHARDS", shards.to_string()),
        ("CRASHTEST_SEG", seg.to_string()),
        ("CRASHTEST_CKPT", ckpt.to_string()),
    ]
}

fn torture(tag: &str, crash: &str, ops: u64, shards: u64, seg: u64, ckpt: u64) -> (PathBuf, ChildRun) {
    let dir = temp_dir(tag);
    let run = run_child(
        "crashtest_child",
        "ROBOTUNE_CRASHTEST_CHILD",
        &dir,
        Some(crash),
        &ops_envs(ops, shards, seg, ckpt),
    );
    let opts = StoreOptions {
        shards: shards as usize,
        segment_max_bytes: seg,
        compact_after_sealed: u64::MAX,
    };
    let store = check_recovery(&dir, opts, 0, ops, &run);
    drop(store);
    (dir, run)
}

// ---------------------------------------------------------------------------
// Named kill points
// ---------------------------------------------------------------------------

#[test]
fn kill_mid_wal_record_at_arbitrary_byte_offsets() {
    // Each budget lands the abort inside a different record, partway
    // through its bytes; recovery truncates the torn tail.
    for (k, budget) in [137u64, 600, 1511, 4099].into_iter().enumerate() {
        let tag = format!("walbyte{k}");
        let (dir, run) = torture(&tag, &format!("wal-byte:{budget}"), 80, 4, 1 << 20, 0);
        assert!(run.crashed, "budget {budget} must kill the child mid-record");
        assert!(
            (run.acked.len() as u64) < 80,
            "budget {budget} must kill the child before it finishes"
        );
        let _ = fs::remove_dir_all(dir);
    }
}

#[test]
fn kill_at_segment_seal() {
    // Tiny segments force frequent rotation; die on the third seal.
    let (dir, run) = torture("seal", "seal:3", 60, 2, 256, 0);
    assert!(run.crashed, "the child must die at a segment seal");
    assert!(!run.acked.is_empty(), "some ops must land before the third seal");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn kill_mid_checkpoint_tmp_write() {
    let (dir, run) = torture("ckpt-tmp", "ckpt-tmp:2", 50, 3, 1 << 20, 7);
    assert!(run.crashed, "the child must die during the checkpoint tmp write");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn kill_mid_checkpoint_rename() {
    let (dir, run) = torture("ckpt-rename", "ckpt-rename:2", 50, 3, 1 << 20, 7);
    assert!(run.crashed, "the child must die between tmp write and rename");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn kill_mid_checkpoint_segment_cleanup() {
    // The snapshot is durable but only some sealed segments were
    // removed; LSN gating must keep replay idempotent.
    let (dir, run) = torture("ckpt-clean", "ckpt-clean:2", 60, 2, 512, 10);
    assert!(run.crashed, "the child must die during segment cleanup");
    let _ = fs::remove_dir_all(dir);
}

#[test]
fn double_crash_then_recovery() {
    // Crash once mid-record, recover, then crash the *recovered* store
    // again on a disjoint op range: recovery must compose.
    let dir = temp_dir("double");
    let first = run_child(
        "crashtest_child",
        "ROBOTUNE_CRASHTEST_CHILD",
        &dir,
        Some("wal-byte:600"),
        &ops_envs(40, 2, 1 << 20, 0),
    );
    assert!(first.crashed);
    let _ = fs::remove_file(dir.join("acks.log"));
    let mut envs = ops_envs(40, 2, 1 << 20, 0);
    envs.push(("CRASHTEST_BASE", "1000".to_string()));
    let second = run_child(
        "crashtest_child",
        "ROBOTUNE_CRASHTEST_CHILD",
        &dir,
        Some("wal-byte:2000"),
        &envs,
    );
    assert!(second.crashed, "the second run must also crash");
    let opts = StoreOptions { shards: 2, segment_max_bytes: 1 << 20, compact_after_sealed: u64::MAX };
    let store = check_recovery(&dir, opts, 1000, 40, &second);
    // Everything the first run acknowledged must have survived both
    // crashes and both recoveries.
    for &i in &first.acked {
        assert!(op_present(&store, i), "first-run acked op {i} lost after second crash");
    }
    drop(store);
    let _ = fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------------
// Randomized sweep over kill points and shard counts
// ---------------------------------------------------------------------------

mod sweep {
    use super::*;
    use proptest::prelude::*;

    fn crash_spec() -> impl Strategy<Value = String> {
        prop_oneof![
            (100u64..5000).prop_map(|b| format!("wal-byte:{b}")),
            (1u64..5).prop_map(|k| format!("seal:{k}")),
            (1u64..3).prop_map(|k| format!("ckpt-tmp:{k}")),
            (1u64..3).prop_map(|k| format!("ckpt-rename:{k}")),
            (1u64..3).prop_map(|k| format!("ckpt-clean:{k}")),
        ]
    }

    /// Local runs default to 12 cases (each one spawns a child
    /// process); the CI store-crash matrix widens the sweep through
    /// `PROPTEST_CASES`.
    fn sweep_cases() -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(12)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(sweep_cases()))]
        #[test]
        fn any_kill_point_recovers_the_acked_prefix(
            spec in crash_spec(),
            shards in 1u64..5,
            case in any::<u64>(),
        ) {
            let tag = format!("sweep{:x}", case & 0xffff_ffff);
            let dir = temp_dir(&tag);
            let run = run_child(
                "crashtest_child",
                "ROBOTUNE_CRASHTEST_CHILD",
                &dir,
                Some(&spec),
                &ops_envs(60, shards, 384, 9),
            );
            // Some specs never fire (e.g. a seal count past the run's
            // rotations); the invariant must hold either way.
            let opts = StoreOptions {
                shards: shards as usize,
                segment_max_bytes: 384,
                compact_after_sealed: u64::MAX,
            };
            let store = check_recovery(&dir, opts, 0, 60, &run);
            drop(store);
            let _ = fs::remove_dir_all(dir);
        }
    }
}

// ---------------------------------------------------------------------------
// Corruption: one bad shard must not take down the fleet
// ---------------------------------------------------------------------------

#[test]
fn corrupt_segment_quarantines_only_its_shard() {
    const SHARDS: usize = 4;
    const OPS: u64 = 40;
    let dir = temp_dir("corrupt");
    let opts = StoreOptions {
        shards: SHARDS,
        segment_max_bytes: 1 << 20,
        compact_after_sealed: u64::MAX,
    };
    {
        let store = PersistentMemoStore::open_with(&dir, opts.clone()).expect("open");
        for i in 0..OPS {
            apply_op(&store, i);
        }
    }
    // Route the op stream the way the store does, pick a shard with at
    // least three ops, and corrupt the checksum of its *second* data
    // record (mid-file, so this is corruption — not a torn tail).
    let mut ops_by_shard: Vec<Vec<u64>> = vec![Vec::new(); SHARDS];
    for i in 0..OPS {
        ops_by_shard[shard_of(&op_workload(i), SHARDS)].push(i);
    }
    let victim = (0..SHARDS)
        .find(|&s| ops_by_shard[s].len() >= 3)
        .expect("some shard holds at least three ops");
    let sdir = dir.join(format!("shard-{victim:02}"));
    let seg = fs::read_dir(&sdir)
        .expect("read shard dir")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.file_name().is_some_and(|n| n.to_string_lossy().starts_with("wal-")))
        .expect("victim shard has a segment");
    let text = fs::read_to_string(&seg).expect("read segment");
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    assert!(lines.len() >= 3, "need header + two data records");
    // Line 0 is the header; line 2 is the second data record. Stomp
    // its CRC field.
    let bad = if lines[2].starts_with("[\"00000000\"") {
        lines[2].replacen("00000000", "ffffffff", 1)
    } else {
        format!("[\"00000000{}", &lines[2][10..])
    };
    lines[2] = bad;
    fs::write(&seg, lines.join("\n") + "\n").expect("write corrupted segment");

    // verify (read-only) must detect and explain the corruption.
    let report = verify_store(&dir).expect("verify runs");
    assert_eq!(report["ok"], Value::Bool(false));
    let problems = serde_json::to_string(&report["problems"]).expect("problems json");
    assert!(
        problems.contains("checksum mismatch"),
        "verify must explain the corruption: {problems}"
    );

    // Boot must succeed: the victim shard keeps its pre-corruption
    // prefix, the segment is quarantined, and every other shard is
    // fully intact.
    let store = PersistentMemoStore::open_with(&dir, opts.clone()).expect("boot with corruption");
    for (s, ops) in ops_by_shard.iter().enumerate() {
        for (k, &i) in ops.iter().enumerate() {
            let expect = s != victim || k < 1;
            assert_eq!(
                op_present(&store, i),
                expect,
                "shard {s} op {i} (position {k}): victim was {victim}"
            );
        }
    }
    let status = store.status();
    assert!(status.corrupt_segments() >= 1, "quarantine must be reported in status");
    let quarantined: Vec<String> = fs::read_dir(dir.join("corrupt"))
        .expect("quarantine dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    assert!(
        quarantined.iter().any(|n| n.starts_with(&format!("shard-{victim:02}."))),
        "the bad segment must land in corrupt/: {quarantined:?}"
    );
    drop(store);

    // After recovery the quarantine is still surfaced by verify.
    let report = verify_store(&dir).expect("verify after recovery");
    assert_eq!(report["ok"], Value::Bool(false), "quarantine history keeps verify red");
    assert!(
        report["quarantined"].as_array().is_some_and(|q| !q.is_empty()),
        "verify must list quarantined files"
    );

    // A second boot is stable: nothing new is lost or quarantined.
    let store = PersistentMemoStore::open_with(&dir, opts).expect("second boot");
    assert_eq!(store.status().corrupt_segments(), 0, "corruption was already folded away");
    let _ = fs::remove_dir_all(dir);
}

// ---------------------------------------------------------------------------
// Warm-start trajectories after recovery are bit-identical
// ---------------------------------------------------------------------------

const TUNE_SEED: u64 = 99;
const TUNE_JOB_SEED: u64 = 7;
const TUNE_BUDGET: usize = 6;

fn tuning_opts() -> StoreOptions {
    StoreOptions { shards: 2, segment_max_bytes: 1 << 20, compact_after_sealed: u64::MAX }
}

/// One evaluation in exactly-comparable form: rendered config plus the
/// raw bits of cap and outcome.
type LogEntry = (String, u64, u64, bool, bool, bool);

struct Recorder<'a> {
    inner: &'a mut SparkJob,
    space: &'a ConfigSpace,
    log: Vec<LogEntry>,
}

impl Objective for Recorder<'_> {
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        let eval = self.inner.evaluate(config, cap_s);
        self.log.push((
            config.render(self.space),
            cap_s.to_bits(),
            eval.time_s.to_bits(),
            eval.completed,
            eval.failed,
            eval.transient,
        ));
        eval
    }
}

/// Runs one deterministic KMeans session against `store`; returns the
/// evaluation log and whether the session warm-started.
fn run_tuning_session(
    store: robotune::SharedMemoStore,
    dataset: Dataset,
    log: Option<&mut Vec<LogEntry>>,
) -> bool {
    let space = Arc::new(spark_space());
    let mut job = SparkJob::new((*space).clone(), Workload::KMeans, dataset, TUNE_JOB_SEED);
    let mut tuner = RoboTune::with_store(RoboTuneOptions::fast(), store);
    let mut rng = rng_from_seed(TUNE_SEED);
    match log {
        Some(entries) => {
            let mut recorder = Recorder { inner: &mut job, space: &space, log: Vec::new() };
            let outcome =
                tuner.tune_workload(&space, "kmeans", &mut recorder, TUNE_BUDGET, &mut rng);
            *entries = recorder.log;
            outcome.warm_start
        }
        None => {
            tuner
                .tune_workload(&space, "kmeans", &mut job, TUNE_BUDGET, &mut rng)
                .warm_start
        }
    }
}

#[test]
fn warm_start_after_crash_recovery_is_bit_identical_to_uninterrupted() {
    // Arm A: a child tunes one session, acknowledges it, then dies in
    // the middle of the post-session checkpoint's rename step.
    let dir_a = temp_dir("warm-a");
    let run = run_child(
        "crashtest_tuning_child",
        "ROBOTUNE_CRASHTEST_TUNER",
        &dir_a,
        Some("ckpt-rename:1"),
        &[],
    );
    assert!(run.crashed, "the tuning child must die mid-checkpoint");
    assert!(dir_a.join("tuned.ok").is_file(), "the session must finish before the crash");

    // Arm B: the same session, uninterrupted, in-process.
    let dir_b = temp_dir("warm-b");
    let store_b = PersistentMemoStore::open_with(&dir_b, tuning_opts())
        .expect("open arm B")
        .into_shared();
    let warm = run_tuning_session(store_b.clone(), Dataset::D1, None);
    assert!(!warm, "the first session is cold");

    // Recover arm A and drive an identical warm session on both arms.
    let store_a = PersistentMemoStore::open_with(&dir_a, tuning_opts())
        .expect("recover arm A")
        .into_shared();
    let mut log_a = Vec::new();
    let mut log_b = Vec::new();
    let warm_a = run_tuning_session(store_a, Dataset::D2, Some(&mut log_a));
    let warm_b = run_tuning_session(store_b, Dataset::D2, Some(&mut log_b));
    assert!(warm_a, "recovered store must warm-start");
    assert!(warm_b, "uninterrupted store must warm-start");
    assert!(!log_a.is_empty());
    assert_eq!(
        log_a, log_b,
        "warm-start trajectory after crash recovery must be bit-identical \
         to the uninterrupted store's"
    );
    let _ = fs::remove_dir_all(dir_a);
    let _ = fs::remove_dir_all(dir_b);
}
