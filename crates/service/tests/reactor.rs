//! Wire-level behavior of the nonblocking reactor core: pipelining,
//! slow writers, slow readers (write backpressure), overflow-at-EOF,
//! and drain semantics — everything ISSUE 8's connection-layer sweep
//! pinned down, exercised over real loopback TCP.

mod common;

use robotune::InMemoryMemoStore;
use robotune_service::{serve, ServiceOptions, SessionManager, MAX_FRAME_BYTES};
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const READ_TIMEOUT: Duration = Duration::from_secs(30);

/// One shared daemon for the cases that never shut it down (the test
/// process exits underneath it, as in wire.rs).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = common::start(
            ServiceOptions { workers: 1, ..ServiceOptions::default() },
            InMemoryMemoStore::new().into_shared(),
        );
        let addr = server.addr;
        std::mem::forget(server);
        addr
    })
}

fn connect(addr: SocketAddr) -> TcpStream {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(READ_TIMEOUT)).expect("read timeout");
    stream
}

fn status_frame(id: usize) -> String {
    format!("{{\"id\":{id},\"verb\":\"status\"}}\n")
}

fn read_json_line(reader: &mut BufReader<TcpStream>) -> Value {
    let mut line = String::new();
    let n = reader.read_line(&mut line).expect("read response line");
    assert!(n > 0, "server closed the connection instead of answering");
    serde_json::from_str(line.trim_end()).expect("response is JSON")
}

#[test]
fn n_pipelined_requests_in_one_segment_get_n_in_order_responses() {
    const N: usize = 64;
    let stream = connect(server_addr());
    let mut segment = String::new();
    for id in 0..N {
        segment.push_str(&status_frame(id));
    }
    // All N requests leave in one write: the reactor must reassemble
    // and answer them serially, in arrival order.
    (&stream).write_all(segment.as_bytes()).expect("write pipelined segment");
    let mut reader = BufReader::new(stream);
    for id in 0..N {
        let v = read_json_line(&mut reader);
        assert_eq!(v["ok"], Value::Bool(true), "request {id}: {v:?}");
        assert_eq!(v["id"].as_u64(), Some(id as u64), "responses must be in order");
    }
}

#[test]
fn frame_dribbled_one_byte_per_write_is_reassembled() {
    let stream = connect(server_addr());
    stream.set_nodelay(true).expect("nodelay");
    let frame = status_frame(4242);
    for &b in frame.as_bytes() {
        (&stream).write_all(&[b]).expect("write one byte");
        (&stream).flush().expect("flush");
    }
    let mut reader = BufReader::new(stream);
    let v = read_json_line(&mut reader);
    assert_eq!(v["ok"], Value::Bool(true), "{v:?}");
    assert_eq!(v["id"].as_u64(), Some(4242));
}

#[test]
fn overflow_then_eof_is_a_silent_close_not_an_error_frame() {
    // Regression (ISSUE 8 satellite): the old reader returned TooLong
    // at EOF and wrote `frame_too_large` to a peer that had already
    // hung up. An oversized, never-terminated frame followed by EOF
    // must now produce no bytes at all.
    let stream = connect(server_addr());
    let huge = vec![b'z'; MAX_FRAME_BYTES + 4096];
    (&stream).write_all(&huge).expect("write oversized partial");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut tail = Vec::new();
    let n = (&stream).read_to_end(&mut tail).expect("read until server closes");
    assert_eq!(n, 0, "no error frame may follow EOF, got: {:?}", String::from_utf8_lossy(&tail));
}

#[test]
fn final_unterminated_frame_still_gets_an_answer_at_eof() {
    // The flip side of the overflow case: a *well-formed* last request
    // whose client forgot the trailing newline keeps being served.
    let stream = connect(server_addr());
    (&stream).write_all(br#"{"id":7,"verb":"status"}"#).expect("write partial");
    stream.shutdown(Shutdown::Write).expect("half-close");
    let mut reader = BufReader::new(stream);
    let v = read_json_line(&mut reader);
    assert_eq!(v["ok"], Value::Bool(true), "{v:?}");
    assert_eq!(v["id"].as_u64(), Some(7));
}

#[test]
fn drain_answers_fully_buffered_pipelined_requests_before_close() {
    // Regression (ISSUE 8 satellite): shutdown used to race buffered
    // frames — `read_frame` reported Shutdown even with a request
    // fully received. Here the shutdown verb and a trailing status
    // request leave in ONE segment; the drain must answer both, then
    // close without waiting for client EOF, and `serve` must return.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let manager = Arc::new(SessionManager::new(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    ));
    let m = manager.clone();
    let server = std::thread::spawn(move || serve(listener, &m));

    let stream = connect(addr);
    (&stream)
        .write_all(b"{\"id\":1,\"verb\":\"shutdown\"}\n{\"id\":2,\"verb\":\"status\"}\n")
        .expect("write shutdown+status in one segment");
    let mut reader = BufReader::new(stream);
    let v = read_json_line(&mut reader);
    assert_eq!(v["id"].as_u64(), Some(1));
    assert_eq!(v["ok"], Value::Bool(true), "shutdown accepted: {v:?}");
    let v = read_json_line(&mut reader);
    assert_eq!(v["id"].as_u64(), Some(2), "buffered pipelined request answered in drain");
    assert_eq!(v["ok"], Value::Bool(true), "{v:?}");
    // The server initiates the close (we never sent EOF).
    let mut tail = String::new();
    let n = reader.read_line(&mut tail).expect("server closes after drain");
    assert_eq!(n, 0, "no frames after the drained ones: {tail:?}");
    server
        .join()
        .expect("server thread must not panic")
        .expect("serve exits cleanly after drain");
    assert!(manager.is_shutting_down());
}

#[test]
fn slow_reader_trips_backpressure_without_wedging_the_reactor() {
    // A peer that pipelines thousands of requests but never reads fills
    // its response buffer; the reactor must throttle *that* connection
    // (inbox cap + write watermark) while other tenants stay live —
    // and once the slacker finally reads, every response arrives in
    // order.
    const REQUESTS: usize = 4000;
    let server = common::start(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    );
    let addr = server.addr;

    let slacker = connect(addr);
    let writer = slacker.try_clone().expect("clone for writer");
    let pump = std::thread::spawn(move || {
        // May block mid-way once kernel buffers and the server's inbox
        // cap fill up — that is the point; it must unblock eventually.
        let mut segment = Vec::new();
        for id in 0..REQUESTS {
            segment.extend_from_slice(status_frame(id).as_bytes());
        }
        (&writer).write_all(&segment).expect("write flood");
        writer.shutdown(Shutdown::Write).expect("half-close");
    });

    // While the slacker's backlog builds, an innocent tenant must get
    // prompt service on the same reactor.
    let bystander = connect(addr);
    let mut bystander_reader = BufReader::new(bystander.try_clone().expect("clone"));
    for id in 0..20 {
        (&bystander).write_all(status_frame(id).as_bytes()).expect("bystander write");
        let v = read_json_line(&mut bystander_reader);
        assert_eq!(v["id"].as_u64(), Some(id as u64), "reactor wedged: {v:?}");
    }
    drop(bystander_reader);
    drop(bystander);

    // Now drain the flood: all responses, in order, nothing lost.
    let mut reader = BufReader::new(slacker);
    for id in 0..REQUESTS {
        let v = read_json_line(&mut reader);
        assert_eq!(v["id"].as_u64(), Some(id as u64), "response {id} out of order");
    }
    pump.join().expect("writer thread");
    server.shutdown();
}
