//! Shared test scaffolding: boot a real daemon on a loopback port.

#![allow(dead_code)]

use robotune::SharedMemoStore;
use robotune_service::{serve, ServiceOptions, SessionManager, TuningClient};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A live daemon on 127.0.0.1 with an OS-assigned port.
pub struct TestServer {
    /// Address clients should connect to.
    pub addr: SocketAddr,
    /// The manager, for white-box assertions.
    pub manager: Arc<SessionManager>,
    handle: JoinHandle<std::io::Result<()>>,
}

/// Boots a daemon and returns once it is accepting connections.
pub fn start(opts: ServiceOptions, store: SharedMemoStore) -> TestServer {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let manager = Arc::new(SessionManager::new(opts, store));
    let m = manager.clone();
    let handle = std::thread::spawn(move || serve(listener, &m));
    TestServer { addr, manager, handle }
}

impl TestServer {
    /// Sends the shutdown verb and joins the server thread, asserting
    /// a clean drain.
    pub fn shutdown(self) {
        let mut client = TuningClient::connect(self.addr).expect("connect for shutdown");
        client.shutdown().expect("shutdown verb accepted");
        self.handle
            .join()
            .expect("server thread must not panic")
            .expect("serve must exit cleanly");
    }
}
