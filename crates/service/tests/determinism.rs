//! The service's core guarantee: a served trajectory is bit-identical
//! to an in-process `tune_workload` run at the same seed.
//!
//! Both arms evaluate the same simulated Spark job. The in-process arm
//! calls the pipeline directly; the served arm drives it through the
//! full TCP protocol (create → suggest → evaluate client-side →
//! observe → … → finished). A recording objective wraps both jobs and
//! logs every evaluation as (rendered config, cap bits, time bits,
//! flags); the two logs must match entry for entry.

mod common;

use robotune::{InMemoryMemoStore, RoboTune, RoboTuneOptions};
use robotune_service::client::drive_session;
use robotune_service::{Profile, ServiceOptions, TuningClient};
use robotune_space::spark::spark_space;
use robotune_space::{ConfigSpace, Configuration};
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_stats::rng_from_seed;
use robotune_tuners::{Evaluation, Objective};
use std::sync::Arc;

const SEED: u64 = 1234;
const BUDGET: usize = 8;
const JOB_SEED: u64 = 42;

/// One evaluation, in exactly-comparable form.
type LogEntry = (String, u64, u64, bool, bool, bool);

struct Recorder<'a> {
    inner: &'a mut SparkJob,
    space: &'a ConfigSpace,
    log: Vec<LogEntry>,
}

impl Objective for Recorder<'_> {
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        let eval = self.inner.evaluate(config, cap_s);
        self.log.push((
            config.render(self.space),
            cap_s.to_bits(),
            eval.time_s.to_bits(),
            eval.completed,
            eval.failed,
            eval.transient,
        ));
        eval
    }
}

fn job(space: &Arc<ConfigSpace>) -> SparkJob {
    SparkJob::new((**space).clone(), Workload::KMeans, Dataset::D1, JOB_SEED)
}

#[test]
fn served_trajectory_is_bit_identical_to_in_process() {
    let space = Arc::new(spark_space());

    // --- In-process reference run -------------------------------------
    let mut reference_job = job(&space);
    let mut reference = Recorder { inner: &mut reference_job, space: &space, log: Vec::new() };
    let mut tuner = RoboTune::new(RoboTuneOptions::fast());
    let mut rng = rng_from_seed(SEED);
    let reference_out = tuner.tune_workload(&space, "km", &mut reference, BUDGET, &mut rng);
    let reference_log = reference.log;
    assert_eq!(reference_out.session.len(), BUDGET);

    // --- Served run over the real TCP protocol ------------------------
    let server = common::start(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    );
    let mut served_job = job(&space);
    let mut served = Recorder { inner: &mut served_job, space: &space, log: Vec::new() };
    let mut client = TuningClient::connect(server.addr).expect("connect");
    let report = drive_session(&mut client, &space, &mut served, "km", SEED, BUDGET, Profile::Fast)
        .expect("served session completes");
    let served_log = served.log;
    server.shutdown();

    // --- Bit-exact comparison -----------------------------------------
    assert_eq!(report.evals_recorded as usize, BUDGET);
    assert_eq!(
        reference_log.len(),
        served_log.len(),
        "same number of objective evaluations (selection included)"
    );
    for (i, (r, s)) in reference_log.iter().zip(&served_log).enumerate() {
        assert_eq!(r, s, "evaluation {i} diverged");
    }
    assert_eq!(
        reference_out.session.best_time().map(f64::to_bits),
        report.best_time_s.map(f64::to_bits),
        "best time must agree to the bit"
    );
    assert_eq!(reference_out.warm_start, report.warm_start);
    assert_eq!(reference_out.selection.is_none(), report.cache_hit);
}

/// Drives one served session against a fresh daemon and returns the
/// evaluation log, the best-time bits, and the session's scoped
/// counters as the server reported them.
fn served_run(space: &Arc<ConfigSpace>) -> (Vec<LogEntry>, Option<u64>, serde_json::Value) {
    let server = common::start(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    );
    let mut served_job = job(space);
    let mut served = Recorder { inner: &mut served_job, space, log: Vec::new() };
    let mut client = TuningClient::connect(server.addr).expect("connect");
    let report = drive_session(&mut client, space, &mut served, "km", SEED, BUDGET, Profile::Fast)
        .expect("served session completes");
    let metrics = client
        .session_metrics(&report.session)
        .expect("session metrics answer");
    server.shutdown();
    (served.log, report.best_time_s.map(f64::to_bits), metrics)
}

/// The tentpole's transparency bar: turning scoped telemetry on (ring
/// sink installed, every session's scope entered by its worker) must
/// not move a single bit of the served trajectory.
#[test]
fn scoped_telemetry_is_bit_transparent() {
    let space = Arc::new(spark_space());

    robotune_obs::disable();
    let (log_off, best_off, metrics_off) = served_run(&space);

    let _ring = robotune_obs::enable_ring(1024);
    let (log_on, best_on, metrics_on) = served_run(&space);
    robotune_obs::disable();

    assert_eq!(log_off.len(), log_on.len(), "same number of evaluations");
    for (i, (off, on)) in log_off.iter().zip(&log_on).enumerate() {
        assert_eq!(off, on, "evaluation {i} diverged with telemetry on");
    }
    assert_eq!(best_off, best_on, "best time must agree to the bit");

    // And the telemetry itself must be live in the on arm: the session
    // scope attributed the pipeline's counters (the off arm has none).
    let count = |m: &serde_json::Value, name: &str| m["counters"][name].as_u64().unwrap_or(0);
    let n_counters = |m: &serde_json::Value| {
        m["counters"].as_object().map_or(0, |c| c.len())
    };
    assert_eq!(n_counters(&metrics_off), 0, "off arm must record nothing");
    assert!(
        count(&metrics_on, "bo.observe") > 0,
        "on arm attributes BO observations: {metrics_on:?}"
    );
    assert!(
        metrics_on["hists"]["service.req_ns.suggest"]["count"].as_u64().unwrap_or(0) > 0,
        "connection threads attribute request latencies to the session"
    );
    assert!(
        metrics_on["scope"].as_str().unwrap_or("").starts_with("s-"),
        "per-session metrics answer with the session scope"
    );
}
