//! Wire robustness: malformed, truncated, and oversized frames must
//! each get a typed protocol error — and must never panic a server
//! thread or wedge the connection.
//!
//! One daemon serves every case; after each hostile frame the same
//! connection issues a valid `status` request and must get a healthy
//! answer, proving the framing layer resynchronised.

mod common;

use proptest::prelude::*;
use robotune::InMemoryMemoStore;
use robotune_service::{ServiceOptions, MAX_FRAME_BYTES};
use serde_json::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::OnceLock;

/// One shared daemon for the whole file. Never shut down: the test
/// process exits underneath it, which is exactly the abrupt-death case
/// the WAL is for (no store is attached here anyway).
fn server_addr() -> SocketAddr {
    static ADDR: OnceLock<SocketAddr> = OnceLock::new();
    *ADDR.get_or_init(|| {
        let server = common::start(
            ServiceOptions { workers: 1, ..ServiceOptions::default() },
            InMemoryMemoStore::new().into_shared(),
        );
        let addr = server.addr;
        std::mem::forget(server);
        addr
    })
}

struct RawConn {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl RawConn {
    fn open() -> Self {
        let stream = TcpStream::connect(server_addr()).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        RawConn { reader: BufReader::new(stream), writer }
    }

    fn send_raw(&mut self, bytes: &[u8]) {
        self.writer.write_all(bytes).expect("write frame");
        self.writer.write_all(b"\n").expect("write newline");
        self.writer.flush().expect("flush");
    }

    fn read_response(&mut self) -> Value {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "server closed the connection instead of answering");
        serde_json::from_str(line.trim_end()).expect("response must be valid JSON")
    }

    /// The liveness probe: a valid status must still work.
    fn assert_usable(&mut self) {
        self.send_raw(br#"{"verb":"status"}"#);
        let v = self.read_response();
        assert_eq!(v["ok"], Value::Bool(true), "connection wedged: {v:?}");
    }
}

fn assert_typed_error(v: &Value) {
    assert_eq!(v["ok"], Value::Bool(false), "hostile frame must not succeed: {v:?}");
    let code = v["error"]["code"].as_str().unwrap_or("");
    assert!(!code.is_empty(), "error must carry a typed code: {v:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_bytes_get_typed_errors_and_never_wedge(
        raw in proptest::collection::vec(0u32..256, 0..240),
    ) {
        // Newlines would split the garbage into several frames; fold
        // them away so one frame goes out.
        let bytes: Vec<u8> = raw.iter().map(|&b| {
            let b = b as u8;
            if b == b'\n' || b == b'\r' { b'x' } else { b }
        }).collect();
        let mut conn = RawConn::open();
        // Blank frames are skipped by design and get no response.
        let is_blank = std::str::from_utf8(&bytes).map(|s| s.trim().is_empty()).unwrap_or(false);
        if !is_blank {
            conn.send_raw(&bytes);
            let v = conn.read_response();
            // Random bytes cannot spell a full valid verb frame; every
            // answer is a typed refusal.
            assert_typed_error(&v);
        }
        conn.assert_usable();
    }

    #[test]
    fn truncated_valid_requests_are_refused_not_fatal(cut in 1usize..70) {
        let full = r#"{"id":9,"verb":"create_session","workload":"km","space":"spark","seed":3,"budget":20}"#;
        let cut = cut.min(full.len() - 1);
        let mut conn = RawConn::open();
        conn.send_raw(&full.as_bytes()[..cut]);
        assert_typed_error(&conn.read_response());
        conn.assert_usable();
    }
}

#[test]
fn oversized_frames_are_rejected_before_parsing() {
    let mut conn = RawConn::open();
    let huge = vec![b'a'; MAX_FRAME_BYTES + 64];
    conn.send_raw(&huge);
    let v = conn.read_response();
    assert_eq!(v["error"]["code"].as_str(), Some("frame_too_large"));
    conn.assert_usable();
}

#[test]
fn deep_nesting_is_rejected_by_parse_limits() {
    let mut frame = String::from(r#"{"verb":"#);
    frame.push_str(&"[".repeat(200));
    frame.push_str(&"]".repeat(200));
    frame.push('}');
    let mut conn = RawConn::open();
    conn.send_raw(frame.as_bytes());
    let v = conn.read_response();
    assert_eq!(v["error"]["code"].as_str(), Some("malformed_frame"));
    conn.assert_usable();
}

#[test]
fn non_utf8_frames_are_refused() {
    let mut conn = RawConn::open();
    conn.send_raw(&[0xff, 0xfe, 0x80, b'{', b'}']);
    let v = conn.read_response();
    assert_eq!(v["error"]["code"].as_str(), Some("malformed_frame"));
    conn.assert_usable();
}

#[test]
fn wrong_field_types_get_field_level_codes() {
    let mut conn = RawConn::open();
    for (frame, code) in [
        (r#"{"verb":"observe","session":5,"time_s":1.0,"status":"completed"}"#, "invalid_field"),
        (r#"{"verb":"observe","session":"s-1","time_s":1.0}"#, "missing_field"),
        (r#"{"verb":"create_session","workload":"a","space":"spark","seed":-3,"budget":5}"#, "invalid_field"),
        (r#"{"verb":17}"#, "unknown_verb"),
        (r#"42"#, "malformed_frame"),
    ] {
        conn.send_raw(frame.as_bytes());
        let v = conn.read_response();
        assert_eq!(v["error"]["code"].as_str(), Some(code), "frame {frame}");
    }
    conn.assert_usable();
}
