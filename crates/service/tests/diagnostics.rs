//! Tentpole acceptance tests for the diagnostics layer.
//!
//! Three bars, all over the real TCP protocol:
//!
//! 1. **Bit transparency** — running the same seeded session with the
//!    full telemetry stack on (Chrome trace sink, causal trace
//!    propagation, diag emission) must not move a single bit of the
//!    served trajectory relative to a telemetry-off run.
//! 2. **Connected flow** — the trace minted at `service.frame_read`
//!    must be observable on the GP hyperfit spans deep inside the
//!    session worker, every cross-thread `link` must resolve to a real
//!    span, and the rendered Chrome trace must pair every flow `f`
//!    with its `s`.
//! 3. **Schema stability** — the `diagnose` answer's key skeleton is
//!    pinned by a golden file (`tests/golden/diagnose_schema.txt`).
//!    Regenerate with
//!    `UPDATE_GOLDEN=1 cargo test -p robotune-service --test diagnostics`
//!    and review the diff.
//!
//! The budget is set past the 20-point initial design so the served
//! loop reaches real BO iterations (GP fits, acquisition suggests) and
//! the diag series have something to say.

mod common;

use robotune::InMemoryMemoStore;
use robotune_service::client::drive_session;
use robotune_service::{Profile, ServiceOptions, TuningClient, DIAGNOSE_SCHEMA};
use robotune_space::spark::spark_space;
use robotune_space::{ConfigSpace, Configuration};
use robotune_sparksim::{Dataset, SparkJob, Workload};
use robotune_tuners::{Evaluation, Objective};
use serde_json::Value;
use std::sync::{Arc, Mutex, OnceLock};

const SEED: u64 = 2024;
const BUDGET: usize = 24;
const JOB_SEED: u64 = 42;

/// One evaluation, in exactly-comparable form.
type LogEntry = (String, u64, u64, bool, bool, bool);

struct Recorder<'a> {
    inner: &'a mut SparkJob,
    space: &'a ConfigSpace,
    log: Vec<LogEntry>,
}

impl Objective for Recorder<'_> {
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        let eval = self.inner.evaluate(config, cap_s);
        self.log.push((
            config.render(self.space),
            cap_s.to_bits(),
            eval.time_s.to_bits(),
            eval.completed,
            eval.failed,
            eval.transient,
        ));
        eval
    }
}

/// Tests in this file flip process-global telemetry state; serialize
/// them so parallel test threads cannot observe each other's sinks.
fn telemetry_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Drives one served session and returns the evaluation log, the
/// best-time bits, and the server's `diagnose` answer for it.
fn served_run(space: &Arc<ConfigSpace>) -> (Vec<LogEntry>, Option<u64>, Value) {
    let server = common::start(
        ServiceOptions { workers: 1, ..ServiceOptions::default() },
        InMemoryMemoStore::new().into_shared(),
    );
    let mut served_job = SparkJob::new((**space).clone(), Workload::KMeans, Dataset::D1, JOB_SEED);
    let mut served = Recorder { inner: &mut served_job, space, log: Vec::new() };
    let mut client = TuningClient::connect(server.addr).expect("connect");
    let report = drive_session(&mut client, space, &mut served, "km", SEED, BUDGET, Profile::Fast)
        .expect("served session completes");
    let diag = client.diagnose(&report.session).expect("diagnose answer");
    server.shutdown();
    (served.log, report.best_time_s.map(f64::to_bits), diag)
}

#[test]
fn tracing_and_diag_are_bit_transparent_and_causally_connected() {
    let _guard = telemetry_lock();
    let space = Arc::new(spark_space());

    robotune_obs::disable();
    let (log_off, best_off, diag_off) = served_run(&space);

    let sink = Arc::new(robotune_obs::ChromeTraceSink::default());
    robotune_obs::enable(sink.clone());
    let (log_on, best_on, diag_on) = served_run(&space);
    robotune_obs::disable();

    // --- Bit transparency ---------------------------------------------
    assert_eq!(log_off.len(), log_on.len(), "same number of evaluations");
    for (i, (off, on)) in log_off.iter().zip(&log_on).enumerate() {
        assert_eq!(off, on, "evaluation {i} diverged with tracing + diag on");
    }
    assert_eq!(best_off, best_on, "best time must agree to the bit");

    // --- The diagnostics themselves must be live on the on arm --------
    assert_eq!(diag_on["schema"].as_str(), Some(DIAGNOSE_SCHEMA));
    assert_eq!(diag_off["schema"].as_str(), Some(DIAGNOSE_SCHEMA));
    let series = diag_on["series"].as_object().expect("series object");
    for name in ["diag.gp.fit", "diag.bo.suggest", "diag.bo.observe"] {
        let points = series
            .get(name)
            .and_then(Value::as_array)
            .unwrap_or_else(|| panic!("series {name} present: {diag_on:?}"));
        assert!(!points.is_empty(), "series {name} non-empty");
    }
    assert!(diag_on["summary"]["gp_fits"].as_u64().unwrap_or(0) > 0, "summary counts GP fits");
    assert!(diag_on["summary"]["bo_rounds"].as_u64().unwrap_or(0) > 0, "summary counts BO rounds");
    assert!(
        diag_on["summary"]["incumbent"].as_f64().is_some(),
        "summary carries the incumbent best"
    );
    // The off arm records nothing — the scope ring only fills while
    // tracing is enabled.
    assert_eq!(
        diag_off["series"].as_object().map_or(0, |s| s.len()),
        0,
        "off arm must have no diag series: {diag_off:?}"
    );

    // --- Connected causal flow ----------------------------------------
    // The `service.frame_read` span is each trace's root: it opens
    // *before* the mint, so its own start carries trace 0 and every
    // downstream span links back to its id. A trace is "wire-rooted"
    // when some span under it links directly to a frame-read span.
    let events = sink.events();
    let mut span_ids = std::collections::BTreeSet::new();
    let mut frame_ids = std::collections::BTreeSet::new();
    let mut links = Vec::new();
    let mut gp_fit_traces = std::collections::BTreeSet::new();
    for e in &events {
        if let robotune_obs::EventData::SpanStart { name, id, trace, link, .. } = e.data {
            span_ids.insert(id);
            if link != 0 {
                links.push((trace, link));
            }
            if name == "service.frame_read" {
                frame_ids.insert(id);
            }
            if name.starts_with("gp.hyperfit") && trace != 0 {
                gp_fit_traces.insert(trace);
            }
        }
    }
    let wire_traces: std::collections::BTreeSet<u64> = links
        .iter()
        .filter(|(trace, link)| *trace != 0 && frame_ids.contains(link))
        .map(|(trace, _)| *trace)
        .collect();
    assert!(!frame_ids.is_empty(), "served run must record frame reads");
    assert!(!wire_traces.is_empty(), "dispatch spans must link back to frame reads");
    assert!(!gp_fit_traces.is_empty(), "served run must record traced GP fits");
    assert!(
        gp_fit_traces.iter().any(|t| wire_traces.contains(t)),
        "a trace minted at the wire must reach a GP fit: \
         wire={wire_traces:?} gp={gp_fit_traces:?}"
    );
    assert!(!links.is_empty(), "cross-thread handoffs must record links");
    for (name, link) in &links {
        assert!(span_ids.contains(link), "span {name} links to unknown span id {link}");
    }

    // --- Rendered Chrome trace pairs every flow f with its s ----------
    let rendered: Value =
        serde_json::from_str(&sink.render()).expect("trace renders as valid JSON");
    let records = rendered["traceEvents"].as_array().expect("traceEvents array");
    let ids_of = |ph: &str| -> Vec<u64> {
        records
            .iter()
            .filter(|r| r["ph"].as_str() == Some(ph))
            .filter_map(|r| r["id"].as_u64())
            .collect()
    };
    let flow_starts = ids_of("s");
    let flow_ends = ids_of("f");
    assert!(!flow_ends.is_empty(), "trace must contain flow arrows");
    for id in &flow_ends {
        assert!(flow_starts.contains(id), "flow f id {id} has no matching s");
    }
}

/// Renders the recursive key skeleton of a JSON value: object keys in
/// sorted order, arrays collapsed to their first element's skeleton.
/// Scalar leaves render as `.` so the golden pins structure, not the
/// (numeric, seed-dependent) payloads.
fn skeleton(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    match v {
        Value::Object(m) => {
            let mut keys: Vec<&String> = m.iter().map(|(k, _)| k).collect();
            keys.sort();
            for k in keys {
                let child = m.get(k).expect("key just listed");
                match child {
                    Value::Object(_) | Value::Array(_) => {
                        out.push_str(&format!("{pad}{k}:\n"));
                        skeleton(child, indent + 1, out);
                    }
                    _ => out.push_str(&format!("{pad}{k}: .\n")),
                }
            }
        }
        Value::Array(items) => match items.first() {
            Some(first) => {
                out.push_str(&format!("{pad}[{}]\n", items.len().min(1)));
                skeleton(first, indent + 1, out);
            }
            None => out.push_str(&format!("{pad}[]\n")),
        },
        _ => out.push_str(&format!("{pad}.\n")),
    }
}

#[test]
fn diagnose_schema_matches_golden() {
    let _guard = telemetry_lock();
    let space = Arc::new(spark_space());

    let _ring = robotune_obs::enable_ring(4096);
    let (_, _, diag) = served_run(&space);
    robotune_obs::disable();

    let mut got = String::new();
    skeleton(&diag, 0, &mut got);

    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/diagnose_schema.txt");
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(golden_path).expect(
        "golden missing: regenerate with UPDATE_GOLDEN=1 \
         cargo test -p robotune-service --test diagnostics",
    );
    assert_eq!(
        got, want,
        "diagnose answer skeleton drifted from tests/golden/diagnose_schema.txt \
         (regenerate with UPDATE_GOLDEN=1 and review the diff)"
    );
}
