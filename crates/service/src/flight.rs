//! The failure flight recorder: black-box JSONL post-mortems for
//! sessions that die badly.
//!
//! Every [`ServedSession`](crate::session::ServedSession) already keeps
//! the two things a post-mortem needs — a bounded ring of its recent
//! telemetry events (via its [`Scope`](robotune_obs::Scope)) and its
//! ask/tell configuration trajectory. When a session is cancelled,
//! errors out, or trips fault-injection paths, the manager asks the
//! [`FlightRecorder`] to dump both (plus the session spec, lifecycle
//! stats, and per-scope counters — including the `fault.*`/`retry.*`
//! families) as one self-describing JSONL file.
//!
//! ## Dump format (one JSON object per line)
//!
//! 1. `{"kind":"flight","version":1,"session":…,"reason":…,"state":…,
//!    "workload":…,"seed":…,"budget":…,"profile":…}` — header;
//! 2. `{"kind":"stats",…}` — ask/tell lifecycle counters;
//! 3. `{"kind":"counters","counters":{…}}` — the session scope's
//!    counter totals (empty when tracing was disabled);
//! 4. `{"kind":"fault_counters","counters":{…},"total":…}` — the
//!    `fault.*`/`retry.*` subset of the same totals (per
//!    [`robotune_faults::telemetry`]), pulled out so a post-mortem reader
//!    sees the failure story without scanning the full counter map;
//! 5. `{"kind":"diag","name":…,"iter":…,"data":{…}}` — the tuner-health
//!    diagnostic series from the scope ring (GP fits, acquisition
//!    rounds, rung outcomes), one line per sample in emission order with
//!    the *raw* iteration numbers so `experiments flightcheck` can
//!    verify per-series monotonicity;
//! 6. `{"kind":"ask","index":…,"cap_s":…,"config":{…}}` /
//!    `{"kind":"tell","index":…,"time_s":…,"status":…}` — the config
//!    trajectory in order;
//! 7. `{"kind":"event","event":{…}}` — the recent telemetry events
//!    (same schema as the `--trace` JSONL);
//! 8. `{"kind":"recorder","events_dropped":…,"trajectory_dropped":…}`
//!    — footer recording what the bounded buffers had to evict.
//!
//! Files are written to a temp name and renamed into place, so a
//! half-written dump is never observed under the final name.

use crate::protocol::config_to_wire;
use crate::session::{ServedSession, TrajectoryEntry};
use serde_json::{Map, Value};
use std::io::Write;
use std::path::{Path, PathBuf};

/// Format version written into every dump header.
pub const FLIGHT_FORMAT_VERSION: i64 = 1;

/// Writes per-session failure dumps into one directory.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    dir: PathBuf,
}

impl FlightRecorder {
    /// Creates the recorder (and its directory).
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| format!("create flight dir {}: {e}", dir.display()))?;
        Ok(FlightRecorder { dir })
    }

    /// The directory dumps land in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Dumps `session`'s black box; returns the file written.
    pub fn dump(&self, session: &ServedSession, reason: &str) -> Result<PathBuf, String> {
        let path = self.dir.join(format!("flight-{}.jsonl", session.id));
        let tmp = self.dir.join(format!("flight-{}.jsonl.tmp", session.id));
        let mut out = Vec::new();
        for line in self.render_lines(session, reason) {
            let text = serde_json::to_string(&line)
                .map_err(|e| format!("encode flight line: {e}"))?;
            out.extend_from_slice(text.as_bytes());
            out.push(b'\n');
        }
        let mut file = std::fs::File::create(&tmp)
            .map_err(|e| format!("create {}: {e}", tmp.display()))?;
        file.write_all(&out)
            .and_then(|()| file.flush())
            .map_err(|e| format!("write {}: {e}", tmp.display()))?;
        drop(file);
        std::fs::rename(&tmp, &path)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), path.display()))?;
        Ok(path)
    }

    fn render_lines(&self, session: &ServedSession, reason: &str) -> Vec<Value> {
        let mut lines = Vec::new();

        let mut header = Map::new();
        header.insert("kind".into(), Value::from("flight"));
        header.insert("version".into(), Value::from(FLIGHT_FORMAT_VERSION));
        header.insert("session".into(), Value::from(session.id.as_str()));
        header.insert("reason".into(), Value::from(reason));
        header.insert("state".into(), Value::from(session.state().as_str()));
        header.insert("workload".into(), Value::from(session.spec.workload.as_str()));
        header.insert("seed".into(), Value::from(session.spec.seed));
        header.insert("budget".into(), Value::from(session.spec.budget as u64));
        header.insert("profile".into(), Value::from(session.spec.profile.as_str()));
        lines.push(Value::Object(header));

        let stats = session.stats();
        let mut s = Map::new();
        s.insert("kind".into(), Value::from("stats"));
        s.insert("asked".into(), Value::from(stats.asked));
        s.insert("observed".into(), Value::from(stats.observed));
        s.insert("completed".into(), Value::from(stats.completed));
        s.insert("failed".into(), Value::from(stats.failed));
        s.insert("capped".into(), Value::from(stats.capped));
        s.insert("best_time_s".into(), stats.best_time_s.map_or(Value::Null, Value::from));
        lines.push(Value::Object(s));

        // The scope's counters carry the fault/retry story for this
        // session (retry.attempt, retry.exhausted, bo.censored_observation,
        // …) when tracing is on; an empty object otherwise.
        let snap = session.scope().snapshot();
        let mut counters = Map::new();
        let mut fault_counters = Map::new();
        let mut fault_total = 0u64;
        for (name, total) in &snap.counters {
            counters.insert(name.clone(), Value::from(*total));
            if robotune_faults::telemetry::is_fault_related(name) {
                fault_counters.insert(name.clone(), Value::from(*total));
                fault_total += *total;
            }
        }
        let mut c = Map::new();
        c.insert("kind".into(), Value::from("counters"));
        c.insert("counters".into(), Value::Object(counters));
        lines.push(Value::Object(c));

        let mut fc = Map::new();
        fc.insert("kind".into(), Value::from("fault_counters"));
        fc.insert("counters".into(), Value::Object(fault_counters));
        fc.insert("total".into(), Value::from(fault_total));
        lines.push(Value::Object(fc));

        // Tuner-health samples get their own lines (in addition to the
        // raw `event` lines below) so a post-mortem reader — and
        // `experiments flightcheck` — can walk the series without
        // filtering the full event stream.
        for event in session.scope().recent_events() {
            if let robotune_obs::EventData::Diag { name, iter, data } = event.data {
                let mut m = Map::new();
                m.insert("kind".into(), Value::from("diag"));
                m.insert("name".into(), Value::from(name));
                m.insert("iter".into(), Value::from(iter));
                m.insert("data".into(), data);
                lines.push(Value::Object(m));
            }
        }

        let (trajectory, trajectory_dropped) = session.trajectory();
        for entry in &trajectory {
            lines.push(match entry {
                TrajectoryEntry::Ask { index, cap_s, config } => {
                    let mut m = Map::new();
                    m.insert("kind".into(), Value::from("ask"));
                    m.insert("index".into(), Value::from(*index));
                    m.insert("cap_s".into(), Value::from(*cap_s));
                    m.insert("config".into(), config_to_wire(session.space(), config));
                    Value::Object(m)
                }
                TrajectoryEntry::Tell { index, time_s, status } => {
                    let mut m = Map::new();
                    m.insert("kind".into(), Value::from("tell"));
                    m.insert("index".into(), Value::from(*index));
                    m.insert("time_s".into(), Value::from(*time_s));
                    m.insert("status".into(), Value::from(status.as_str()));
                    Value::Object(m)
                }
            });
        }

        for event in session.scope().recent_events() {
            let mut m = Map::new();
            m.insert("kind".into(), Value::from("event"));
            m.insert("event".into(), event.to_json());
            lines.push(Value::Object(m));
        }

        let mut footer = Map::new();
        footer.insert("kind".into(), Value::from("recorder"));
        footer.insert("events_dropped".into(), Value::from(session.scope().dropped_events()));
        footer.insert("trajectory_dropped".into(), Value::from(trajectory_dropped));
        lines.push(Value::Object(footer));
        lines
    }
}
