//! File-backed persistence for the process-wide shared memo store.
//!
//! [`PersistentMemoStore`] wraps the in-memory
//! [`InMemoryMemoStore`] and journals every mutation:
//!
//! - `memo.snapshot.json` — the full store, rewritten atomically
//!   (tmp + rename) on [`MemoStore::checkpoint`];
//! - `memo.wal.jsonl` — an append-only JSONL write-ahead log of the
//!   mutations since the last snapshot, flushed per entry and truncated
//!   by a successful checkpoint.
//!
//! Boot replays snapshot-then-WAL, so a daemon killed between
//! checkpoints loses nothing that reached the WAL. WAL append failures
//! degrade to in-memory operation (counted on
//! `service.store.wal_error`) rather than failing the tuning request:
//! the store is an accelerator, not ground truth.

use robotune::{InMemoryMemoStore, MemoStore, SharedMemoStore};
use robotune_space::{Configuration, ParamValue};
use serde_json::{Map, Value};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::{Arc, RwLock};

/// Snapshot file name inside the store directory.
pub const SNAPSHOT_FILE: &str = "memo.snapshot.json";
/// Write-ahead-log file name inside the store directory.
pub const WAL_FILE: &str = "memo.wal.jsonl";
/// Version tag written into snapshots; replays reject other versions.
pub const FORMAT_VERSION: i64 = 1;

/// A [`MemoStore`] with snapshot + WAL persistence under one directory.
pub struct PersistentMemoStore {
    inner: InMemoryMemoStore,
    dir: PathBuf,
    wal: Option<File>,
    /// Mutations appended to the WAL since the last checkpoint — the
    /// replay debt a crash right now would incur. Surfaced by `health`.
    wal_lag: u64,
}

fn value_to_json(v: &ParamValue) -> Value {
    let (t, jv) = match v {
        ParamValue::Int(i) => ("i", Value::from(*i)),
        ParamValue::Float(f) => ("f", Value::from(*f)),
        ParamValue::Bool(b) => ("b", Value::Bool(*b)),
        ParamValue::Cat(c) => ("c", Value::from(*c as u64)),
    };
    let mut m = Map::new();
    m.insert("t".into(), Value::from(t));
    m.insert("v".into(), jv);
    Value::Object(m)
}

fn value_from_json(v: &Value) -> Result<ParamValue, String> {
    let t = v.get("t").and_then(Value::as_str).ok_or("value entry missing \"t\"")?;
    let raw = v.get("v").ok_or("value entry missing \"v\"")?;
    match t {
        "i" => raw.as_i64().map(ParamValue::Int).ok_or_else(|| "int value not an i64".into()),
        "f" => raw.as_f64().map(ParamValue::Float).ok_or_else(|| "float value not a number".into()),
        "b" => raw.as_bool().map(ParamValue::Bool).ok_or_else(|| "bool value not a bool".into()),
        "c" => raw
            .as_u64()
            .and_then(|i| usize::try_from(i).ok())
            .map(ParamValue::Cat)
            .ok_or_else(|| "cat value not an index".into()),
        other => Err(format!("unknown value tag {other:?}")),
    }
}

fn config_to_json(c: &Configuration) -> Value {
    Value::Array(c.values().iter().map(value_to_json).collect())
}

fn config_from_json(v: &Value) -> Result<Configuration, String> {
    let arr = v.as_array().ok_or("config must be an array")?;
    let values = arr.iter().map(value_from_json).collect::<Result<Vec<_>, _>>()?;
    Ok(Configuration::new(values))
}

impl PersistentMemoStore {
    /// Opens (or creates) a store rooted at `dir`, replaying any
    /// existing snapshot and WAL.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut inner = InMemoryMemoStore::new();

        let snap_path = dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let text = fs::read_to_string(&snap_path)
                .map_err(|e| format!("read {}: {e}", snap_path.display()))?;
            let snap = serde_json::from_str(&text)
                .map_err(|e| format!("parse {}: {e}", snap_path.display()))?;
            Self::replay_snapshot(&mut inner, &snap)?;
        }

        let wal_path = dir.join(WAL_FILE);
        let mut wal_lag = 0u64;
        if wal_path.exists() {
            let text = fs::read_to_string(&wal_path)
                .map_err(|e| format!("read {}: {e}", wal_path.display()))?;
            let lines: Vec<&str> = text.lines().collect();
            for (lineno, line) in lines.iter().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match serde_json::from_str(line) {
                    Ok(op) => {
                        Self::replay_op(&mut inner, &op)
                            .map_err(|e| format!("WAL line {}: {e}", lineno + 1))?;
                        // Replayed entries are still un-checkpointed debt.
                        wal_lag += 1;
                    }
                    Err(e) => {
                        // A crash mid-append leaves a torn *final* line;
                        // tolerate that, but corruption with entries
                        // after it is a real error.
                        if lineno + 1 == lines.len() {
                            robotune_obs::incr("service.store.wal_torn_line", 1);
                            break;
                        }
                        return Err(format!("WAL line {}: {e}", lineno + 1));
                    }
                }
            }
        }

        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| format!("open {} for append: {e}", wal_path.display()))
            .map_or_else(
                |e| {
                    robotune_obs::incr("service.store.wal_error", 1);
                    robotune_obs::mark("service.store.degraded", || {
                        serde_json::json!({ "error": e })
                    });
                    None
                },
                Some,
            );

        Ok(PersistentMemoStore { inner, dir, wal, wal_lag })
    }

    fn replay_snapshot(inner: &mut InMemoryMemoStore, snap: &Value) -> Result<(), String> {
        let version = snap.get("version").and_then(Value::as_i64).unwrap_or(-1);
        if version != FORMAT_VERSION {
            return Err(format!("snapshot version {version} (want {FORMAT_VERSION})"));
        }
        if let Some(sels) = snap.get("selections").and_then(Value::as_object) {
            for (workload, names) in sels.iter() {
                let names = names
                    .as_array()
                    .ok_or("selection entry must be an array")?
                    .iter()
                    .map(|n| n.as_str().map(str::to_owned).ok_or("selection name must be a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                inner.cache.put_names(workload, names);
            }
        }
        if let Some(cfgs) = snap.get("configs").and_then(Value::as_object) {
            for (workload, entries) in cfgs.iter() {
                let entries = entries.as_array().ok_or("config list must be an array")?;
                for e in entries {
                    let time_s = e
                        .get("time_s")
                        .and_then(Value::as_f64)
                        .ok_or("config entry missing time_s")?;
                    let config = config_from_json(
                        e.get("values").ok_or("config entry missing values")?,
                    )?;
                    inner.memo.record(workload, config, time_s);
                }
            }
        }
        Ok(())
    }

    fn replay_op(inner: &mut InMemoryMemoStore, op: &Value) -> Result<(), String> {
        let kind = op.get("op").and_then(Value::as_str).ok_or("op entry missing \"op\"")?;
        let workload = op
            .get("workload")
            .and_then(Value::as_str)
            .ok_or("op entry missing \"workload\"")?
            .to_owned();
        match kind {
            "sel" => {
                let names = op
                    .get("names")
                    .and_then(Value::as_array)
                    .ok_or("sel op missing \"names\"")?
                    .iter()
                    .map(|n| n.as_str().map(str::to_owned).ok_or("selection name must be a string"))
                    .collect::<Result<Vec<_>, _>>()?;
                inner.cache.put_names(&workload, names);
                Ok(())
            }
            "cfg" => {
                let time_s = op
                    .get("time_s")
                    .and_then(Value::as_f64)
                    .ok_or("cfg op missing \"time_s\"")?;
                let config =
                    config_from_json(op.get("values").ok_or("cfg op missing \"values\"")?)?;
                inner.memo.record(&workload, config, time_s);
                Ok(())
            }
            other => Err(format!("unknown op {other:?}")),
        }
    }

    fn append(&mut self, op: &Value) {
        let Some(wal) = self.wal.as_mut() else {
            return;
        };
        let Ok(mut line) = serde_json::to_string(op) else {
            robotune_obs::incr("service.store.wal_error", 1);
            return;
        };
        line.push('\n');
        if wal.write_all(line.as_bytes()).and_then(|()| wal.flush()).is_err() {
            robotune_obs::incr("service.store.wal_error", 1);
        } else {
            self.wal_lag += 1;
        }
    }

    fn snapshot_value(&self) -> Value {
        let mut selections = Map::new();
        for workload in self.inner.cache.workloads() {
            if let Some(names) = self.inner.cache.names(&workload) {
                selections.insert(
                    workload,
                    Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
                );
            }
        }
        let mut configs = Map::new();
        for workload in self.inner.memo.workloads() {
            let entries: Vec<Value> = self
                .inner
                .memo
                .best_recent(&workload, usize::MAX)
                .into_iter()
                .map(|(config, time_s)| {
                    let mut e = Map::new();
                    e.insert("time_s".into(), Value::from(time_s));
                    e.insert("values".into(), config_to_json(&config));
                    Value::Object(e)
                })
                .collect();
            configs.insert(workload, Value::Array(entries));
        }
        let mut snap = Map::new();
        snap.insert("version".into(), Value::from(FORMAT_VERSION));
        snap.insert("selections".into(), Value::Object(selections));
        snap.insert("configs".into(), Value::Object(configs));
        Value::Object(snap)
    }

    /// Writes a fresh snapshot atomically and truncates the WAL.
    pub fn write_snapshot(&mut self) -> Result<(), String> {
        let text = serde_json::to_string_pretty(&self.snapshot_value())
            .map_err(|e| format!("encode snapshot: {e}"))?;
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let dst = self.dir.join(SNAPSHOT_FILE);
        fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        fs::rename(&tmp, &dst)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), dst.display()))?;
        // Everything journaled so far is now in the snapshot: start a
        // fresh WAL. Recreating (truncate) keeps the append handle simple.
        let wal_path = self.dir.join(WAL_FILE);
        self.wal = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&wal_path)
            .map_err(|e| {
                robotune_obs::incr("service.store.wal_error", 1);
                format!("truncate {}: {e}", wal_path.display())
            })
            .ok();
        self.wal_lag = 0;
        robotune_obs::incr("service.store.checkpoints", 1);
        Ok(())
    }

    /// Wraps the store for sharing across sessions.
    pub fn into_shared(self) -> SharedMemoStore {
        Arc::new(RwLock::new(self))
    }
}

impl MemoStore for PersistentMemoStore {
    fn selection(&self, workload: &str) -> Option<Vec<String>> {
        self.inner.selection(workload)
    }

    fn put_selection(&mut self, workload: &str, names: Vec<String>) {
        let mut op = Map::new();
        op.insert("op".into(), Value::from("sel"));
        op.insert("workload".into(), Value::from(workload));
        op.insert(
            "names".into(),
            Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
        );
        self.append(&Value::Object(op));
        self.inner.put_selection(workload, names);
    }

    fn record_config(&mut self, workload: &str, config: Configuration, time_s: f64) {
        let mut op = Map::new();
        op.insert("op".into(), Value::from("cfg"));
        op.insert("workload".into(), Value::from(workload));
        op.insert("time_s".into(), Value::from(time_s));
        op.insert("values".into(), config_to_json(&config));
        self.append(&Value::Object(op));
        self.inner.record_config(workload, config, time_s);
    }

    fn best_recent(&self, workload: &str, n: usize) -> Vec<(Configuration, f64)> {
        self.inner.best_recent(workload, n)
    }

    fn workloads(&self) -> Vec<String> {
        self.inner.workloads()
    }

    fn checkpoint(&mut self) -> Result<(), String> {
        self.write_snapshot()
    }

    fn wal_lag(&self) -> u64 {
        self.wal_lag
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "robotune-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_config() -> Configuration {
        Configuration::new(vec![
            ParamValue::Int(8),
            ParamValue::Float(0.6),
            ParamValue::Bool(true),
            ParamValue::Cat(2),
        ])
    }

    #[test]
    fn wal_then_snapshot_then_wal_replays_identically() {
        let dir = temp_dir("roundtrip");
        {
            let mut store = PersistentMemoStore::open(&dir).unwrap();
            store.put_selection("km", vec!["a".into(), "b".into()]);
            store.record_config("km", sample_config(), 120.5);
            store.checkpoint().unwrap();
            // Post-checkpoint mutations live only in the WAL.
            store.put_selection("pr", vec!["c".into()]);
            store.record_config("km", sample_config(), 90.25);
        }
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("km"), Some(vec!["a".into(), "b".into()]));
        assert_eq!(store.selection("pr"), Some(vec!["c".into()]));
        let recent = store.best_recent("km", 10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].1, 90.25, "best-first order survives reload");
        assert_eq!(recent[0].0, sample_config());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn golden_snapshot_and_wal_fixtures_parse() {
        // Pinned wire format: if this test breaks, the on-disk format
        // changed and FORMAT_VERSION must be bumped with a migration.
        let dir = temp_dir("golden");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(SNAPSHOT_FILE),
            r#"{
  "version": 1,
  "selections": { "km": ["spark.executor.cores", "spark.executor.memory"] },
  "configs": {
    "km": [
      { "time_s": 101.5,
        "values": [ {"t":"i","v":8}, {"t":"f","v":0.6}, {"t":"b","v":true}, {"t":"c","v":2} ] }
    ]
  }
}"#,
        )
        .unwrap();
        fs::write(
            dir.join(WAL_FILE),
            concat!(
                r#"{"op":"sel","workload":"pr","names":["spark.default.parallelism"]}"#,
                "\n",
                r#"{"op":"cfg","workload":"pr","time_s":55.0,"values":[{"t":"i","v":4},{"t":"f","v":0.25},{"t":"b","v":false},{"t":"c","v":0}]}"#,
                "\n",
            ),
        )
        .unwrap();

        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(
            store.selection("km"),
            Some(vec!["spark.executor.cores".into(), "spark.executor.memory".into()])
        );
        assert_eq!(store.selection("pr"), Some(vec!["spark.default.parallelism".into()]));
        assert_eq!(store.best_recent("km", 1)[0].1, 101.5);
        assert_eq!(store.best_recent("km", 1)[0].0, sample_config());
        assert_eq!(store.best_recent("pr", 1)[0].1, 55.0);
        let mut sorted = store.workloads();
        sorted.sort();
        assert_eq!(sorted, vec!["km".to_string(), "pr".to_string()]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_wal_line_is_tolerated_mid_corruption_is_not() {
        let dir = temp_dir("torn");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(WAL_FILE),
            concat!(
                r#"{"op":"sel","workload":"km","names":["a"]}"#,
                "\n",
                r#"{"op":"cfg","workload":"km","ti"#, // torn mid-append
            ),
        )
        .unwrap();
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("km"), Some(vec!["a".into()]));

        fs::write(
            dir.join(WAL_FILE),
            concat!(
                r#"{"op":"sel","workload":"km","nam"#, // corruption with data after it
                "\n",
                r#"{"op":"sel","workload":"pr","names":["b"]}"#,
                "\n",
            ),
        )
        .unwrap();
        assert!(PersistentMemoStore::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_lag_tracks_appends_and_resets_on_checkpoint() {
        let dir = temp_dir("lag");
        {
            let mut store = PersistentMemoStore::open(&dir).unwrap();
            assert_eq!(store.wal_lag(), 0);
            store.put_selection("km", vec!["a".into()]);
            store.record_config("km", sample_config(), 10.0);
            assert_eq!(store.wal_lag(), 2);
            store.checkpoint().unwrap();
            assert_eq!(store.wal_lag(), 0);
            store.record_config("km", sample_config(), 9.0);
            assert_eq!(store.wal_lag(), 1);
        }
        // A reopened store owes exactly the replayed WAL entries.
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.wal_lag(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_rejects_unknown_versions() {
        let dir = temp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(SNAPSHOT_FILE), r#"{"version": 99}"#).unwrap();
        assert!(PersistentMemoStore::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
