//! The TCP layer: a nonblocking reactor that owns every connection.
//!
//! One event-loop thread (epoll on Linux via the workspace `mio`
//! stand-in, `poll(2)` elsewhere) holds all connection state machines:
//! incremental NDJSON frame reassembly ([`FrameDecoder`]), buffered
//! nonblocking writes with high/low-watermark backpressure, and
//! per-connection serial pipelining into a small dispatch pool that
//! executes [`SessionManager::handle_line`]. Idle tenants cost one
//! registered fd and a few hundred bytes — no thread, no 50 ms wakeup —
//! which is what lets a single process hold 10k+ open sessions while a
//! handful of session workers do only GP compute.
//!
//! ## Ownership model
//!
//! The reactor thread is the *only* thread that touches sockets. A
//! decoded request travels `inbox → dispatch pool → completion queue →
//! outbuf`, re-entering the reactor via a [`Waker`]; locally detected
//! conditions (oversized frame, bad UTF-8) become inbox items too, so
//! responses leave in exactly the order requests arrived. One request
//! per connection is in flight at a time — pipelining *across* tenants
//! is what scales, and serial-per-connection keeps `suggest`-then-
//! `observe` semantics and response ordering trivially correct.
//!
//! ## Backpressure
//!
//! A peer that stops reading fills its `outbuf`; past
//! [`WRITE_BUFFER_HIGH`] the reactor stops reading from that peer
//! (level-triggered readiness re-fires once the buffer drains below
//! [`WRITE_BUFFER_LOW`]), so a single slow consumer can neither wedge
//! the loop nor balloon memory. A deep inbox ([`INBOX_LIMIT`]) pauses
//! reads the same way.
//!
//! ## Drain
//!
//! On shutdown the reactor stops accepting, takes one final
//! non-blocking read sweep per connection — so pipelined requests that
//! are already fully buffered in the kernel still get answers — then
//! keeps dispatching and flushing until every connection is quiet
//! (empty inbox, nothing in flight, flushed outbuf) and closes them
//! without waiting for peer EOF. Only after the loop, the dispatch
//! pool, and the session workers have all exited is the shared store
//! checkpointed, exactly once.

use crate::framing::{DecodedFrame, FrameDecoder};
use crate::manager::SessionManager;
use crate::protocol::{error_frame, ErrorCode, ProtoError, MAX_FRAME_BYTES};
use mio::{Events, Interest, Poll, Token, Waker};
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The listening socket's poll token.
const LISTENER: Token = Token(0);
/// The cross-thread waker's poll token.
const WAKER: Token = Token(1);
/// First connection token; the counter only ever goes up, so a token
/// is never reused and a completion for a closed connection can never
/// be misrouted to a newer one.
const FIRST_CONN: usize = 2;

/// Upper bound on events drained per loop iteration.
const EVENTS_PER_LOOP: usize = 1024;
/// Reactor tick: poll timeout bounding shutdown/gauge latency when no
/// I/O is happening. This replaces the old per-connection 50 ms read
/// timeout — one timer for the whole process instead of one per tenant.
const TICK: Duration = Duration::from_millis(200);
/// Read-side scratch buffer size.
const READ_CHUNK: usize = 16 * 1024;
/// Pause reading from a peer whose response backlog reaches this…
const WRITE_BUFFER_HIGH: usize = 256 * 1024;
/// …and resume once it has drained to this.
const WRITE_BUFFER_LOW: usize = 64 * 1024;
/// Decoded-but-undispatched requests tolerated per connection before
/// its reads pause.
const INBOX_LIMIT: usize = 128;
/// How long the listener stays paused after fd exhaustion before the
/// reactor retries accepting.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(250);

/// One decoded inbox entry, in wire order. Local error renderings ride
/// the same queue as real requests so responses stay ordered.
enum InboxItem {
    /// A well-formed line for the dispatch pool.
    Request(String),
    /// An oversized frame (already resynchronized) → `frame_too_large`.
    TooLong,
    /// A non-UTF-8 frame → `malformed_frame`.
    BadUtf8,
}

/// A request handed to the dispatch pool. `ctx` is the causal trace
/// context minted when the frame left the wire; the dispatch worker
/// adopts it so the handler's spans link back to the reactor's
/// `service.frame_read` span across the thread crossing.
struct Job {
    token: usize,
    line: String,
    ctx: robotune_obs::TraceCtx,
}

/// Dispatch-pool results funneled back to the reactor.
struct Completions {
    ready: Mutex<Vec<(usize, String)>>,
    waker: Waker,
}

/// Per-connection state machine, owned exclusively by the reactor.
struct Conn {
    stream: TcpStream,
    decoder: FrameDecoder,
    inbox: VecDeque<InboxItem>,
    /// Bytes queued for the peer; `out_cursor` marks how much of the
    /// front has already been written.
    outbuf: Vec<u8>,
    out_cursor: usize,
    /// A request from this connection is at the dispatch pool.
    in_flight: bool,
    /// Peer closed its write half; buffered requests still get answers.
    eof: bool,
    /// Read side paused by the outbuf high watermark (cleared at the
    /// low watermark, not symmetrically — hysteresis).
    write_throttled: bool,
    /// Fatal socket error; close as soon as the event is processed.
    dead: bool,
    /// Interest currently registered with the poll, to avoid
    /// reregister syscalls when nothing changed.
    registered: Option<Interest>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            inbox: VecDeque::new(),
            outbuf: Vec::new(),
            out_cursor: 0,
            in_flight: false,
            eof: false,
            write_throttled: false,
            dead: false,
            registered: None,
        }
    }

    fn pending_out(&self) -> usize {
        self.outbuf.len() - self.out_cursor
    }

    /// Everything answered and flushed: nothing decoded, nothing in
    /// flight, nothing buffered for the peer.
    fn quiet(&self) -> bool {
        self.inbox.is_empty() && !self.in_flight && self.pending_out() == 0
    }

    /// Whether the reactor wants read readiness right now.
    fn wants_read(&self, draining: bool) -> bool {
        !self.eof
            && !draining
            && !self.write_throttled
            && self.inbox.len() < INBOX_LIMIT
    }

    fn desired_interest(&self, draining: bool) -> Option<Interest> {
        let read = self.wants_read(draining);
        let write = self.pending_out() > 0;
        match (read, write) {
            (true, true) => Some(Interest::READABLE | Interest::WRITABLE),
            (true, false) => Some(Interest::READABLE),
            (false, true) => Some(Interest::WRITABLE),
            (false, false) => None,
        }
    }

    /// Turns decoded frames into inbox items. Blank lines are skipped
    /// outright (no response), preserving the old handler's behavior.
    fn enqueue(&mut self, frames: Vec<DecodedFrame>) {
        for frame in frames {
            match frame {
                DecodedFrame::TooLong => self.inbox.push_back(InboxItem::TooLong),
                DecodedFrame::Line(bytes) => match String::from_utf8(bytes) {
                    Ok(line) if line.trim().is_empty() => {}
                    Ok(line) => self.inbox.push_back(InboxItem::Request(line)),
                    Err(_) => self.inbox.push_back(InboxItem::BadUtf8),
                },
            }
        }
    }

    /// Appends one response frame (newline added) to the outbuf and
    /// applies the write-side high watermark.
    fn append_response(&mut self, response: &str) {
        self.outbuf.reserve(response.len() + 1);
        self.outbuf.extend_from_slice(response.as_bytes());
        self.outbuf.push(b'\n');
        if self.pending_out() >= WRITE_BUFFER_HIGH {
            self.write_throttled = true;
        }
    }

    /// Writes as much of the outbuf as the socket accepts right now.
    fn flush(&mut self) {
        while self.pending_out() > 0 {
            match self.stream.write(&self.outbuf[self.out_cursor..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_cursor += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    robotune_obs::incr("service.conn_error", 1);
                    self.dead = true;
                    break;
                }
            }
        }
        if self.pending_out() == 0 {
            self.outbuf.clear();
            self.out_cursor = 0;
            self.write_throttled = false;
        } else if self.pending_out() <= WRITE_BUFFER_LOW {
            self.write_throttled = false;
        }
    }

    /// Reads every byte the kernel has for us (bounded by backpressure)
    /// and decodes it into the inbox.
    fn read_some(&mut self, draining: bool) {
        let mut scratch = [0u8; READ_CHUNK];
        let mut frames = Vec::new();
        loop {
            match self.stream.read(&mut scratch) {
                Ok(0) => {
                    self.eof = true;
                    if let Some(last) = self.decoder.finish() {
                        frames.push(last);
                    }
                    break;
                }
                Ok(n) => {
                    self.decoder.push(&scratch[..n], &mut frames);
                    if !draining && self.inbox.len() + frames.len() >= INBOX_LIMIT {
                        break; // level-triggered: the rest re-fires
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => {
                    robotune_obs::incr("service.conn_error", 1);
                    self.dead = true;
                    break;
                }
            }
        }
        self.enqueue(frames);
    }
}

fn render_error(code: ErrorCode, message: String) -> String {
    serde_json::to_string(&error_frame(&Value::Null, &ProtoError::new(code, message)))
        .unwrap_or_else(|_| {
            r#"{"id":null,"ok":false,"error":{"code":"internal","message":"render failure"}}"#
                .to_string()
        })
}

/// Pulls jobs and runs the (possibly blocking) protocol handler; the
/// shared receiver is the usual one-waiter-holds-the-lock pool pattern.
fn dispatch_loop(
    manager: &SessionManager,
    jobs: &Arc<Mutex<Receiver<Job>>>,
    done: &Arc<Completions>,
) {
    loop {
        let job = match lock(jobs).recv() {
            Ok(job) => job,
            Err(_) => return, // reactor dropped the sender: drained
        };
        let response = {
            let _trace = robotune_obs::adopt(job.ctx);
            let _span = robotune_obs::span("service.dispatch");
            manager.handle_line(&job.line)
        };
        lock(&done.ready).push((job.token, response));
        let _ = done.waker.wake();
    }
}

/// The event loop. Owns the poll, the listener, and every connection.
struct Reactor<'m> {
    manager: &'m SessionManager,
    poll: Poll,
    listener: TcpListener,
    listener_registered: bool,
    /// Set after fd exhaustion: when to re-register the listener.
    accept_resume_at: Option<Instant>,
    conns: HashMap<usize, Conn>,
    next_token: usize,
    job_tx: Sender<Job>,
    completions: Arc<Completions>,
    draining: bool,
}

impl<'m> Reactor<'m> {
    fn run(&mut self) -> io::Result<()> {
        let mut events = Events::with_capacity(EVENTS_PER_LOOP);
        loop {
            let n = match self.poll.poll(&mut events, Some(TICK)) {
                Ok(n) => n,
                Err(e) => {
                    self.manager.begin_shutdown();
                    return Err(e);
                }
            };
            robotune_obs::record("service.reactor.ready_events", n as f64);

            let mut touched: Vec<usize> = Vec::with_capacity(events.len());
            let mut accept_ready = false;
            for event in &events {
                match event.token() {
                    LISTENER => accept_ready = true,
                    WAKER => {} // drained by the poll shim; completions below
                    Token(t) => {
                        if let Some(conn) = self.conns.get_mut(&t) {
                            if event.is_readable() && conn.wants_read(self.draining) {
                                conn.read_some(self.draining);
                            }
                            if event.is_writable() {
                                conn.flush();
                            }
                            touched.push(t);
                        }
                    }
                }
            }
            if accept_ready && !self.draining {
                self.accept_burst()?;
            }

            // Route completed responses, then advance each touched
            // connection's pipeline (dispatch next inbox item, flush,
            // re-arm interest, reap the finished).
            touched.extend(self.drain_completions());
            for t in touched {
                self.advance(t);
            }

            if !self.draining && self.manager.is_shutting_down() {
                self.start_drain();
            }
            if self.draining {
                // Sweep for quiescent connections even without events:
                // a drain can complete on the tick alone.
                let tokens: Vec<usize> = self.conns.keys().copied().collect();
                for t in tokens {
                    self.advance(t);
                }
                if self.conns.is_empty() {
                    return Ok(());
                }
            }

            self.maybe_resume_listener();
            self.emit_gauges();
        }
    }

    /// Accepts until the backlog is empty. Fd exhaustion pauses the
    /// listener (instead of killing the daemon) and retries shortly;
    /// other errors shut the service down as before.
    fn accept_burst(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        robotune_obs::incr("service.conn_error", 1);
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    robotune_obs::incr("service.connections", 1);
                    let token = self.next_token;
                    self.next_token += 1;
                    let mut conn = Conn::new(stream);
                    if self
                        .poll
                        .register(&conn.stream, Token(token), Interest::READABLE)
                        .is_err()
                    {
                        robotune_obs::incr("service.conn_error", 1);
                        continue; // conn drops; peer sees a close
                    }
                    conn.registered = Some(Interest::READABLE);
                    self.conns.insert(token, conn);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                // EMFILE/ENFILE: per-process or system fd table is
                // full. Stop accepting briefly; existing tenants keep
                // being served and closes will free descriptors.
                Err(e) if matches!(e.raw_os_error(), Some(23) | Some(24)) => {
                    robotune_obs::incr("service.accept_error", 1);
                    if self.listener_registered {
                        let _ = self.poll.deregister(&self.listener);
                        self.listener_registered = false;
                    }
                    self.accept_resume_at = Some(Instant::now() + ACCEPT_BACKOFF);
                    return Ok(());
                }
                Err(e) => {
                    self.manager.begin_shutdown();
                    return Err(e);
                }
            }
        }
    }

    fn maybe_resume_listener(&mut self) {
        if let Some(at) = self.accept_resume_at {
            if Instant::now() >= at
                && !self.draining
                && self
                    .poll
                    .register(&self.listener, LISTENER, Interest::READABLE)
                    .is_ok()
            {
                self.listener_registered = true;
                self.accept_resume_at = None;
            }
        }
    }

    /// Takes the completion queue; returns the tokens needing advance.
    fn drain_completions(&mut self) -> Vec<usize> {
        let ready = std::mem::take(&mut *lock(&self.completions.ready));
        let mut tokens = Vec::with_capacity(ready.len());
        for (token, response) in ready {
            // A completion for a token no longer in the map belongs to
            // a connection that died mid-request: drop it.
            if let Some(conn) = self.conns.get_mut(&token) {
                conn.in_flight = false;
                conn.append_response(&response);
                tokens.push(token);
            }
        }
        tokens
    }

    /// Moves one connection forward: dispatch the next inbox item(s),
    /// flush, re-arm poll interest, and reap it if finished. Safe to
    /// call repeatedly and with stale tokens.
    fn advance(&mut self, token: usize) {
        let draining = self.draining;
        let Some(conn) = self.conns.get_mut(&token) else { return };

        // Serial pipeline: local error items render immediately; a real
        // request goes to the pool and blocks this connection's queue
        // (and only this connection's) until its completion returns.
        while !conn.in_flight && !conn.dead {
            match conn.inbox.pop_front() {
                None => break,
                Some(InboxItem::TooLong) => {
                    let msg = format!("frame exceeds {MAX_FRAME_BYTES} bytes");
                    conn.append_response(&render_error(ErrorCode::FrameTooLarge, msg));
                }
                Some(InboxItem::BadUtf8) => {
                    conn.append_response(&render_error(
                        ErrorCode::MalformedFrame,
                        "frame is not valid UTF-8".into(),
                    ));
                }
                Some(InboxItem::Request(line)) => {
                    // Mint the request's causal context under a
                    // `service.frame_read` span: the span is the trace
                    // root every downstream span links back to.
                    let ctx = {
                        let _read = robotune_obs::span("service.frame_read");
                        robotune_obs::TraceCtx::mint()
                    };
                    conn.in_flight = true;
                    if self.job_tx.send(Job { token, line, ctx }).is_err() {
                        // Dispatch pool gone: only possible mid-teardown.
                        conn.in_flight = false;
                        conn.dead = true;
                    }
                }
            }
        }

        if conn.pending_out() > 0 {
            conn.flush();
        }

        let finished = conn.dead || ((conn.eof || draining) && conn.quiet());
        if finished {
            let conn = self.conns.remove(&token);
            if let Some(conn) = conn {
                if conn.registered.is_some() {
                    let _ = self.poll.deregister(&conn.stream);
                }
            }
            return;
        }

        let desired = conn.desired_interest(draining);
        if desired != conn.registered {
            let changed = match (conn.registered, desired) {
                (None, Some(interest)) => {
                    self.poll.register(&conn.stream, Token(token), interest).is_ok()
                }
                (Some(_), Some(interest)) => {
                    self.poll.reregister(&conn.stream, Token(token), interest).is_ok()
                }
                (Some(_), None) => self.poll.deregister(&conn.stream).is_ok(),
                (None, None) => true,
            };
            if changed {
                conn.registered = desired;
            } else {
                robotune_obs::incr("service.conn_error", 1);
                conn.dead = true;
                self.conns.remove(&token);
            }
        }
    }

    /// Enters drain: stop accepting, take one final read sweep per
    /// connection so fully-buffered pipelined requests still get
    /// answered, then let `advance` retire connections as they quiesce
    /// — without waiting for peer EOF.
    fn start_drain(&mut self) {
        self.draining = true;
        if self.listener_registered {
            let _ = self.poll.deregister(&self.listener);
            self.listener_registered = false;
        }
        self.accept_resume_at = None;
        for conn in self.conns.values_mut() {
            if !conn.eof && !conn.dead {
                conn.read_some(true);
            }
        }
    }

    fn emit_gauges(&self) {
        if !robotune_obs::is_enabled() {
            return;
        }
        robotune_obs::record("service.reactor.registered_fds", self.conns.len() as f64);
        let buffered: usize = self.conns.values().map(Conn::pending_out).sum();
        robotune_obs::record("service.reactor.write_buffer_bytes", buffered as f64);
    }
}

/// Runs the daemon on `listener` until a `shutdown` request drains it.
///
/// Structure: one scope holds the session workers (GP compute), the
/// dispatch pool (protocol handling), and the reactor on the calling
/// thread. The reactor returning unblocks everything — dropping the
/// job sender stops the dispatch pool, `begin_shutdown` has already
/// stopped the session workers — and once the scope joins, the shared
/// store is checkpointed (snapshot + WAL truncate) exactly once.
pub fn serve(listener: TcpListener, manager: &SessionManager) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let poll = Poll::new()?;
    poll.register(&listener, LISTENER, Interest::READABLE)?;
    let waker = Waker::new(&poll, WAKER)?;
    let completions = Arc::new(Completions { ready: Mutex::new(Vec::new()), waker });

    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..manager.options().workers.max(1) {
            scope.spawn(|| manager.worker_loop());
        }
        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        for _ in 0..manager.options().dispatch_workers.max(1) {
            let jobs = Arc::clone(&job_rx);
            let done = Arc::clone(&completions);
            scope.spawn(move || dispatch_loop(manager, &jobs, &done));
        }
        let mut reactor = Reactor {
            manager,
            poll,
            listener,
            listener_registered: true,
            accept_resume_at: None,
            conns: HashMap::new(),
            next_token: FIRST_CONN,
            job_tx,
            completions,
            draining: false,
        };
        reactor.run()
        // `reactor` (and with it the job sender) drops here, releasing
        // the dispatch pool; the scope then joins every thread.
    })?;
    // Every worker and connection has exited: quiesce, then persist.
    if let Err(e) = manager.store().checkpoint() {
        robotune_obs::incr("service.store.checkpoint_error", 1);
        robotune_obs::mark("service.store.checkpoint_error", || {
            serde_json::json!({ "error": e.clone() })
        });
    }
    Ok(())
}
