//! The TCP layer: accept loop, per-connection NDJSON framing, and the
//! scoped thread structure that ties workers, connections, and
//! shutdown together.
//!
//! Everything runs inside one `std::thread::scope`: the worker pool,
//! the (non-blocking) accept loop, and one handler thread per
//! connection. The scope guarantees that `serve` returns only after
//! every worker has drained and every connection has closed — at which
//! point the shared store is checkpointed exactly once. Handler reads
//! carry a short timeout so they notice the shutdown flag promptly.

use crate::manager::SessionManager;
use crate::protocol::{error_frame, ErrorCode, ProtoError, MAX_FRAME_BYTES};
use serde_json::Value;
use std::io::{self, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

/// How often blocked I/O re-checks the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// What one framed read produced.
enum Frame {
    /// A complete line (newline stripped).
    Line(Vec<u8>),
    /// The line exceeded the frame cap; the overflow was drained up to
    /// the next newline so the connection stays in sync.
    TooLong,
    /// The peer closed the connection.
    Eof,
    /// Shutdown was requested while waiting for bytes.
    Shutdown,
}

/// Reads one newline-terminated frame, enforcing the byte cap *before*
/// any parsing and polling `shutting_down` while idle.
fn read_frame(
    reader: &mut BufReader<TcpStream>,
    shutting_down: &dyn Fn() -> bool,
) -> io::Result<Frame> {
    let mut line = Vec::new();
    let mut overflowed = false;
    loop {
        let mut byte = [0u8; 1];
        match reader.read(&mut byte) {
            Ok(0) => {
                return Ok(if line.is_empty() && !overflowed {
                    Frame::Eof
                } else if overflowed {
                    Frame::TooLong
                } else {
                    // A final unterminated line still gets an answer.
                    Frame::Line(line)
                });
            }
            Ok(_) => {
                if byte[0] == b'\n' {
                    return Ok(if overflowed { Frame::TooLong } else { Frame::Line(line) });
                }
                if overflowed {
                    continue; // draining to the next newline
                }
                line.push(byte[0]);
                if line.len() > MAX_FRAME_BYTES {
                    line.clear();
                    overflowed = true;
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut =>
            {
                if shutting_down() {
                    return Ok(Frame::Shutdown);
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
}

fn handle_connection(stream: TcpStream, manager: &SessionManager) {
    robotune_obs::incr("service.connections", 1);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    while let Ok(frame) = read_frame(&mut reader, &|| manager.is_shutting_down()) {
        let response = match frame {
            Frame::Eof | Frame::Shutdown => break,
            Frame::TooLong => render_error(
                ErrorCode::FrameTooLarge,
                format!("frame exceeds {MAX_FRAME_BYTES} bytes"),
            ),
            Frame::Line(bytes) => match String::from_utf8(bytes) {
                Ok(line) if line.trim().is_empty() => continue,
                Ok(line) => manager.handle_line(&line),
                Err(_) => {
                    render_error(ErrorCode::MalformedFrame, "frame is not valid UTF-8".into())
                }
            },
        };
        if writer
            .write_all(response.as_bytes())
            .and_then(|()| writer.write_all(b"\n"))
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

fn render_error(code: ErrorCode, message: String) -> String {
    serde_json::to_string(&error_frame(&Value::Null, &ProtoError::new(code, message)))
        .unwrap_or_else(|_| {
            r#"{"id":null,"ok":false,"error":{"code":"internal","message":"render failure"}}"#
                .to_string()
        })
}

/// Runs the daemon on `listener` until a `shutdown` request drains it.
///
/// Spawns the manager's worker pool plus one handler thread per
/// accepted connection, all inside a scope; once every thread has
/// exited, checkpoints the shared store (snapshot + WAL truncate) and
/// returns.
pub fn serve(listener: TcpListener, manager: &SessionManager) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    std::thread::scope(|scope| -> io::Result<()> {
        for _ in 0..manager.options().workers.max(1) {
            scope.spawn(|| manager.worker_loop());
        }
        loop {
            if manager.is_shutting_down() {
                break;
            }
            match listener.accept() {
                Ok((stream, _peer)) => {
                    scope.spawn(move || handle_connection(stream, manager));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    manager.begin_shutdown();
                    return Err(e);
                }
            }
        }
        Ok(())
    })?;
    // Every worker and connection has exited: quiesce, then persist.
    if let Err(e) = manager.store().checkpoint() {
        robotune_obs::incr("service.store.checkpoint_error", 1);
        robotune_obs::mark("service.store.checkpoint_error", || {
            serde_json::json!({ "error": e.clone() })
        });
    }
    Ok(())
}
