//! Incremental NDJSON frame reassembly.
//!
//! The reactor reads whatever the kernel has buffered — which can be
//! half a frame or fifty frames — and feeds the raw chunks to a
//! [`FrameDecoder`], which carves out complete newline-terminated
//! frames while enforcing the wire byte cap ([`MAX_FRAME_BYTES`])
//! *before* any parsing. The decoder is a three-state machine:
//!
//! - **sync**: accumulating a line; a `\n` emits [`DecodedFrame::Line`]
//!   (newline stripped);
//! - **overflow**: the line under construction exceeded the cap; its
//!   bytes are discarded until the next `\n` resynchronizes the stream,
//!   at which point one [`DecodedFrame::TooLong`] is emitted so the
//!   connection can answer with a typed error and keep going;
//! - **finished** ([`FrameDecoder::finish`], at EOF): a non-empty
//!   partial line still gets answered (clients that omit the trailing
//!   newline on their last request are common), but an *overflowed*
//!   partial emits nothing — the peer is gone, and writing a
//!   `frame_too_large` error to a closed socket is wasted work at best
//!   and a write error at worst.
//!
//! The open-loop load generator reuses this decoder on the client side
//! to reassemble pipelined responses.

use crate::protocol::MAX_FRAME_BYTES;

/// One decoded wire event.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodedFrame {
    /// A complete frame, newline stripped. May be empty (blank keepalive
    /// lines are the caller's business — the daemon skips them without
    /// a response).
    Line(Vec<u8>),
    /// A frame exceeded the byte cap. Emitted exactly once per
    /// oversized line, *after* the stream has resynchronized at the
    /// next newline, so ordering with surrounding frames is preserved.
    TooLong,
}

/// Streaming splitter of a byte stream into capped NDJSON frames.
#[derive(Debug)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    overflowed: bool,
    max: usize,
}

impl Default for FrameDecoder {
    fn default() -> Self {
        FrameDecoder::new()
    }
}

impl FrameDecoder {
    /// A decoder enforcing the protocol-wide [`MAX_FRAME_BYTES`] cap.
    pub fn new() -> FrameDecoder {
        FrameDecoder::with_limit(MAX_FRAME_BYTES)
    }

    /// A decoder with an explicit cap (tests use small ones).
    pub fn with_limit(max: usize) -> FrameDecoder {
        FrameDecoder { buf: Vec::new(), overflowed: false, max }
    }

    /// Feeds one raw chunk, appending every frame it completes to
    /// `out` in wire order.
    pub fn push(&mut self, chunk: &[u8], out: &mut Vec<DecodedFrame>) {
        let mut rest = chunk;
        while let Some(pos) = rest.iter().position(|&b| b == b'\n') {
            let (head, tail) = rest.split_at(pos);
            rest = &tail[1..]; // step over the newline
            if self.overflowed {
                self.overflowed = false;
                out.push(DecodedFrame::TooLong);
            } else if self.buf.len() + head.len() > self.max {
                // The completing chunk itself blows the cap: resync is
                // immediate (we are at a newline already).
                self.buf.clear();
                out.push(DecodedFrame::TooLong);
            } else if self.buf.is_empty() {
                out.push(DecodedFrame::Line(head.to_vec()));
            } else {
                let mut line = std::mem::take(&mut self.buf);
                line.extend_from_slice(head);
                out.push(DecodedFrame::Line(line));
            }
        }
        if !rest.is_empty() && !self.overflowed {
            self.buf.extend_from_slice(rest);
            if self.buf.len() > self.max {
                self.buf.clear();
                self.buf.shrink_to_fit();
                self.overflowed = true;
            }
        }
    }

    /// Signals EOF: a pending well-formed partial line is returned for
    /// a final answer; an overflowed partial returns `None` — there is
    /// no peer left to read a `frame_too_large` error.
    pub fn finish(&mut self) -> Option<DecodedFrame> {
        let overflowed = std::mem::replace(&mut self.overflowed, false);
        if overflowed {
            self.buf.clear();
            return None;
        }
        if self.buf.is_empty() {
            None
        } else {
            Some(DecodedFrame::Line(std::mem::take(&mut self.buf)))
        }
    }

    /// Bytes of the partial frame currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Whether an incomplete frame (including an overflowed one still
    /// awaiting its resync newline) is pending.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty() || self.overflowed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn push(dec: &mut FrameDecoder, chunk: &[u8]) -> Vec<DecodedFrame> {
        let mut out = Vec::new();
        dec.push(chunk, &mut out);
        out
    }

    #[test]
    fn many_frames_in_one_chunk_come_out_in_order() {
        let mut dec = FrameDecoder::new();
        let out = push(&mut dec, b"alpha\nbeta\ngamma\n");
        assert_eq!(
            out,
            vec![
                DecodedFrame::Line(b"alpha".to_vec()),
                DecodedFrame::Line(b"beta".to_vec()),
                DecodedFrame::Line(b"gamma".to_vec()),
            ]
        );
        assert!(!dec.mid_frame());
    }

    #[test]
    fn byte_at_a_time_delivery_reassembles() {
        let mut dec = FrameDecoder::new();
        let mut out = Vec::new();
        for &b in b"hello\nworld\n" {
            dec.push(&[b], &mut out);
        }
        assert_eq!(
            out,
            vec![DecodedFrame::Line(b"hello".to_vec()), DecodedFrame::Line(b"world".to_vec())]
        );
    }

    #[test]
    fn split_across_chunks_at_awkward_points() {
        let mut dec = FrameDecoder::new();
        assert!(push(&mut dec, b"par").is_empty());
        assert!(dec.mid_frame());
        assert_eq!(dec.buffered(), 3);
        let out = push(&mut dec, b"tial\nnext");
        assert_eq!(out, vec![DecodedFrame::Line(b"partial".to_vec())]);
        assert_eq!(push(&mut dec, b"\n"), vec![DecodedFrame::Line(b"next".to_vec())]);
    }

    #[test]
    fn exactly_at_the_cap_is_fine_one_over_is_not() {
        let mut dec = FrameDecoder::with_limit(8);
        let out = push(&mut dec, b"12345678\n");
        assert_eq!(out, vec![DecodedFrame::Line(b"12345678".to_vec())]);
        let out = push(&mut dec, b"123456789\n");
        assert_eq!(out, vec![DecodedFrame::TooLong]);
    }

    #[test]
    fn overflow_resyncs_at_the_next_newline_and_emits_once() {
        let mut dec = FrameDecoder::with_limit(4);
        // Oversized line split over several pushes: no event until the
        // resync newline, then exactly one TooLong, then clean frames.
        assert!(push(&mut dec, b"abcdefgh").is_empty());
        assert!(push(&mut dec, b"ijklmnop").is_empty());
        assert!(dec.mid_frame());
        let out = push(&mut dec, b"qr\nok\n");
        assert_eq!(out, vec![DecodedFrame::TooLong, DecodedFrame::Line(b"ok".to_vec())]);
        assert!(!dec.mid_frame());
    }

    #[test]
    fn eof_mid_overflow_is_silent() {
        // Regression (ISSUE 8 satellite): the old byte-at-a-time reader
        // returned TooLong at EOF, making the server write an error
        // frame to a peer that had already hung up.
        let mut dec = FrameDecoder::with_limit(4);
        assert!(push(&mut dec, b"way-too-long-and-never-terminated").is_empty());
        assert_eq!(dec.finish(), None);
        assert!(!dec.mid_frame(), "finish resets the decoder");
    }

    #[test]
    fn eof_with_wellformed_partial_still_answers() {
        let mut dec = FrameDecoder::new();
        assert!(push(&mut dec, b"last-request-no-newline").is_empty());
        assert_eq!(dec.finish(), Some(DecodedFrame::Line(b"last-request-no-newline".to_vec())));
        assert_eq!(dec.finish(), None);
    }

    #[test]
    fn blank_lines_are_lines() {
        let mut dec = FrameDecoder::new();
        let out = push(&mut dec, b"\n\n");
        assert_eq!(
            out,
            vec![DecodedFrame::Line(Vec::new()), DecodedFrame::Line(Vec::new())]
        );
    }
}
