//! The NDJSON wire protocol: request parsing, typed errors, response
//! framing, and the configuration codec.
//!
//! Every frame is one JSON object on one line. Requests carry a `verb`
//! and an optional `id`, which the server echoes verbatim in the
//! response so clients can pipeline. Responses are `{"ok":true,...}` or
//! `{"ok":false,"error":{"code":...,"message":...}}`; the error `code`
//! is one of the closed [`ErrorCode`] set, so clients can dispatch on it
//! without string-matching messages.

use robotune::RoboTuneOptions;
use robotune_space::{ConfigSpace, Configuration, ParamKind, ParamValue};
use robotune_tuners::Evaluation;
use serde_json::{Map, ParseLimits, Value};

/// Hard cap on one inbound request frame, applied *before* parsing.
///
/// A request is a verb plus at most one configuration object (~2 KiB on
/// the 44-parameter Spark space), so 64 KiB leaves an order of magnitude
/// of slack while bounding what an untrusted peer can make the parser
/// chew on.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Parse limits for inbound frames: wire-hardened depth + size bounds.
pub fn wire_limits() -> ParseLimits {
    ParseLimits::wire(MAX_FRAME_BYTES)
}

/// The closed set of protocol error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame is not valid JSON (or not an object).
    MalformedFrame,
    /// The frame exceeded [`MAX_FRAME_BYTES`].
    FrameTooLarge,
    /// The `verb` field is missing or names no known verb.
    UnknownVerb,
    /// A required field is absent.
    MissingField,
    /// A field is present but has the wrong type or an invalid value.
    InvalidField,
    /// `create_session` named a configuration space this server lacks.
    UnknownSpace,
    /// The `session` id names no live session.
    UnknownSession,
    /// The session was closed (explicitly or by shutdown).
    SessionClosed,
    /// `suggest` while an earlier suggestion is still unobserved.
    SuggestionPending,
    /// `observe` with no outstanding suggestion.
    NoPendingSuggestion,
    /// The admission queue is full; retry later.
    Overloaded,
    /// The server is draining and accepts no new sessions.
    ShuttingDown,
    /// The pipeline produced no suggestion within the server's window;
    /// the session is still live — retry.
    Timeout,
    /// An internal invariant failed; the request may be retried.
    Internal,
}

impl ErrorCode {
    /// The wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::MalformedFrame => "malformed_frame",
            ErrorCode::FrameTooLarge => "frame_too_large",
            ErrorCode::UnknownVerb => "unknown_verb",
            ErrorCode::MissingField => "missing_field",
            ErrorCode::InvalidField => "invalid_field",
            ErrorCode::UnknownSpace => "unknown_space",
            ErrorCode::UnknownSession => "unknown_session",
            ErrorCode::SessionClosed => "session_closed",
            ErrorCode::SuggestionPending => "suggestion_pending",
            ErrorCode::NoPendingSuggestion => "no_pending_suggestion",
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Timeout => "timeout",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A typed protocol error: code plus a human-oriented message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Which of the closed error codes this is.
    pub code: ErrorCode,
    /// Detail for humans; clients must dispatch on `code`.
    pub message: String,
}

impl ProtoError {
    /// Builds an error.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        ProtoError { code, message: message.into() }
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code.as_str(), self.message)
    }
}

/// The tuning-options profile a session runs under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Profile {
    /// The paper-faithful defaults.
    #[default]
    Default,
    /// [`RoboTuneOptions::fast`]: same algorithmic structure, smaller
    /// forests and lighter acquisition optimisation. Used by tests and
    /// the load generator.
    Fast,
}

impl Profile {
    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "default" => Some(Profile::Default),
            "fast" => Some(Profile::Fast),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            Profile::Default => "default",
            Profile::Fast => "fast",
        }
    }

    /// The pipeline options this profile denotes.
    pub fn options(self) -> RoboTuneOptions {
        match self {
            Profile::Default => RoboTuneOptions::default(),
            Profile::Fast => RoboTuneOptions::fast(),
        }
    }
}

/// How a client-run evaluation ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObservedStatus {
    /// The run finished within the cap.
    Completed,
    /// The run was stopped by the cap.
    Capped,
    /// The run crashed deterministically (OOM, invalid config).
    Failed,
    /// The run failed transiently (submit rejection, lost measurement).
    Transient,
}

impl ObservedStatus {
    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "completed" => Some(ObservedStatus::Completed),
            "capped" => Some(ObservedStatus::Capped),
            "failed" => Some(ObservedStatus::Failed),
            "transient" => Some(ObservedStatus::Transient),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            ObservedStatus::Completed => "completed",
            ObservedStatus::Capped => "capped",
            ObservedStatus::Failed => "failed",
            ObservedStatus::Transient => "transient",
        }
    }

    /// Classifies an [`Evaluation`] for the wire.
    pub fn of(eval: &Evaluation) -> Self {
        if eval.completed {
            ObservedStatus::Completed
        } else if !eval.failed {
            ObservedStatus::Capped
        } else if eval.transient {
            ObservedStatus::Transient
        } else {
            ObservedStatus::Failed
        }
    }

    /// Rebuilds the [`Evaluation`] this status + time denote. Exact
    /// inverse of [`ObservedStatus::of`] for single-attempt evaluations,
    /// which is what an objective returns per call — retries are
    /// aggregated by the pipeline's own retry layer on the server side.
    pub fn to_evaluation(self, time_s: f64) -> Evaluation {
        match self {
            ObservedStatus::Completed => Evaluation::completed(time_s),
            ObservedStatus::Capped => Evaluation::capped(time_s),
            ObservedStatus::Failed => Evaluation::failed(time_s),
            ObservedStatus::Transient => Evaluation::transient_failure(time_s),
        }
    }
}

/// How a `metrics` response should be rendered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// Structured JSON: counters/hists/spans objects.
    #[default]
    Json,
    /// Prometheus text exposition, returned as one string field.
    Prometheus,
}

impl MetricsFormat {
    /// Parses the wire spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "json" => Some(MetricsFormat::Json),
            "prometheus" => Some(MetricsFormat::Prometheus),
            _ => None,
        }
    }

    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prometheus => "prometheus",
        }
    }
}

/// A parsed request frame.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open a tuning session.
    CreateSession {
        /// The memo-store workload key (selection cache + config buffer).
        workload: String,
        /// Name of a server-registered configuration space.
        space: String,
        /// Seed for the session's deterministic RNG.
        seed: u64,
        /// BO evaluation budget.
        budget: usize,
        /// Options profile.
        profile: Profile,
    },
    /// Pull the next configuration to run.
    Suggest {
        /// Session id.
        session: String,
    },
    /// Report the outcome of the pending suggestion.
    Observe {
        /// Session id.
        session: String,
        /// Echo of the suggestion index, if the client tracks it.
        index: Option<u64>,
        /// Wall-clock seconds the run consumed.
        time_s: f64,
        /// How the run ended.
        status: ObservedStatus,
    },
    /// Best configuration seen so far.
    Best {
        /// Session id.
        session: String,
    },
    /// Server or per-session status.
    Status {
        /// Session id; `None` asks for the server-wide view.
        session: Option<String>,
    },
    /// Cancel a session and release its worker.
    CloseSession {
        /// Session id.
        session: String,
    },
    /// Telemetry snapshot: aggregate (server-wide) or per-session.
    Metrics {
        /// Session id; `None` asks for the aggregate registry view.
        session: Option<String>,
        /// Rendering of the snapshot.
        format: MetricsFormat,
    },
    /// Liveness/SLO view: worker utilization, queue depth, rolling
    /// suggest/observe percentiles, store WAL/checkpoint health.
    Health,
    /// Tuner-health diagnostics for one session: GP conditioning,
    /// acquisition/hedge state, regret series, rung outcomes.
    Diagnose {
        /// Session id.
        session: String,
    },
    /// Drain, checkpoint the store, and exit.
    Shutdown,
}

impl Request {
    /// The session this request addresses, if it carries one.
    pub fn session_id(&self) -> Option<&str> {
        match self {
            Request::Suggest { session }
            | Request::Observe { session, .. }
            | Request::Best { session }
            | Request::Diagnose { session }
            | Request::CloseSession { session } => Some(session),
            Request::Status { session } | Request::Metrics { session, .. } => session.as_deref(),
            Request::CreateSession { .. } | Request::Health | Request::Shutdown => None,
        }
    }
}

fn need<'v>(obj: &'v Map, key: &str) -> Result<&'v Value, ProtoError> {
    obj.get(key)
        .ok_or_else(|| ProtoError::new(ErrorCode::MissingField, format!("missing field {key:?}")))
}

fn need_str(obj: &Map, key: &str) -> Result<String, ProtoError> {
    need(obj, key)?.as_str().map(str::to_owned).ok_or_else(|| {
        ProtoError::new(ErrorCode::InvalidField, format!("field {key:?} must be a string"))
    })
}

fn need_u64(obj: &Map, key: &str) -> Result<u64, ProtoError> {
    need(obj, key)?.as_u64().ok_or_else(|| {
        ProtoError::new(
            ErrorCode::InvalidField,
            format!("field {key:?} must be a non-negative integer"),
        )
    })
}

impl Request {
    /// Parses a decoded frame into a request. The returned `Value` is
    /// the request `id` (or `Null`), echoed in the response either way.
    pub fn parse(frame: &Value) -> (Value, Result<Request, ProtoError>) {
        let id = frame.get("id").cloned().unwrap_or(Value::Null);
        (id, Self::parse_inner(frame))
    }

    fn parse_inner(frame: &Value) -> Result<Request, ProtoError> {
        let obj = frame.as_object().ok_or_else(|| {
            ProtoError::new(ErrorCode::MalformedFrame, "frame must be a JSON object")
        })?;
        let verb = need_str(obj, "verb")
            .map_err(|e| ProtoError::new(ErrorCode::UnknownVerb, e.message))?;
        match verb.as_str() {
            "create_session" => {
                let budget = need_u64(obj, "budget")?;
                if budget == 0 {
                    return Err(ProtoError::new(
                        ErrorCode::InvalidField,
                        "budget must be at least 1",
                    ));
                }
                let profile = match obj.get("profile") {
                    None | Some(Value::Null) => Profile::Default,
                    Some(v) => v.as_str().and_then(Profile::parse).ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::InvalidField,
                            "profile must be \"default\" or \"fast\"",
                        )
                    })?,
                };
                Ok(Request::CreateSession {
                    workload: need_str(obj, "workload")?,
                    space: need_str(obj, "space")?,
                    seed: need_u64(obj, "seed")?,
                    budget: usize::try_from(budget).map_err(|_| {
                        ProtoError::new(ErrorCode::InvalidField, "budget out of range")
                    })?,
                    profile,
                })
            }
            "suggest" => Ok(Request::Suggest { session: need_str(obj, "session")? }),
            "observe" => {
                let time_s = need(obj, "time_s")?.as_f64().ok_or_else(|| {
                    ProtoError::new(ErrorCode::InvalidField, "field \"time_s\" must be a number")
                })?;
                let status = need_str(obj, "status")?;
                let status = ObservedStatus::parse(&status).ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::InvalidField,
                        "status must be completed|capped|failed|transient",
                    )
                })?;
                let index = match obj.get("index") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_u64().ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::InvalidField,
                            "field \"index\" must be a non-negative integer",
                        )
                    })?),
                };
                Ok(Request::Observe {
                    session: need_str(obj, "session")?,
                    index,
                    time_s,
                    status,
                })
            }
            "best" => Ok(Request::Best { session: need_str(obj, "session")? }),
            "status" => {
                let session = match obj.get("session") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::InvalidField,
                            "field \"session\" must be a string",
                        )
                    })?),
                };
                Ok(Request::Status { session })
            }
            "close_session" => Ok(Request::CloseSession { session: need_str(obj, "session")? }),
            "metrics" => {
                let session = match obj.get("session") {
                    None | Some(Value::Null) => None,
                    Some(v) => Some(v.as_str().map(str::to_owned).ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::InvalidField,
                            "field \"session\" must be a string",
                        )
                    })?),
                };
                let format = match obj.get("format") {
                    None | Some(Value::Null) => MetricsFormat::Json,
                    Some(v) => v.as_str().and_then(MetricsFormat::parse).ok_or_else(|| {
                        ProtoError::new(
                            ErrorCode::InvalidField,
                            "format must be \"json\" or \"prometheus\"",
                        )
                    })?,
                };
                Ok(Request::Metrics { session, format })
            }
            "health" => Ok(Request::Health),
            "diagnose" => Ok(Request::Diagnose { session: need_str(obj, "session")? }),
            "shutdown" => Ok(Request::Shutdown),
            other => {
                Err(ProtoError::new(ErrorCode::UnknownVerb, format!("unknown verb {other:?}")))
            }
        }
    }
}

/// Starts an `{"id":…,"ok":true}` response frame to extend with fields.
pub fn ok_frame(id: &Value) -> Map {
    let mut m = Map::new();
    m.insert("id".into(), id.clone());
    m.insert("ok".into(), Value::Bool(true));
    m
}

/// Renders a typed error as a complete response frame.
pub fn error_frame(id: &Value, err: &ProtoError) -> Value {
    let mut e = Map::new();
    e.insert("code".into(), Value::from(err.code.as_str()));
    e.insert("message".into(), Value::from(err.message.clone()));
    let mut m = Map::new();
    m.insert("id".into(), id.clone());
    m.insert("ok".into(), Value::Bool(false));
    m.insert("error".into(), Value::Object(e));
    Value::Object(m)
}

/// Renders a configuration as a wire object: parameter name → typed
/// value (ints as JSON integers, floats as JSON numbers, booleans as
/// booleans, categoricals as the choice *name*). Floats print in
/// shortest-round-trip form, so [`config_from_wire`] recovers the exact
/// bits — the determinism guarantee leans on this.
pub fn config_to_wire(space: &ConfigSpace, config: &Configuration) -> Value {
    let mut m = Map::new();
    for (def, v) in space.params().iter().zip(config.values()) {
        let jv = match v {
            ParamValue::Int(i) => Value::from(*i),
            ParamValue::Float(f) => Value::from(*f),
            ParamValue::Bool(b) => Value::Bool(*b),
            ParamValue::Cat(i) => match &def.kind {
                ParamKind::Categorical { choices } => match choices.get(*i) {
                    Some(name) => Value::from(name.as_str()),
                    None => Value::from(*i as i64),
                },
                _ => Value::from(*i as i64),
            },
        };
        m.insert(def.name.clone(), jv);
    }
    Value::Object(m)
}

/// Parses a wire configuration object back into a [`Configuration`]
/// over `space`. Every parameter must be present with the right type;
/// categoricals are given by choice name.
pub fn config_from_wire(space: &ConfigSpace, v: &Value) -> Result<Configuration, ProtoError> {
    let obj = v.as_object().ok_or_else(|| {
        ProtoError::new(ErrorCode::InvalidField, "config must be a JSON object")
    })?;
    let mut values = Vec::with_capacity(space.len());
    for def in space.params() {
        let item = obj.get(&def.name).ok_or_else(|| {
            ProtoError::new(ErrorCode::MissingField, format!("config missing {:?}", def.name))
        })?;
        let bad = |want: &str| {
            ProtoError::new(
                ErrorCode::InvalidField,
                format!("config field {:?} must be {want}", def.name),
            )
        };
        let pv = match &def.kind {
            ParamKind::Int { .. } => {
                ParamValue::Int(item.as_i64().ok_or_else(|| bad("an integer"))?)
            }
            ParamKind::Float { .. } => {
                ParamValue::Float(item.as_f64().ok_or_else(|| bad("a number"))?)
            }
            ParamKind::Bool => ParamValue::Bool(item.as_bool().ok_or_else(|| bad("a boolean"))?),
            ParamKind::Categorical { choices } => {
                let name = item.as_str().ok_or_else(|| bad("a choice name string"))?;
                let idx = choices.iter().position(|c| c == name).ok_or_else(|| {
                    ProtoError::new(
                        ErrorCode::InvalidField,
                        format!("config field {:?}: unknown choice {name:?}", def.name),
                    )
                })?;
                ParamValue::Cat(idx)
            }
        };
        values.push(pv);
    }
    Ok(Configuration::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::spark::spark_space;
    use robotune_space::SearchSpace;
    use robotune_stats::rng_from_seed;

    #[test]
    fn configs_round_trip_the_wire_bit_exactly() {
        let space = spark_space();
        let mut rng = rng_from_seed(11);
        for _ in 0..50 {
            let point: Vec<f64> =
                (0..space.dim()).map(|_| rand::Rng::gen::<f64>(&mut rng)).collect();
            let config = space.decode(&point);
            let wire = config_to_wire(&space, &config);
            let text = serde_json::to_string(&wire).unwrap();
            let back = config_from_wire(&space, &serde_json::from_str(&text).unwrap()).unwrap();
            assert_eq!(config, back, "wire round trip must be exact");
        }
    }

    #[test]
    fn requests_parse_and_reject_with_typed_errors() {
        let (id, req) = Request::parse(
            &serde_json::from_str(
                r#"{"id":7,"verb":"create_session","workload":"km","space":"spark","seed":3,"budget":20,"profile":"fast"}"#,
            )
            .unwrap(),
        );
        assert_eq!(id.as_i64(), Some(7));
        assert_eq!(
            req.unwrap(),
            Request::CreateSession {
                workload: "km".into(),
                space: "spark".into(),
                seed: 3,
                budget: 20,
                profile: Profile::Fast,
            }
        );

        for (frame, code) in [
            (r#"{"verb":"warp"}"#, ErrorCode::UnknownVerb),
            (r#"{"verb":"suggest"}"#, ErrorCode::MissingField),
            (r#"{"verb":"observe","session":"s-1","time_s":"x","status":"completed"}"#, ErrorCode::InvalidField),
            (r#"{"verb":"observe","session":"s-1","time_s":1.0,"status":"exploded"}"#, ErrorCode::InvalidField),
            (r#"{"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":0}"#, ErrorCode::InvalidField),
            (r#"[1,2]"#, ErrorCode::MalformedFrame),
        ] {
            let (_, req) = Request::parse(&serde_json::from_str(frame).unwrap());
            assert_eq!(req.unwrap_err().code, code, "frame {frame}");
        }
    }

    #[test]
    fn metrics_and_health_verbs_parse() {
        let (_, req) = Request::parse(&serde_json::from_str(r#"{"verb":"metrics"}"#).unwrap());
        assert_eq!(
            req.unwrap(),
            Request::Metrics { session: None, format: MetricsFormat::Json }
        );
        let (_, req) = Request::parse(
            &serde_json::from_str(r#"{"verb":"metrics","session":"s-9","format":"prometheus"}"#)
                .unwrap(),
        );
        assert_eq!(
            req.unwrap(),
            Request::Metrics { session: Some("s-9".into()), format: MetricsFormat::Prometheus }
        );
        let (_, req) = Request::parse(
            &serde_json::from_str(r#"{"verb":"metrics","format":"xml"}"#).unwrap(),
        );
        assert_eq!(req.unwrap_err().code, ErrorCode::InvalidField);
        let (_, req) = Request::parse(&serde_json::from_str(r#"{"verb":"health"}"#).unwrap());
        assert_eq!(req.unwrap(), Request::Health);
    }

    #[test]
    fn session_id_covers_every_session_bearing_verb() {
        let cases = [
            (r#"{"verb":"suggest","session":"s-1"}"#, Some("s-1")),
            (
                r#"{"verb":"observe","session":"s-2","time_s":1.0,"status":"completed"}"#,
                Some("s-2"),
            ),
            (r#"{"verb":"best","session":"s-3"}"#, Some("s-3")),
            (r#"{"verb":"close_session","session":"s-4"}"#, Some("s-4")),
            (r#"{"verb":"status","session":"s-5"}"#, Some("s-5")),
            (r#"{"verb":"metrics","session":"s-6"}"#, Some("s-6")),
            (r#"{"verb":"diagnose","session":"s-7"}"#, Some("s-7")),
            (r#"{"verb":"status"}"#, None),
            (r#"{"verb":"health"}"#, None),
            (r#"{"verb":"shutdown"}"#, None),
        ];
        for (frame, want) in cases {
            let (_, req) = Request::parse(&serde_json::from_str(frame).unwrap());
            assert_eq!(req.unwrap().session_id(), want, "frame {frame}");
        }
    }

    #[test]
    fn observed_status_inverts_evaluation_classification() {
        for eval in [
            Evaluation::completed(12.5),
            Evaluation::capped(480.0),
            Evaluation::failed(3.25),
            Evaluation::transient_failure(1.0),
        ] {
            let status = ObservedStatus::of(&eval);
            assert_eq!(status.to_evaluation(eval.time_s), eval);
        }
    }
}
