//! The `diagnose` verb: a tuner-health view of one session.
//!
//! Where `metrics` answers "how fast", `diagnose` answers "is the
//! optimizer healthy": it extracts the structured `diag.*` series the
//! gp/bo/mf layers emit (kernel conditioning + jitter per fit,
//! lengthscale vectors, acquisition scores and hedge probabilities,
//! incumbent series, rung promotion outcomes) from the session's
//! telemetry scope ring and renders them under a versioned schema, plus
//! a whitelisted set of deterministic tuner counters and a derived
//! scalar summary. `experiments doctor` runs its rule-based detectors
//! over exactly this payload.
//!
//! Determinism: series points are listed oldest-first with a normalized
//! per-series index `i` (ring position), never the raw emission `iter`
//! — fit sequence numbers are process-global, so raw values would vary
//! run to run while the *content* of each point is deterministic at a
//! fixed seed. Flight dumps keep the raw iters for monotonicity checks.

use crate::session::ServedSession;
use robotune_obs::EventData;
use serde_json::{Map, Value};

/// Version tag carried by every diagnose response.
pub const DIAGNOSE_SCHEMA: &str = "robotune.diagnose.v1";

/// Counter prefixes included in a diagnose response: deterministic
/// tuner-side event counts. Timing histograms and service counters are
/// deliberately excluded — they vary run to run.
const COUNTER_PREFIXES: [&str; 4] = ["gp.", "bo.", "mf.", "tuner."];

/// Extends an `ok` frame with the diagnose payload for `s`.
pub fn extend_diagnose(m: &mut Map, s: &ServedSession) {
    m.insert("schema".into(), Value::from(DIAGNOSE_SCHEMA));
    m.insert("session".into(), Value::from(s.id.as_str()));
    m.insert("workload".into(), Value::from(s.spec.workload.as_str()));
    m.insert("state".into(), Value::from(s.state().as_str()));
    m.insert("seed".into(), Value::from(s.spec.seed));
    m.insert("budget".into(), Value::from(s.spec.budget as u64));
    m.insert("profile".into(), Value::from(s.spec.profile.as_str()));
    m.insert("tracing_enabled".into(), Value::Bool(robotune_obs::is_enabled()));

    let stats = s.stats();
    let mut st = Map::new();
    st.insert("asked".into(), Value::from(stats.asked));
    st.insert("observed".into(), Value::from(stats.observed));
    st.insert("completed".into(), Value::from(stats.completed));
    st.insert("failed".into(), Value::from(stats.failed));
    st.insert("capped".into(), Value::from(stats.capped));
    st.insert("best_time_s".into(), stats.best_time_s.map_or(Value::Null, Value::from));
    m.insert("stats".into(), Value::Object(st));

    let snap = s.scope().snapshot();
    let mut counters = Map::new();
    for (name, total) in &snap.counters {
        if COUNTER_PREFIXES.iter().any(|p| name.starts_with(p)) {
            counters.insert(name.clone(), Value::from(*total));
        }
    }
    m.insert("counters".into(), Value::Object(counters));

    // Group diag events by series name, oldest first (ring order), and
    // re-index each series from 0 so the payload is stable at a fixed
    // seed even though emission iters are process-global.
    let mut series: Vec<(&'static str, Vec<Value>)> = Vec::new();
    for event in s.scope().recent_events() {
        if let EventData::Diag { name, data, .. } = event.data {
            let pos = series.iter().position(|(n, _)| *n == name).unwrap_or_else(|| {
                series.push((name, Vec::new()));
                series.len() - 1
            });
            let points = &mut series[pos].1;
            let mut point = Map::new();
            point.insert("i".into(), Value::from(points.len() as u64));
            if let Some(obj) = data.as_object() {
                for (k, v) in obj.iter() {
                    point.insert(k.clone(), v.clone());
                }
            } else {
                point.insert("data".into(), data);
            }
            points.push(Value::Object(point));
        }
    }
    series.sort_by(|a, b| a.0.cmp(b.0));
    m.insert("summary".into(), Value::Object(summarize(&series)));
    let mut sm = Map::new();
    for (name, points) in series {
        sm.insert(name.to_string(), Value::Array(points));
    }
    m.insert("series".into(), Value::Object(sm));
    m.insert("dropped_events".into(), Value::from(s.scope().dropped_events()));
}

/// Derived scalars over the diag series: what `experiments top` shows
/// in its `health` column and what the doctor's cheap checks read
/// without walking every point.
fn summarize(series: &[(&'static str, Vec<Value>)]) -> Map {
    let get = |name: &str| series.iter().find(|(n, _)| *n == name).map(|(_, p)| p.as_slice());
    let mut m = Map::new();

    let fits = get("diag.gp.fit").unwrap_or(&[]);
    m.insert("gp_fits".into(), Value::from(fits.len() as u64));
    let fallbacks =
        fits.iter().filter(|p| p.get("fallback").and_then(Value::as_bool) == Some(true)).count();
    m.insert("gp_fallbacks".into(), Value::from(fallbacks as u64));
    m.insert("gp_max_cond".into(), fold_f64(fits, "cond", f64::max));
    m.insert("gp_max_jitter".into(), fold_f64(fits, "jitter", f64::max));
    let min_scale = fits
        .iter()
        .filter_map(|p| p.get("lengthscales").and_then(Value::as_array))
        .flat_map(|ls| ls.iter().filter_map(Value::as_f64))
        .fold(f64::INFINITY, f64::min);
    m.insert(
        "gp_min_lengthscale".into(),
        if min_scale.is_finite() { Value::from(min_scale) } else { Value::Null },
    );

    let observes = get("diag.bo.observe").unwrap_or(&[]);
    m.insert("bo_rounds".into(), Value::from(observes.len() as u64));
    m.insert(
        "incumbent".into(),
        observes.last().and_then(|p| p.get("best")).cloned().unwrap_or(Value::Null),
    );

    let rungs = get("diag.mf.rung").unwrap_or(&[]);
    m.insert("mf_rungs".into(), Value::from(rungs.len() as u64));
    let promoted: u64 =
        rungs.iter().filter_map(|p| p.get("promoted").and_then(Value::as_u64)).sum();
    m.insert("mf_promoted".into(), Value::from(promoted));
    m
}

/// Folds a numeric field across series points; `Null` when absent.
fn fold_f64(points: &[Value], key: &str, f: fn(f64, f64) -> f64) -> Value {
    let mut acc: Option<f64> = None;
    for p in points {
        if let Some(v) = p.get(key).and_then(Value::as_f64) {
            acc = Some(match acc {
                Some(a) => f(a, v),
                None => v,
            });
        }
    }
    acc.map_or(Value::Null, Value::from)
}
