//! `robotune-service`: a long-running, multi-tenant ask/tell tuning
//! daemon over the ROBOTune pipeline.
//!
//! The library crates drive an [`Objective`](robotune_tuners::Objective)
//! *push*-style: the tuner calls `evaluate` and blocks until a
//! measurement comes back. A service has the opposite shape — clients
//! *pull* a suggestion, run it on their cluster, and report the result
//! whenever it lands. This crate inverts control without forking the
//! pipeline: each session runs the unmodified
//! [`RoboTune`](robotune::RoboTune) stack on a worker thread against a
//! channel-backed objective ([`session`]), so a served trajectory is
//! **bit-identical** to an in-process run at the same seed.
//!
//! Pieces:
//!
//! - [`protocol`] — the newline-delimited JSON request/response frames
//!   and the typed error codes, plus the configuration wire codec;
//! - [`store`] — [`PersistentMemoStore`]: the process-wide shared memo
//!   store, sharded by workload fingerprint, each shard with its own
//!   lock, snapshot, and checksummed segmented WAL with compaction and
//!   crash recovery;
//! - [`session`] — one served tuning session (ask/tell channel bridge,
//!   lifecycle, per-session accounting);
//! - [`manager`] — [`SessionManager`]: the bounded worker pool, the
//!   admission queue with backpressure, and request dispatch;
//! - [`diagnose`] — the tuner-health view behind the `diagnose` verb:
//!   `diag.*` series (GP conditioning, acquisition/hedge state, regret,
//!   rung outcomes) extracted from the session's scope ring under a
//!   versioned schema;
//! - [`framing`] — [`FrameDecoder`]: incremental, capped NDJSON frame
//!   reassembly shared by the server reactor and pipelined clients;
//! - [`server`] — the nonblocking reactor ([`serve`]): one event-loop
//!   thread (epoll via the `mio` stand-in) owns every connection's
//!   state machine — incremental frame reassembly, buffered
//!   nonblocking writes with backpressure, per-connection serial
//!   pipelining into a dispatch pool — so one process holds tens of
//!   thousands of idle tenants without a thread or a wakeup each;
//! - [`flight`] — [`FlightRecorder`]: JSONL black-box dumps (recent
//!   telemetry events + config trajectory + fault/retry counters) for
//!   sessions that are cancelled or trip fault paths;
//! - [`client`] — [`TuningClient`], a small blocking client library used
//!   by the bench load generator and the integration tests.
//!
//! Live introspection: every session owns a telemetry
//! [`Scope`](robotune_obs::Scope), entered by the worker running its
//! pipeline *and* by connection threads serving its requests, so the
//! `metrics` verb can answer per-session counters/histograms (JSON or
//! Prometheus text) and `health` reports rolling suggest/observe SLO
//! percentiles, worker/queue pressure, and store WAL lag.
//!
//! Everything is `std`-only: the TCP layer is `std::net`, JSON is the
//! workspace's `serde_json` stand-in, threads are `std::thread::scope`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod diagnose;
pub mod flight;
pub mod framing;
pub mod manager;
pub mod protocol;
pub mod server;
pub mod session;
pub mod store;

pub use client::{ClientError, DriveReport, Suggestion, TuningClient};
pub use diagnose::DIAGNOSE_SCHEMA;
pub use flight::{FlightRecorder, FLIGHT_FORMAT_VERSION};
pub use framing::{DecodedFrame, FrameDecoder};
pub use manager::{ServiceOptions, SessionManager};
pub use protocol::{
    ErrorCode, MetricsFormat, ObservedStatus, Profile, ProtoError, Request, MAX_FRAME_BYTES,
};
pub use server::serve;
pub use session::{SessionOutcome, SessionState, TrajectoryEntry};
pub use store::{inspect_store, verify_store, PersistentMemoStore, StoreOptions};
