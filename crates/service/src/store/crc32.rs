//! CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) used to
//! checksum every WAL record payload.
//!
//! The checksum is computed over the *exact serialized payload bytes*
//! as they appear inside the record line, never over a re-serialized
//! value: float formatting is not canonical across writers, so hashing
//! re-encoded JSON would make valid records unverifiable.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_standard_check_value() {
        // The canonical CRC-32 check vector; pins the polynomial and
        // reflection so on-disk checksums can never silently change.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn detects_single_byte_flips() {
        let a = crc32(b"{\"op\":\"sel\"}");
        let b = crc32(b"{\"op\":\"sek\"}");
        assert_ne!(a, b);
    }
}
