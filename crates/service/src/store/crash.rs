//! Crash-injection points for the torture harness.
//!
//! The store calls [`hit`] at named interleaving points and routes WAL
//! writes through [`wal_write_budget`]. Both are inert unless the
//! `ROBOTUNE_STORE_CRASH` environment variable is set, which only the
//! crash-recovery tests do when spawning a child process:
//!
//! - `wal-byte:<n>` — abort after `n` cumulative WAL bytes, writing
//!   (and flushing) a partial record first, so the surviving file ends
//!   in a torn line at an arbitrary byte offset;
//! - `seal:<k>` — abort at the k-th segment seal, between closing the
//!   full segment and creating its successor;
//! - `ckpt-tmp:<k>` — abort at the k-th checkpoint after the tmp
//!   snapshot is written but before the rename;
//! - `ckpt-rename:<k>` — abort after the snapshot rename but before any
//!   sealed segment is deleted (the double-replay window LSN gating
//!   must cover);
//! - `ckpt-clean:<k>` — abort after the k-th segment deletion overall,
//!   mid-cleanup.
//!
//! Aborts use [`std::process::abort`] so no destructor, flush, or
//! unwind cleanup softens the crash.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Environment variable holding the crash plan.
pub const CRASH_ENV: &str = "ROBOTUNE_STORE_CRASH";

struct Plan {
    point: String,
    n: u64,
}

static PLAN: OnceLock<Option<Plan>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static WAL_BYTES: AtomicU64 = AtomicU64::new(0);

fn plan() -> Option<&'static Plan> {
    PLAN.get_or_init(|| {
        let spec = std::env::var(CRASH_ENV).ok()?;
        let (point, n) = spec.rsplit_once(':')?;
        let n = n.parse::<u64>().ok()?;
        Some(Plan {
            point: point.to_string(),
            n,
        })
    })
    .as_ref()
}

/// A named crash point; aborts the process on the configured occurrence.
pub fn hit(point: &str) {
    let Some(p) = plan() else { return };
    if p.point != point {
        return;
    }
    if HITS.fetch_add(1, Ordering::SeqCst) + 1 >= p.n.max(1) {
        std::process::abort();
    }
}

/// Intercepts a WAL write of `len` bytes under a `wal-byte:<n>` plan.
///
/// Returns `Some(k)` when this write crosses the byte budget: the
/// caller must write only the first `k` bytes, flush, and abort.
/// Returns `None` (write everything, carry on) otherwise.
pub fn wal_write_budget(len: usize) -> Option<usize> {
    let p = plan()?;
    if p.point != "wal-byte" {
        return None;
    }
    let before = WAL_BYTES.fetch_add(len as u64, Ordering::SeqCst);
    if before + len as u64 > p.n {
        Some(usize::try_from(p.n.saturating_sub(before)).unwrap_or(0))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_without_the_env_var() {
        // The test runner never sets CRASH_ENV, so both hooks must be
        // no-ops here — if they weren't, this very process would abort.
        hit("seal");
        hit("ckpt-rename");
        assert_eq!(wal_write_budget(4096), None);
    }
}
