//! One shard of the persistent store: an in-memory store plus its own
//! snapshot file and segmented WAL, owned by exactly one lock in
//! [`super::PersistentMemoStore`].

use super::codec::{
    decode_record, decode_snapshot, encode_cfg, encode_record, encode_sel, encode_snapshot,
    WalRecord,
};
use super::crash;
use super::segment::{list_segments, segment_file_name, SegmentReader, SegmentWriter};
use super::{FORMAT_VERSION, SNAPSHOT_FILE};
use robotune::{InMemoryMemoStore, MemoStore, ShardStatus};
use robotune_space::Configuration;
use serde_json::Value;
use std::fs::{self, OpenOptions};
use std::path::{Path, PathBuf};

/// Per-shard persistence engine. All methods assume the caller holds
/// this shard's lock.
pub(crate) struct ShardCore {
    index: usize,
    dir: PathBuf,
    corrupt_dir: PathBuf,
    segment_max_bytes: u64,
    compact_after_sealed: u64,
    inner: InMemoryMemoStore,
    writer: Option<SegmentWriter>,
    /// Sequence numbers of segment files currently on disk, ascending.
    live_segments: Vec<u64>,
    next_seq: u64,
    /// Highest LSN durably appended (or recovered) in this shard.
    last_lsn: u64,
    /// LSN the on-disk snapshot is current through.
    snap_lsn: u64,
    degraded: bool,
    corrupt_segments: u64,
    torn_tails: u64,
    boot_replayed: u64,
}

impl ShardCore {
    /// Opens shard `index` under `root`, replaying snapshot then WAL
    /// segments. Corruption never fails the boot: bad segments are
    /// quarantined into `corrupt_dir` and the valid prefix is folded
    /// into a fresh snapshot immediately.
    pub(crate) fn open(
        root: &Path,
        corrupt_dir: &Path,
        index: usize,
        segment_max_bytes: u64,
        compact_after_sealed: u64,
    ) -> Result<ShardCore, String> {
        let dir = root.join(format!("shard-{index:02}"));
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let mut shard = ShardCore {
            index,
            dir,
            corrupt_dir: corrupt_dir.to_path_buf(),
            segment_max_bytes,
            compact_after_sealed,
            inner: InMemoryMemoStore::new(),
            writer: None,
            live_segments: Vec::new(),
            next_seq: 1,
            last_lsn: 0,
            snap_lsn: 0,
            degraded: false,
            corrupt_segments: 0,
            torn_tails: 0,
            boot_replayed: 0,
        };
        shard.boot()?;
        Ok(shard)
    }

    fn boot(&mut self) -> Result<(), String> {
        // A crash between writing the tmp snapshot and the rename
        // leaves a stray tmp; it was never the authoritative copy.
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        if tmp.exists() {
            let _ = fs::remove_file(&tmp);
        }

        let mut needs_checkpoint = false;
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        if snap_path.exists() {
            let decoded = fs::read_to_string(&snap_path)
                .map_err(|e| format!("read {}: {e}", snap_path.display()))
                .and_then(|text| {
                    serde_json::from_str(&text)
                        .map_err(|e| format!("parse {}: {e}", snap_path.display()))
                })
                .and_then(|v| decode_snapshot(&v));
            match decoded {
                Ok((inner, lsn)) => {
                    self.inner = inner;
                    self.snap_lsn = lsn;
                    self.last_lsn = lsn;
                }
                Err(e) => {
                    // A bad snapshot quarantines like a bad segment: the
                    // shard reboots from whatever the WAL still holds
                    // rather than taking the whole store down.
                    robotune_obs::incr("service.store.snapshot_corrupt", 1);
                    robotune_obs::mark("service.store.snapshot_corrupt", || {
                        serde_json::json!({ "shard": self.index, "error": e })
                    });
                    self.quarantine_file(&snap_path, SNAPSHOT_FILE);
                    needs_checkpoint = true;
                }
            }
        }

        let seqs = list_segments(&self.dir)?;
        if let Some(&max) = seqs.iter().max() {
            self.next_seq = max + 1;
        }
        let mut quarantine_from: Option<usize> = None;
        'segments: for (i, &seq) in seqs.iter().enumerate() {
            let is_last_segment = i + 1 == seqs.len();
            let path = self.dir.join(segment_file_name(seq));
            let mut reader = SegmentReader::open(&path)?;
            let mut saw_header = false;
            while let Some(line) = reader.next_line()? {
                let decoded = if !saw_header && line.lineno == 1 {
                    decode_record(&line.text).and_then(|r| match r {
                        WalRecord::Header {
                            version,
                            shard,
                            seq: hseq,
                        } if version == FORMAT_VERSION && shard == self.index && hseq == seq => {
                            Ok(r)
                        }
                        WalRecord::Header { version, shard, seq: hseq } => Err(format!(
                            "header mismatch: version {version} shard {shard} seq {hseq} \
                             (want {FORMAT_VERSION}/{}/{seq})",
                            self.index
                        )),
                        WalRecord::Op { .. } => Err("first record is not a header".into()),
                    })
                } else {
                    decode_record(&line.text)
                };
                match decoded {
                    Ok(WalRecord::Header { .. }) if saw_header => {
                        // A second header mid-file means two segments
                        // were spliced together somehow: not trustable.
                        self.note_corrupt(&path, seq, line.lineno, "unexpected mid-file header");
                        quarantine_from = Some(i);
                        break 'segments;
                    }
                    Ok(WalRecord::Header { .. }) => saw_header = true,
                    Ok(WalRecord::Op { lsn, op }) => {
                        // LSN gating makes replay idempotent: segments
                        // that survived a crash mid-checkpoint-cleanup
                        // hold ops the snapshot already contains.
                        if lsn > self.last_lsn {
                            op.apply(&mut self.inner);
                            self.last_lsn = lsn;
                            self.boot_replayed += 1;
                        }
                    }
                    Err(e) => {
                        if is_last_segment && !line.has_more {
                            // Torn tail: the process died mid-append.
                            // Truncate to the last valid record so the
                            // file is clean for verification and the
                            // next writer never interleaves with junk.
                            robotune_obs::incr("service.store.wal_torn_line", 1);
                            self.torn_tails += 1;
                            if OpenOptions::new()
                                .write(true)
                                .open(&path)
                                .and_then(|f| f.set_len(line.offset))
                                .is_err()
                            {
                                robotune_obs::incr("service.store.wal_error", 1);
                            }
                            break 'segments;
                        }
                        self.note_corrupt(&path, seq, line.lineno, &e);
                        quarantine_from = Some(i);
                        break 'segments;
                    }
                }
            }
        }

        match quarantine_from {
            Some(from) => {
                // The corrupt segment and everything after it are
                // untrustworthy (later records depend on earlier LSNs);
                // move them aside and keep only the verified prefix.
                for &seq in &seqs[from..] {
                    let path = self.dir.join(segment_file_name(seq));
                    let name = segment_file_name(seq);
                    self.quarantine_file(&path, &name);
                    self.corrupt_segments += 1;
                }
                self.live_segments = seqs[..from].to_vec();
                needs_checkpoint = true;
            }
            None => self.live_segments = seqs,
        }

        if needs_checkpoint {
            // Fold the recovered prefix into a fresh snapshot now: the
            // quarantined records are out of the replay path, so state
            // recovered from them must not depend on a future clean
            // shutdown to survive the next crash.
            if let Err(e) = self.checkpoint() {
                robotune_obs::incr("service.store.checkpoint_error", 1);
                robotune_obs::mark("service.store.checkpoint_error", || {
                    serde_json::json!({ "shard": self.index, "error": e, "at": "boot" })
                });
                self.degraded = true;
            }
        }
        Ok(())
    }

    fn note_corrupt(&self, path: &Path, seq: u64, lineno: u64, detail: &str) {
        robotune_obs::incr("service.store.wal_corrupt_record", 1);
        robotune_obs::mark("service.store.wal_corrupt_record", || {
            serde_json::json!({
                "shard": self.index,
                "segment": seq,
                "file": path.display().to_string(),
                "line": lineno,
                "error": detail,
            })
        });
    }

    /// Moves `path` into the quarantine directory under a
    /// shard-qualified name, never overwriting an earlier quarantine.
    fn quarantine_file(&self, path: &Path, name: &str) {
        if fs::create_dir_all(&self.corrupt_dir).is_err() {
            robotune_obs::incr("service.store.wal_error", 1);
            return;
        }
        let base = format!("shard-{:02}.{name}", self.index);
        let mut dest = self.corrupt_dir.join(&base);
        let mut dup = 1;
        while dest.exists() {
            dest = self.corrupt_dir.join(format!("{base}.dup{dup}"));
            dup += 1;
        }
        if fs::rename(path, &dest).is_err() {
            robotune_obs::incr("service.store.wal_error", 1);
        }
    }

    /// Journals one payload (WAL-before-memory), handling rotation,
    /// compaction, and degradation.
    fn journal(&mut self, payload: &Value) {
        // Seal the open segment once it is full. The crash point sits
        // in the gap where a full segment exists but its successor
        // does not yet.
        if self
            .writer
            .as_ref()
            .is_some_and(|w| w.bytes >= self.segment_max_bytes)
        {
            self.writer = None;
            crash::hit("seal");
            if self.live_segments.len() as u64 >= self.compact_after_sealed {
                // Compaction is just a checkpoint: fold every sealed
                // segment into the snapshot and delete them. Failure is
                // not durability loss — appends continue on new
                // segments — so it only counts, it does not degrade.
                if let Err(e) = self.checkpoint() {
                    robotune_obs::incr("service.store.checkpoint_error", 1);
                    robotune_obs::mark("service.store.checkpoint_error", || {
                        serde_json::json!({ "shard": self.index, "error": e, "at": "compact" })
                    });
                }
            }
        }
        let line = match encode_record(payload) {
            Ok(line) => line,
            Err(_) => {
                robotune_obs::incr("service.store.wal_error", 1);
                return;
            }
        };
        if self.writer.is_none() {
            match SegmentWriter::create(&self.dir, FORMAT_VERSION, self.index, self.next_seq) {
                Ok(w) => {
                    self.live_segments.push(w.seq);
                    self.next_seq += 1;
                    self.writer = Some(w);
                }
                Err(e) => {
                    self.enter_degraded(&e);
                    return;
                }
            }
        }
        let Some(writer) = self.writer.as_mut() else {
            return;
        };
        match writer.append(&line) {
            Ok(()) => {
                self.last_lsn += 1;
                // A successful durable append means the disk is back.
                self.degraded = false;
            }
            Err(e) => {
                self.writer = None;
                self.enter_degraded(&e);
            }
        }
    }

    fn enter_degraded(&mut self, error: &str) {
        self.degraded = true;
        robotune_obs::incr("service.store.wal_error", 1);
        robotune_obs::mark("service.store.degraded", || {
            serde_json::json!({ "shard": self.index, "error": error })
        });
    }

    pub(crate) fn put_selection(&mut self, workload: &str, names: Vec<String>) {
        let payload = encode_sel(self.last_lsn + 1, workload, &names);
        self.journal(&payload);
        self.inner.put_selection(workload, names);
    }

    pub(crate) fn record_config(&mut self, workload: &str, config: Configuration, time_s: f64) {
        let payload = encode_cfg(self.last_lsn + 1, workload, &config, time_s);
        self.journal(&payload);
        self.inner.record_config(workload, config, time_s);
    }

    pub(crate) fn selection(&self, workload: &str) -> Option<Vec<String>> {
        self.inner.selection(workload)
    }

    pub(crate) fn best_recent(&self, workload: &str, n: usize) -> Vec<(Configuration, f64)> {
        self.inner.best_recent(workload, n)
    }

    pub(crate) fn has_selection(&self, workload: &str) -> bool {
        self.inner.has_selection(workload)
    }

    pub(crate) fn has_configs(&self, workload: &str) -> bool {
        self.inner.has_configs(workload)
    }

    pub(crate) fn workloads(&self) -> Vec<String> {
        self.inner.workloads()
    }

    pub(crate) fn wal_lag(&self) -> u64 {
        self.last_lsn.saturating_sub(self.snap_lsn)
    }

    /// Writes a fresh snapshot atomically, then deletes every folded
    /// segment. Crash points cover each interleaving the torture
    /// harness exercises.
    pub(crate) fn checkpoint(&mut self) -> Result<(), String> {
        let snap = encode_snapshot(&self.inner, FORMAT_VERSION, self.last_lsn);
        let text =
            serde_json::to_string_pretty(&snap).map_err(|e| format!("encode snapshot: {e}"))?;
        let tmp = self.dir.join(format!("{SNAPSHOT_FILE}.tmp"));
        let dst = self.dir.join(SNAPSHOT_FILE);
        fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
        crash::hit("ckpt-tmp");
        fs::rename(&tmp, &dst)
            .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), dst.display()))?;
        crash::hit("ckpt-rename");
        // The snapshot now covers every journaled LSN; segments are
        // redundant. Losing the process mid-cleanup is safe: replay of
        // a leftover segment is a no-op under LSN gating.
        self.writer = None;
        for seq in std::mem::take(&mut self.live_segments) {
            if fs::remove_file(self.dir.join(segment_file_name(seq))).is_err() {
                robotune_obs::incr("service.store.segment_remove_error", 1);
            }
            crash::hit("ckpt-clean");
        }
        self.snap_lsn = self.last_lsn;
        self.degraded = false;
        robotune_obs::incr("service.store.checkpoints", 1);
        Ok(())
    }

    pub(crate) fn boot_replayed(&self) -> u64 {
        self.boot_replayed
    }

    pub(crate) fn status(&self) -> ShardStatus {
        ShardStatus {
            shard: self.index,
            wal_lag: self.wal_lag(),
            segments: self.live_segments.len() as u64,
            wal_bytes: self.writer.as_ref().map_or(0, |w| w.bytes),
            corrupt_segments: self.corrupt_segments,
            torn_tails: self.torn_tails,
            degraded: self.degraded,
            last_lsn: self.last_lsn,
            workloads: self.inner.workloads().len() as u64,
        }
    }
}
