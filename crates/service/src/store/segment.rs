//! Size-rotated WAL segment files: naming, the append handle, and the
//! streaming reader used at boot.

use super::codec::{encode_header, encode_record};
use super::crash;
use std::fs::{File, OpenOptions};
use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};

const PREFIX: &str = "wal-";
const SUFFIX: &str = ".jsonl";

/// File name of segment `seq` (zero-padded so lexicographic order is
/// replay order).
pub(crate) fn segment_file_name(seq: u64) -> String {
    format!("{PREFIX}{seq:08}{SUFFIX}")
}

/// Parses a segment sequence number back out of a file name.
pub(crate) fn parse_segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix(PREFIX)?
        .strip_suffix(SUFFIX)?
        .parse()
        .ok()
}

/// Sorted sequence numbers of every segment file in `dir`.
pub(crate) fn list_segments(dir: &Path) -> Result<Vec<u64>, String> {
    let mut seqs = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_seq) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable();
    Ok(seqs)
}

/// Append handle on the open (last) segment of one shard.
pub(crate) struct SegmentWriter {
    file: File,
    path: PathBuf,
    /// Segment sequence number.
    pub seq: u64,
    /// Bytes written to this segment (header included) — drives
    /// size-based rotation.
    pub bytes: u64,
}

impl SegmentWriter {
    /// Creates segment `seq` in `dir` and writes its header record.
    pub(crate) fn create(
        dir: &Path,
        format_version: i64,
        shard: usize,
        seq: u64,
    ) -> Result<SegmentWriter, String> {
        let path = dir.join(segment_file_name(seq));
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| format!("create {}: {e}", path.display()))?;
        let mut w = SegmentWriter {
            file,
            path,
            seq,
            bytes: 0,
        };
        let header = encode_record(&encode_header(format_version, shard, seq))?;
        w.append(&header)?;
        Ok(w)
    }

    /// Appends one encoded record line and flushes it.
    ///
    /// Routes through the crash-injection hook: under a `wal-byte` plan
    /// the process writes a partial line and aborts, leaving exactly
    /// the torn tail the recovery path must handle.
    pub(crate) fn append(&mut self, line: &str) -> Result<(), String> {
        if let Some(partial) = crash::wal_write_budget(line.len()) {
            let _ = self.file.write_all(&line.as_bytes()[..partial]);
            let _ = self.file.flush();
            std::process::abort();
        }
        self.file
            .write_all(line.as_bytes())
            .and_then(|()| self.file.flush())
            .map_err(|e| format!("append {}: {e}", self.path.display()))?;
        self.bytes += line.len() as u64;
        Ok(())
    }
}

/// One line read from a segment, with enough position information to
/// truncate a torn tail.
pub(crate) struct SegmentLine {
    /// 1-based line number.
    pub lineno: u64,
    /// Byte offset of the line start in the file.
    pub offset: u64,
    /// Line content, trailing newline stripped.
    pub text: String,
    /// Whether anything (even a partial line) follows in the file.
    pub has_more: bool,
}

/// Streams a segment line-by-line — boot memory stays O(1) in segment
/// size.
pub(crate) struct SegmentReader {
    reader: BufReader<File>,
    offset: u64,
    lineno: u64,
    peeked: Option<String>,
}

impl SegmentReader {
    pub(crate) fn open(path: &Path) -> Result<SegmentReader, String> {
        let file = File::open(path).map_err(|e| format!("open {}: {e}", path.display()))?;
        Ok(SegmentReader {
            reader: BufReader::new(file),
            offset: 0,
            lineno: 0,
            peeked: None,
        })
    }

    fn read_raw(&mut self) -> Result<Option<String>, String> {
        if let Some(line) = self.peeked.take() {
            return Ok(Some(line));
        }
        let mut line = String::new();
        let n = self
            .reader
            .read_line(&mut line)
            .map_err(|e| format!("read segment: {e}"))?;
        if n == 0 {
            Ok(None)
        } else {
            Ok(Some(line))
        }
    }

    /// Next line, or `None` at end of file.
    pub(crate) fn next_line(&mut self) -> Result<Option<SegmentLine>, String> {
        let Some(raw) = self.read_raw()? else {
            return Ok(None);
        };
        let offset = self.offset;
        self.offset += raw.len() as u64;
        self.lineno += 1;
        // Peek one line ahead so the caller can tell a torn final line
        // (safe to truncate) from corruption with data after it.
        self.peeked = self.read_raw()?;
        Ok(Some(SegmentLine {
            lineno: self.lineno,
            offset,
            text: raw.trim_end_matches(['\n', '\r']).to_string(),
            has_more: self.peeked.is_some(),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_names_round_trip_and_sort() {
        assert_eq!(segment_file_name(7), "wal-00000007.jsonl");
        assert_eq!(parse_segment_seq("wal-00000007.jsonl"), Some(7));
        assert_eq!(parse_segment_seq("wal-123.jsonl"), Some(123));
        assert_eq!(parse_segment_seq("memo.snapshot.json"), None);
        assert_eq!(parse_segment_seq("wal-.jsonl"), None);
        assert!(segment_file_name(9) < segment_file_name(10));
    }
}
