//! Wire codecs for the persistent store: parameter values,
//! configurations, WAL operations, checksummed record lines, and shard
//! snapshots.
//!
//! Non-finite floats need special handling because JSON has no literal
//! for them (the serializer writes `null`, which would silently corrupt
//! a round trip): `NaN`, `+inf` and `-inf` are encoded as the strings
//! `"nan"`, `"inf"` and `"-inf"`. Decoding accepts either a number or
//! one of those strings. NaN payload bits are not preserved — any NaN
//! decodes to the canonical [`f64::NAN`].

use super::crc32::crc32;
use robotune::InMemoryMemoStore;
use robotune_space::{Configuration, ParamValue};
use serde_json::{Map, Value};

/// Encodes one f64, including non-finite values, losslessly.
pub(crate) fn f64_to_json(f: f64) -> Value {
    if f.is_finite() {
        Value::from(f)
    } else if f.is_nan() {
        Value::from("nan")
    } else if f > 0.0 {
        Value::from("inf")
    } else {
        Value::from("-inf")
    }
}

/// Decodes an f64 written by [`f64_to_json`].
pub(crate) fn f64_from_json(v: &Value) -> Option<f64> {
    if let Some(f) = v.as_f64() {
        return Some(f);
    }
    match v.as_str()? {
        "nan" => Some(f64::NAN),
        "inf" => Some(f64::INFINITY),
        "-inf" => Some(f64::NEG_INFINITY),
        _ => None,
    }
}

pub(crate) fn value_to_json(v: &ParamValue) -> Value {
    let (t, jv) = match v {
        ParamValue::Int(i) => ("i", Value::from(*i)),
        ParamValue::Float(f) => ("f", f64_to_json(*f)),
        ParamValue::Bool(b) => ("b", Value::Bool(*b)),
        ParamValue::Cat(c) => ("c", Value::from(*c as u64)),
    };
    let mut m = Map::new();
    m.insert("t".into(), Value::from(t));
    m.insert("v".into(), jv);
    Value::Object(m)
}

pub(crate) fn value_from_json(v: &Value) -> Result<ParamValue, String> {
    let t = v
        .get("t")
        .and_then(Value::as_str)
        .ok_or("value entry missing \"t\"")?;
    let raw = v.get("v").ok_or("value entry missing \"v\"")?;
    match t {
        "i" => raw
            .as_i64()
            .map(ParamValue::Int)
            .ok_or_else(|| "int value not an i64".into()),
        "f" => f64_from_json(raw)
            .map(ParamValue::Float)
            .ok_or_else(|| "float value not a number".into()),
        "b" => raw
            .as_bool()
            .map(ParamValue::Bool)
            .ok_or_else(|| "bool value not a bool".into()),
        "c" => raw
            .as_u64()
            .and_then(|i| usize::try_from(i).ok())
            .map(ParamValue::Cat)
            .ok_or_else(|| "cat value not an index".into()),
        other => Err(format!("unknown value tag {other:?}")),
    }
}

pub(crate) fn config_to_json(c: &Configuration) -> Value {
    Value::Array(c.values().iter().map(value_to_json).collect())
}

pub(crate) fn config_from_json(v: &Value) -> Result<Configuration, String> {
    let arr = v.as_array().ok_or("config must be an array")?;
    let values = arr
        .iter()
        .map(value_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Configuration::new(values))
}

// --- WAL records --------------------------------------------------------

/// A decoded WAL payload: either a segment header or an LSN-stamped
/// mutation.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    /// First record of every segment; pins version, shard and sequence
    /// so a segment file cannot be replayed into the wrong shard.
    Header {
        version: i64,
        shard: usize,
        seq: u64,
    },
    /// A mutation with its shard-local log sequence number.
    Op { lsn: u64, op: WalOp },
}

/// A store mutation as journaled.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalOp {
    Sel {
        workload: String,
        names: Vec<String>,
    },
    Cfg {
        workload: String,
        config: Configuration,
        time_s: f64,
    },
}

impl WalOp {
    /// Applies the mutation to an in-memory store.
    pub(crate) fn apply(&self, inner: &mut InMemoryMemoStore) {
        match self {
            WalOp::Sel { workload, names } => inner.cache.put_names(workload, names.clone()),
            WalOp::Cfg {
                workload,
                config,
                time_s,
            } => inner.memo.record(workload, config.clone(), *time_s),
        }
    }
}

pub(crate) fn encode_header(version: i64, shard: usize, seq: u64) -> Value {
    let mut m = Map::new();
    m.insert("kind".into(), Value::from("hdr"));
    m.insert("version".into(), Value::from(version));
    m.insert("shard".into(), Value::from(shard as u64));
    m.insert("seq".into(), Value::from(seq));
    Value::Object(m)
}

pub(crate) fn encode_sel(lsn: u64, workload: &str, names: &[String]) -> Value {
    let mut m = Map::new();
    m.insert("lsn".into(), Value::from(lsn));
    m.insert("op".into(), Value::from("sel"));
    m.insert("workload".into(), Value::from(workload));
    m.insert(
        "names".into(),
        Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
    );
    Value::Object(m)
}

pub(crate) fn encode_cfg(lsn: u64, workload: &str, config: &Configuration, time_s: f64) -> Value {
    let mut m = Map::new();
    m.insert("lsn".into(), Value::from(lsn));
    m.insert("op".into(), Value::from("cfg"));
    m.insert("workload".into(), Value::from(workload));
    m.insert("time_s".into(), f64_to_json(time_s));
    m.insert("values".into(), config_to_json(config));
    Value::Object(m)
}

fn decode_names(v: &Value) -> Result<Vec<String>, String> {
    v.as_array()
        .ok_or("\"names\" must be an array")?
        .iter()
        .map(|n| {
            n.as_str()
                .map(str::to_owned)
                .ok_or_else(|| "selection name must be a string".into())
        })
        .collect()
}

/// Decodes the `op`-shaped part shared by v1 WAL lines and v2 payloads.
fn decode_op_body(v: &Value) -> Result<WalOp, String> {
    let kind = v
        .get("op")
        .and_then(Value::as_str)
        .ok_or("op entry missing \"op\"")?;
    let workload = v
        .get("workload")
        .and_then(Value::as_str)
        .ok_or("op entry missing \"workload\"")?
        .to_owned();
    match kind {
        "sel" => Ok(WalOp::Sel {
            workload,
            names: decode_names(v.get("names").ok_or("sel op missing \"names\"")?)?,
        }),
        "cfg" => Ok(WalOp::Cfg {
            workload,
            time_s: v
                .get("time_s")
                .and_then(f64_from_json)
                .ok_or("cfg op missing \"time_s\"")?,
            config: config_from_json(v.get("values").ok_or("cfg op missing \"values\"")?)?,
        }),
        other => Err(format!("unknown op {other:?}")),
    }
}

/// Decodes a v2 payload (header or LSN-stamped op).
pub(crate) fn decode_payload(v: &Value) -> Result<WalRecord, String> {
    if v.get("kind").and_then(Value::as_str) == Some("hdr") {
        return Ok(WalRecord::Header {
            version: v
                .get("version")
                .and_then(Value::as_i64)
                .ok_or("header missing \"version\"")?,
            shard: v
                .get("shard")
                .and_then(Value::as_u64)
                .and_then(|s| usize::try_from(s).ok())
                .ok_or("header missing \"shard\"")?,
            seq: v
                .get("seq")
                .and_then(Value::as_u64)
                .ok_or("header missing \"seq\"")?,
        });
    }
    let lsn = v
        .get("lsn")
        .and_then(Value::as_u64)
        .ok_or("op entry missing \"lsn\"")?;
    Ok(WalRecord::Op {
        lsn,
        op: decode_op_body(v)?,
    })
}

/// Decodes a v1 WAL line (no lsn, no checksum) during migration.
pub(crate) fn decode_v1_op(line: &str) -> Result<WalOp, String> {
    let v: Value = serde_json::from_str(line).map_err(|e| format!("parse: {e}"))?;
    decode_op_body(&v)
}

/// Encodes `payload` as one checksummed WAL line (newline included).
///
/// The line is itself valid JSON — `["<crc32 hex8>","<payload>"]` with
/// the payload carried as an escaped string — so the checksum covers
/// the exact payload bytes and a reader can verify before parsing.
pub(crate) fn encode_record(payload: &Value) -> Result<String, String> {
    let payload_text =
        serde_json::to_string(payload).map_err(|e| format!("encode payload: {e}"))?;
    let crc = crc32(payload_text.as_bytes());
    let line = Value::Array(vec![
        Value::from(format!("{crc:08x}")),
        Value::from(payload_text),
    ]);
    let mut out = serde_json::to_string(&line).map_err(|e| format!("encode record: {e}"))?;
    out.push('\n');
    Ok(out)
}

/// Verifies and decodes one WAL line produced by [`encode_record`].
pub(crate) fn decode_record(line: &str) -> Result<WalRecord, String> {
    let wrapper: Value = serde_json::from_str(line).map_err(|e| format!("parse record: {e}"))?;
    let arr = wrapper
        .as_array()
        .filter(|a| a.len() == 2)
        .ok_or("record must be a [crc, payload] pair")?;
    let crc_hex = arr[0].as_str().ok_or("record crc must be a string")?;
    let payload_text = arr[1].as_str().ok_or("record payload must be a string")?;
    let want =
        u32::from_str_radix(crc_hex, 16).map_err(|e| format!("bad crc field {crc_hex:?}: {e}"))?;
    let got = crc32(payload_text.as_bytes());
    if want != got {
        return Err(format!("checksum mismatch: header {want:08x}, body {got:08x}"));
    }
    let payload: Value =
        serde_json::from_str(payload_text).map_err(|e| format!("parse payload: {e}"))?;
    decode_payload(&payload)
}

// --- Shard snapshots ----------------------------------------------------

/// Encodes a shard's full state plus the LSN it is current through.
pub(crate) fn encode_snapshot(inner: &InMemoryMemoStore, version: i64, lsn: u64) -> Value {
    let mut selections = Map::new();
    for workload in inner.cache.workloads() {
        if let Some(names) = inner.cache.names(&workload) {
            selections.insert(
                workload,
                Value::Array(names.iter().map(|n| Value::from(n.as_str())).collect()),
            );
        }
    }
    let mut configs = Map::new();
    for workload in inner.memo.workloads() {
        let entries: Vec<Value> = inner
            .memo
            .best_recent(&workload, usize::MAX)
            .into_iter()
            .map(|(config, time_s)| {
                let mut e = Map::new();
                e.insert("time_s".into(), f64_to_json(time_s));
                e.insert("values".into(), config_to_json(&config));
                Value::Object(e)
            })
            .collect();
        configs.insert(workload, Value::Array(entries));
    }
    let mut snap = Map::new();
    snap.insert("version".into(), Value::from(version));
    snap.insert("lsn".into(), Value::from(lsn));
    snap.insert("selections".into(), Value::Object(selections));
    snap.insert("configs".into(), Value::Object(configs));
    Value::Object(snap)
}

/// Decodes a snapshot into a fresh in-memory store.
///
/// Accepts both the v2 shard format and the legacy v1 root format
/// (which had no `lsn`; it decodes as 0) so migration shares one path.
pub(crate) fn decode_snapshot(snap: &Value) -> Result<(InMemoryMemoStore, u64), String> {
    let version = snap.get("version").and_then(Value::as_i64).unwrap_or(-1);
    if version != 1 && version != 2 {
        return Err(format!("snapshot version {version} (want 1 or 2)"));
    }
    let lsn = snap.get("lsn").and_then(Value::as_u64).unwrap_or(0);
    let mut inner = InMemoryMemoStore::new();
    if let Some(sels) = snap.get("selections").and_then(Value::as_object) {
        for (workload, names) in sels.iter() {
            inner.cache.put_names(workload, decode_names(names)?);
        }
    }
    if let Some(cfgs) = snap.get("configs").and_then(Value::as_object) {
        for (workload, entries) in cfgs.iter() {
            let entries = entries.as_array().ok_or("config list must be an array")?;
            for e in entries {
                let time_s = e
                    .get("time_s")
                    .and_then(f64_from_json)
                    .ok_or("config entry missing time_s")?;
                let config =
                    config_from_json(e.get("values").ok_or("config entry missing values")?)?;
                inner.memo.record(workload, config, time_s);
            }
        }
    }
    Ok((inner, lsn))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_f64() -> impl Strategy<Value = f64> {
        // `any::<f64>()` only generates finite values; the interesting
        // asymmetries live in the specials, so inject them explicitly.
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(-0.0),
            Just(0.0),
            Just(f64::MIN),
            Just(f64::MAX),
            Just(f64::EPSILON),
            any::<f64>(),
        ]
    }

    fn arb_value() -> impl Strategy<Value = ParamValue> {
        prop_oneof![
            (-(1i64 << 62)..(1i64 << 62)).prop_map(ParamValue::Int),
            Just(ParamValue::Int(i64::MIN)),
            Just(ParamValue::Int(i64::MAX)),
            arb_f64().prop_map(ParamValue::Float),
            any::<bool>().prop_map(ParamValue::Bool),
            (0usize..64).prop_map(ParamValue::Cat),
        ]
    }

    /// Bit-level equality with NaN ≡ NaN: the codec canonicalizes NaN
    /// payload bits, so any NaN in equals the canonical NaN out.
    fn f64_eq(a: f64, b: f64) -> bool {
        (a.is_nan() && b.is_nan()) || a.to_bits() == b.to_bits()
    }

    fn value_eq(a: &ParamValue, b: &ParamValue) -> bool {
        match (a, b) {
            (ParamValue::Float(x), ParamValue::Float(y)) => f64_eq(*x, *y),
            _ => a == b,
        }
    }

    proptest! {
        #[test]
        fn value_round_trips(v in arb_value()) {
            let json = value_to_json(&v);
            // The wire hop matters: serialize to text and back, like a
            // real WAL record would.
            let text = serde_json::to_string(&json).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let back = value_from_json(&reparsed).unwrap();
            prop_assert!(value_eq(&v, &back), "{v:?} -> {text} -> {back:?}");
        }

        #[test]
        fn config_round_trips(vs in proptest::collection::vec(arb_value(), 0..12)) {
            let c = Configuration::new(vs);
            let text = serde_json::to_string(&config_to_json(&c)).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let back = config_from_json(&reparsed).unwrap();
            prop_assert_eq!(c.len(), back.len());
            for (a, b) in c.values().iter().zip(back.values()) {
                prop_assert!(value_eq(a, b), "{a:?} vs {b:?}");
            }
        }

        #[test]
        fn f64_round_trips_including_non_finite(f in arb_f64()) {
            let text = serde_json::to_string(&f64_to_json(f)).unwrap();
            let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
            let back = f64_from_json(&reparsed).unwrap();
            prop_assert!(f64_eq(f, back), "{f} -> {text} -> {back}");
        }

        #[test]
        fn wal_records_round_trip(
            lsn in any::<u64>(),
            wl_tag in any::<u64>(),
            time_s in arb_f64(),
            vs in proptest::collection::vec(arb_value(), 1..8),
        ) {
            let wl = format!("wl-{wl_tag:x}");
            let cfg = Configuration::new(vs);
            let line = encode_record(&encode_cfg(lsn, &wl, &cfg, time_s)).unwrap();
            match decode_record(line.trim_end()).unwrap() {
                WalRecord::Op { lsn: l, op: WalOp::Cfg { workload, config, time_s: t } } => {
                    prop_assert_eq!(l, lsn);
                    prop_assert_eq!(workload, wl);
                    prop_assert_eq!(config.len(), cfg.len());
                    prop_assert!(f64_eq(t, time_s));
                }
                other => prop_assert!(false, "decoded {other:?}"),
            }
        }
    }

    #[test]
    fn non_finite_floats_survive_where_v1_lost_them() {
        // v1 serialized non-finite floats as JSON null (the serializer's
        // fallback), so they failed to decode. Pin the fixed encoding.
        assert_eq!(
            serde_json::to_string(&f64_to_json(f64::NAN)).unwrap(),
            "\"nan\""
        );
        assert_eq!(
            serde_json::to_string(&f64_to_json(f64::INFINITY)).unwrap(),
            "\"inf\""
        );
        assert_eq!(
            serde_json::to_string(&f64_to_json(f64::NEG_INFINITY)).unwrap(),
            "\"-inf\""
        );
        assert_eq!(f64_from_json(&Value::from("nan")).map(f64::is_nan), Some(true));
    }

    #[test]
    fn negative_zero_keeps_its_sign() {
        let text = serde_json::to_string(&f64_to_json(-0.0)).unwrap();
        let reparsed: serde_json::Value = serde_json::from_str(&text).unwrap();
        let back = f64_from_json(&reparsed).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits(), "got {back} from {text}");
    }

    #[test]
    fn corrupt_records_fail_checksum_with_an_explanation() {
        let line = encode_record(&encode_sel(7, "km", &["a".into()])).unwrap();
        assert!(decode_record(line.trim_end()).is_ok());
        let tampered = line.replace("km", "kk");
        let err = decode_record(tampered.trim_end()).unwrap_err();
        assert!(err.contains("checksum mismatch"), "got: {err}");
    }

    #[test]
    fn header_records_round_trip() {
        let line = encode_record(&encode_header(2, 3, 41)).unwrap();
        assert_eq!(
            decode_record(line.trim_end()).unwrap(),
            WalRecord::Header {
                version: 2,
                shard: 3,
                seq: 41
            }
        );
    }
}
