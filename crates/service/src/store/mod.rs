//! Fleet-grade persistence for the process-wide shared memo store.
//!
//! [`PersistentMemoStore`] stripes workloads across N shards by
//! FNV-1a fingerprint ([`robotune::shard_of`]). Each shard owns its own
//! lock, snapshot, and write-ahead log, so sessions tuning different
//! workloads never contend and a corrupt shard quarantines without
//! taking down the rest of fleet memory. On-disk layout (v2):
//!
//! ```text
//! <dir>/store.meta.json        {"version":2,"shards":N}   (tmp+rename)
//! <dir>/shard-00/
//!         memo.snapshot.json   full shard state + the LSN it covers
//!         wal-00000007.jsonl   checksummed, size-rotated WAL segments
//! <dir>/corrupt/               quarantined segments/snapshots
//! ```
//!
//! Every WAL line is `["<crc32 hex8>","<payload json>"]`: the checksum
//! covers the exact payload bytes, and each segment opens with a
//! version/shard/seq header record so files cannot replay into the
//! wrong shard. Mutations carry a shard-local LSN; snapshots record the
//! LSN they cover, which makes replay idempotent across every
//! checkpoint crash interleaving (tmp write / rename / segment
//! cleanup). Recovery rules:
//!
//! - torn final line (crash mid-append): truncate to the last valid
//!   record, count `service.store.wal_torn_line`, carry on;
//! - corrupt record anywhere else: apply the valid prefix, quarantine
//!   that segment and everything after it into `corrupt/`, count
//!   `service.store.wal_corrupt_record`, checkpoint immediately so the
//!   recovered prefix is durable — boot never fails on corruption;
//! - WAL append failure: the shard keeps serving from memory but
//!   reports `degraded` through [`ConcurrentMemoStore::status`] (and
//!   `service.store.wal_error`) until a durable write succeeds again.
//!
//! Compaction is checkpoint-shaped and background-free: once enough
//! sealed segments accumulate, the next append folds them into the
//! snapshot inline. A legacy v1 store (root `memo.snapshot.json` +
//! unchecksummed `memo.wal.jsonl`) migrates automatically on first
//! open; the old files are kept under a `.v1-migrated` suffix.
//!
//! Durability model: every record is written and flushed before the
//! mutation is applied in memory, so nothing acknowledged is lost to a
//! process crash. Power-loss durability would additionally need fsync
//! on the segment and directory, which this store deliberately skips —
//! the memo store is an accelerator, not ground truth.

mod codec;
mod crash;
mod crc32;
mod segment;
mod shard;

use codec::{decode_record, decode_snapshot, decode_v1_op, WalOp, WalRecord};
use robotune::{shard_of, ConcurrentMemoStore, SharedMemoStore, StoreStatus};
use robotune_space::Configuration;
use serde_json::{Map, Value};
use shard::ShardCore;
use std::fs::{self, File};
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::Instant;

/// Store metadata file name (shard count, format version).
pub const META_FILE: &str = "store.meta.json";
/// Per-shard snapshot file name (also the v1 root snapshot name).
pub const SNAPSHOT_FILE: &str = "memo.snapshot.json";
/// Legacy v1 write-ahead-log file name (root level).
pub const V1_WAL_FILE: &str = "memo.wal.jsonl";
/// Quarantine directory for corrupt segments/snapshots.
pub const CORRUPT_DIR: &str = "corrupt";
/// On-disk format version; v1 stores migrate on open, other versions
/// are rejected.
pub const FORMAT_VERSION: i64 = 2;

/// Tuning knobs for the persistent store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// Number of lock/snapshot/WAL stripes. An existing store's meta
    /// file wins over this value: shard routing is part of the data.
    pub shards: usize,
    /// Seal the open segment once it reaches this many bytes.
    pub segment_max_bytes: u64,
    /// Fold sealed segments into the snapshot once this many exist.
    pub compact_after_sealed: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            shards: 8,
            segment_max_bytes: 1 << 20,
            compact_after_sealed: 4,
        }
    }
}

/// A sharded [`ConcurrentMemoStore`] with per-shard snapshot + WAL
/// persistence under one directory.
pub struct PersistentMemoStore {
    dir: PathBuf,
    shards: Vec<RwLock<ShardCore>>,
}

fn shard_dir_name(index: usize) -> String {
    format!("shard-{index:02}")
}

fn read_meta(path: &Path) -> Result<usize, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
    let v: Value =
        serde_json::from_str(&text).map_err(|e| format!("parse {}: {e}", path.display()))?;
    let version = v.get("version").and_then(Value::as_i64).unwrap_or(-1);
    if version != FORMAT_VERSION {
        return Err(format!(
            "store meta version {version} (want {FORMAT_VERSION})"
        ));
    }
    v.get("shards")
        .and_then(Value::as_u64)
        .and_then(|n| usize::try_from(n).ok())
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("store meta {} has no valid shard count", path.display()))
}

fn write_meta(dir: &Path, shards: usize) -> Result<(), String> {
    let mut m = Map::new();
    m.insert("version".into(), Value::from(FORMAT_VERSION));
    m.insert("shards".into(), Value::from(shards as u64));
    let text = serde_json::to_string_pretty(&Value::Object(m))
        .map_err(|e| format!("encode meta: {e}"))?;
    let tmp = dir.join(format!("{META_FILE}.tmp"));
    let dst = dir.join(META_FILE);
    fs::write(&tmp, text).map_err(|e| format!("write {}: {e}", tmp.display()))?;
    fs::rename(&tmp, &dst)
        .map_err(|e| format!("rename {} -> {}: {e}", tmp.display(), dst.display()))
}

/// Shard count implied by existing `shard-NN` directories, if any.
fn infer_shards_from_dirs(dir: &Path) -> Result<Option<usize>, String> {
    let mut max: Option<usize> = None;
    let entries = fs::read_dir(dir).map_err(|e| format!("read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read {}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(idx) = name
            .to_str()
            .and_then(|n| n.strip_prefix("shard-"))
            .and_then(|n| n.parse::<usize>().ok())
        else {
            continue;
        };
        if entry.path().is_dir() {
            max = Some(max.map_or(idx, |m: usize| m.max(idx)));
        }
    }
    Ok(max.map(|m| m + 1))
}

impl PersistentMemoStore {
    /// Opens (or creates) a store rooted at `dir` with default options,
    /// replaying any existing state (including a legacy v1 store).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, String> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// Opens (or creates) a store rooted at `dir`.
    ///
    /// For an existing store the shard count recorded in
    /// `store.meta.json` overrides `opts.shards`: records are striped
    /// by `fingerprint % shards`, so the count is part of the data.
    pub fn open_with(dir: impl Into<PathBuf>, opts: StoreOptions) -> Result<Self, String> {
        let boot_start = Instant::now();
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| format!("create {}: {e}", dir.display()))?;

        let meta_path = dir.join(META_FILE);
        let had_meta = meta_path.is_file();
        let mut shard_count = opts.shards.max(1);
        if had_meta {
            match read_meta(&meta_path) {
                Ok(n) => shard_count = n,
                Err(e) if e.contains("meta version") => return Err(e),
                Err(_) => {
                    // Unreadable meta: the shard directories themselves
                    // pin the stripe count, which is what actually
                    // matters for routing. Rewrite the meta below.
                    if let Some(n) = infer_shards_from_dirs(&dir)? {
                        shard_count = n;
                    }
                }
            }
        } else if let Some(n) = infer_shards_from_dirs(&dir)? {
            shard_count = n;
        }

        let v1_snap = dir.join(SNAPSHOT_FILE);
        let v1_wal = dir.join(V1_WAL_FILE);
        let migrate = !had_meta && (v1_snap.is_file() || v1_wal.is_file());

        let corrupt_dir = dir.join(CORRUPT_DIR);
        let mut shards = Vec::with_capacity(shard_count);
        for i in 0..shard_count {
            shards.push(RwLock::new(ShardCore::open(
                &dir,
                &corrupt_dir,
                i,
                opts.segment_max_bytes,
                opts.compact_after_sealed,
            )?));
        }
        let store = PersistentMemoStore { dir, shards };
        if migrate {
            store.migrate_v1(&v1_snap, &v1_wal)?;
        }
        write_meta(&store.dir, shard_count)?;

        let replayed: u64 = store
            .shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .boot_replayed()
            })
            .sum();
        robotune_obs::incr("service.store.boot_replayed", replayed);
        robotune_obs::record(
            "service.store.boot_replay_ms",
            boot_start.elapsed().as_secs_f64() * 1000.0,
        );
        Ok(store)
    }

    /// Streams a legacy v1 store (root snapshot + unchecksummed WAL)
    /// into the sharded layout, then checkpoints and retires the old
    /// files under a `.v1-migrated` suffix.
    fn migrate_v1(&self, snap_path: &Path, wal_path: &Path) -> Result<(), String> {
        if snap_path.is_file() {
            let text = fs::read_to_string(snap_path)
                .map_err(|e| format!("read {}: {e}", snap_path.display()))?;
            let v: Value = serde_json::from_str(&text)
                .map_err(|e| format!("parse {}: {e}", snap_path.display()))?;
            let (inner, _lsn) = decode_snapshot(&v)?;
            for workload in inner.cache.workloads() {
                if let Some(names) = inner.cache.names(&workload) {
                    self.put_selection(&workload, names.to_vec());
                }
            }
            for workload in inner.memo.workloads() {
                for (config, time_s) in inner.memo.best_recent(&workload, usize::MAX) {
                    self.record_config(&workload, config, time_s);
                }
            }
        }
        if wal_path.is_file() {
            // Streamed line-by-line: boot memory stays O(1) in WAL
            // size. One line of lookahead distinguishes a torn final
            // line (tolerated, like v1 did) from mid-file corruption
            // (still a hard error here — v1 had no checksums, so a bad
            // middle line means the file is untrustworthy).
            let file =
                File::open(wal_path).map_err(|e| format!("open {}: {e}", wal_path.display()))?;
            let mut reader = BufReader::new(file);
            let mut pending = String::new();
            let n = reader
                .read_line(&mut pending)
                .map_err(|e| format!("read {}: {e}", wal_path.display()))?;
            let mut pending = (n > 0).then_some(pending);
            let mut lineno = 0u64;
            while let Some(line) = pending.take() {
                let mut next = String::new();
                let n = reader
                    .read_line(&mut next)
                    .map_err(|e| format!("read {}: {e}", wal_path.display()))?;
                pending = (n > 0).then_some(next);
                lineno += 1;
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                match decode_v1_op(trimmed) {
                    Ok(WalOp::Sel { workload, names }) => self.put_selection(&workload, names),
                    Ok(WalOp::Cfg {
                        workload,
                        config,
                        time_s,
                    }) => self.record_config(&workload, config, time_s),
                    Err(e) => {
                        if pending.is_none() {
                            robotune_obs::incr("service.store.wal_torn_line", 1);
                            break;
                        }
                        return Err(format!("v1 WAL line {lineno}: {e}"));
                    }
                }
            }
        }
        self.checkpoint()?;
        for path in [snap_path, wal_path] {
            if path.is_file() {
                let mut retired = path.as_os_str().to_owned();
                retired.push(".v1-migrated");
                fs::rename(path, &retired)
                    .map_err(|e| format!("retire {}: {e}", path.display()))?;
            }
        }
        robotune_obs::incr("service.store.migrated_v1", 1);
        Ok(())
    }

    fn shard_read(&self, workload: &str) -> RwLockReadGuard<'_, ShardCore> {
        self.shards[shard_of(workload, self.shards.len())]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
    }

    fn shard_write(&self, workload: &str) -> RwLockWriteGuard<'_, ShardCore> {
        self.shards[shard_of(workload, self.shards.len())]
            .write()
            .unwrap_or_else(PoisonError::into_inner)
    }

    /// Wraps the store for sharing across sessions.
    pub fn into_shared(self) -> SharedMemoStore {
        Arc::new(self)
    }
}

impl ConcurrentMemoStore for PersistentMemoStore {
    fn selection(&self, workload: &str) -> Option<Vec<String>> {
        self.shard_read(workload).selection(workload)
    }

    fn put_selection(&self, workload: &str, names: Vec<String>) {
        self.shard_write(workload).put_selection(workload, names);
    }

    fn record_config(&self, workload: &str, config: Configuration, time_s: f64) {
        self.shard_write(workload)
            .record_config(workload, config, time_s);
    }

    fn best_recent(&self, workload: &str, n: usize) -> Vec<(Configuration, f64)> {
        self.shard_read(workload).best_recent(workload, n)
    }

    fn has_selection(&self, workload: &str) -> bool {
        self.shard_read(workload).has_selection(workload)
    }

    fn has_configs(&self, workload: &str) -> bool {
        self.shard_read(workload).has_configs(workload)
    }

    fn workloads(&self) -> Vec<String> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(
                shard
                    .read()
                    .unwrap_or_else(PoisonError::into_inner)
                    .workloads(),
            );
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn checkpoint(&self) -> Result<(), String> {
        let mut errors = Vec::new();
        for (i, shard) in self.shards.iter().enumerate() {
            if let Err(e) = shard
                .write()
                .unwrap_or_else(PoisonError::into_inner)
                .checkpoint()
            {
                errors.push(format!("shard {i}: {e}"));
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors.join("; "))
        }
    }

    fn wal_lag(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).wal_lag())
            .sum()
    }

    fn status(&self) -> StoreStatus {
        StoreStatus {
            persistent: true,
            shards: self
                .shards
                .iter()
                .map(|s| s.read().unwrap_or_else(PoisonError::into_inner).status())
                .collect(),
        }
    }
}

// --- Offline tooling (experiments store) --------------------------------

fn push_problem(problems: &mut Vec<Value>, file: &Path, detail: impl Into<String>) {
    problems.push(serde_json::json!({
        "file": file.display().to_string(),
        "error": detail.into(),
    }));
}

/// Read-only integrity check of a store directory: verifies the meta
/// file, every shard snapshot, and every WAL record checksum without
/// mutating anything, and explains each problem found.
pub fn verify_store(dir: impl AsRef<Path>) -> Result<Value, String> {
    let dir = dir.as_ref();
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let mut problems: Vec<Value> = Vec::new();
    let mut warnings: Vec<Value> = Vec::new();

    let meta_path = dir.join(META_FILE);
    let v1_snap = dir.join(SNAPSHOT_FILE);
    let v1_wal = dir.join(V1_WAL_FILE);
    let mut layout = "v2";
    let mut shard_count = 0usize;
    if meta_path.is_file() {
        match read_meta(&meta_path) {
            Ok(n) => shard_count = n,
            Err(e) => {
                push_problem(&mut problems, &meta_path, e);
                shard_count = infer_shards_from_dirs(dir)?.unwrap_or(0);
            }
        }
    } else if v1_snap.is_file() || v1_wal.is_file() {
        layout = "v1";
        if v1_snap.is_file() {
            let decoded = fs::read_to_string(&v1_snap)
                .map_err(|e| format!("read: {e}"))
                .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("parse: {e}")))
                .and_then(|v| decode_snapshot(&v).map(|_| ()));
            if let Err(e) = decoded {
                push_problem(&mut problems, &v1_snap, e);
            }
        }
        if v1_wal.is_file() {
            if let Ok(text) = fs::read_to_string(&v1_wal) {
                let lines: Vec<&str> = text.lines().collect();
                for (i, line) in lines.iter().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    if let Err(e) = decode_v1_op(line) {
                        if i + 1 == lines.len() {
                            warnings.push(serde_json::json!({
                                "file": v1_wal.display().to_string(),
                                "note": format!("torn final line (recoverable): {e}"),
                            }));
                        } else {
                            push_problem(&mut problems, &v1_wal, format!("line {}: {e}", i + 1));
                        }
                    }
                }
            }
        }
    } else {
        match infer_shards_from_dirs(dir)? {
            Some(n) => {
                shard_count = n;
                push_problem(&mut problems, &meta_path, "missing store meta file");
            }
            None => push_problem(
                &mut problems,
                dir,
                "not a store directory (no meta, no shards, no v1 files)",
            ),
        }
    }

    let mut shard_reports = Vec::new();
    for i in 0..shard_count {
        let sdir = dir.join(shard_dir_name(i));
        let mut records = 0u64;
        let mut segments = 0u64;
        if !sdir.is_dir() {
            // Shards are created on open, so a missing directory just
            // means an empty shard that has never been booted.
            warnings.push(serde_json::json!({
                "file": sdir.display().to_string(),
                "note": "shard directory missing (empty shard)",
            }));
            continue;
        }
        let snap_path = sdir.join(SNAPSHOT_FILE);
        let mut snap_lsn = 0u64;
        if snap_path.is_file() {
            let decoded = fs::read_to_string(&snap_path)
                .map_err(|e| format!("read: {e}"))
                .and_then(|t| serde_json::from_str(&t).map_err(|e| format!("parse: {e}")))
                .and_then(|v| decode_snapshot(&v));
            match decoded {
                Ok((_, lsn)) => snap_lsn = lsn,
                Err(e) => push_problem(&mut problems, &snap_path, e),
            }
        }
        for seq in segment::list_segments(&sdir)? {
            segments += 1;
            let path = sdir.join(segment::segment_file_name(seq));
            let mut reader = segment::SegmentReader::open(&path)?;
            let mut first = true;
            while let Some(line) = reader.next_line()? {
                match decode_record(&line.text) {
                    Ok(WalRecord::Header {
                        version,
                        shard,
                        seq: hseq,
                    }) if first => {
                        if version != FORMAT_VERSION || shard != i || hseq != seq {
                            push_problem(
                                &mut problems,
                                &path,
                                format!(
                                    "header mismatch: version {version} shard {shard} seq {hseq}"
                                ),
                            );
                            break;
                        }
                    }
                    Ok(WalRecord::Header { .. }) => {
                        push_problem(
                            &mut problems,
                            &path,
                            format!("line {}: unexpected mid-file header", line.lineno),
                        );
                        break;
                    }
                    Ok(WalRecord::Op { .. }) if first => {
                        push_problem(&mut problems, &path, "first record is not a header");
                        break;
                    }
                    Ok(WalRecord::Op { .. }) => records += 1,
                    Err(e) => {
                        if !line.has_more {
                            warnings.push(serde_json::json!({
                                "file": path.display().to_string(),
                                "note": format!(
                                    "torn final line at byte {} (recoverable): {e}",
                                    line.offset
                                ),
                            }));
                        } else {
                            push_problem(
                                &mut problems,
                                &path,
                                format!("line {}: {e}", line.lineno),
                            );
                        }
                        break;
                    }
                }
                first = false;
            }
        }
        shard_reports.push(serde_json::json!({
            "shard": i,
            "snapshot_lsn": snap_lsn,
            "segments": segments,
            "wal_records": records,
        }));
    }

    // Anything sitting in quarantine is evidence of past corruption;
    // verify surfaces it as a problem so operators investigate, even
    // though the live store has already recovered around it.
    let mut quarantined = Vec::new();
    let corrupt_dir = dir.join(CORRUPT_DIR);
    if corrupt_dir.is_dir() {
        let entries =
            fs::read_dir(&corrupt_dir).map_err(|e| format!("read {}: {e}", corrupt_dir.display()))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .collect();
        names.sort_unstable();
        for name in names {
            problems.push(serde_json::json!({
                "file": corrupt_dir.join(&name).display().to_string(),
                "error": "quarantined at boot (checksum or parse failure); \
                          records after the corruption point in this file were lost",
            }));
            quarantined.push(Value::from(name));
        }
    }

    Ok(serde_json::json!({
        "ok": problems.is_empty(),
        "dir": dir.display().to_string(),
        "layout": layout,
        "shards": shard_count as u64,
        "shard_detail": shard_reports,
        "problems": problems,
        "warnings": warnings,
        "quarantined": quarantined,
    }))
}

/// Read-only summary of a store directory: layout, per-shard snapshot
/// LSNs, segment files and sizes, and quarantine contents.
pub fn inspect_store(dir: impl AsRef<Path>) -> Result<Value, String> {
    let dir = dir.as_ref();
    if !dir.is_dir() {
        return Err(format!("{} is not a directory", dir.display()));
    }
    let meta_path = dir.join(META_FILE);
    let shard_count = if meta_path.is_file() {
        read_meta(&meta_path).ok().or(infer_shards_from_dirs(dir)?)
    } else {
        infer_shards_from_dirs(dir)?
    }
    .unwrap_or(0);

    let mut shard_reports = Vec::new();
    let mut total_workloads = 0u64;
    for i in 0..shard_count {
        let sdir = dir.join(shard_dir_name(i));
        if !sdir.is_dir() {
            continue;
        }
        let snap_path = sdir.join(SNAPSHOT_FILE);
        let mut snap_lsn = Value::Null;
        let mut snap_bytes = 0u64;
        let mut workloads = 0u64;
        if snap_path.is_file() {
            snap_bytes = fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
            if let Ok((inner, lsn)) = fs::read_to_string(&snap_path)
                .map_err(|e| e.to_string())
                .and_then(|t| serde_json::from_str(&t).map_err(|e| e.to_string()))
                .and_then(|v| decode_snapshot(&v))
            {
                use robotune::MemoStore;
                snap_lsn = Value::from(lsn);
                workloads = inner.workloads().len() as u64;
            }
        }
        total_workloads += workloads;
        let mut segs = Vec::new();
        for seq in segment::list_segments(&sdir)? {
            let path = sdir.join(segment::segment_file_name(seq));
            segs.push(serde_json::json!({
                "seq": seq,
                "bytes": fs::metadata(&path).map(|m| m.len()).unwrap_or(0),
            }));
        }
        shard_reports.push(serde_json::json!({
            "shard": i,
            "snapshot_lsn": snap_lsn,
            "snapshot_bytes": snap_bytes,
            "workloads": workloads,
            "segments": segs,
        }));
    }

    let mut quarantined = Vec::new();
    let corrupt_dir = dir.join(CORRUPT_DIR);
    if corrupt_dir.is_dir() {
        let entries =
            fs::read_dir(&corrupt_dir).map_err(|e| format!("read {}: {e}", corrupt_dir.display()))?;
        let mut names: Vec<String> = entries
            .filter_map(|e| e.ok())
            .filter_map(|e| e.file_name().to_str().map(str::to_owned))
            .collect();
        names.sort_unstable();
        quarantined = names.into_iter().map(Value::from).collect();
    }

    Ok(serde_json::json!({
        "dir": dir.display().to_string(),
        "shards": shard_count as u64,
        "workloads": total_workloads,
        "shard_detail": shard_reports,
        "quarantined": quarantined,
    }))
}

#[cfg(test)]
mod tests {
    use super::crc32::crc32;
    use super::*;
    use robotune_space::ParamValue;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "robotune-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_config() -> Configuration {
        Configuration::new(vec![
            ParamValue::Int(8),
            ParamValue::Float(0.6),
            ParamValue::Bool(true),
            ParamValue::Cat(2),
        ])
    }

    fn small_opts(shards: usize) -> StoreOptions {
        StoreOptions {
            shards,
            ..StoreOptions::default()
        }
    }

    #[test]
    fn wal_then_snapshot_then_wal_replays_identically() {
        let dir = temp_dir("roundtrip");
        {
            let store = PersistentMemoStore::open_with(&dir, small_opts(4)).unwrap();
            store.put_selection("km", vec!["a".into(), "b".into()]);
            store.record_config("km", sample_config(), 120.5);
            store.checkpoint().unwrap();
            // Post-checkpoint mutations live only in the WAL.
            store.put_selection("pr", vec!["c".into()]);
            store.record_config("km", sample_config(), 90.25);
        }
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("km"), Some(vec!["a".into(), "b".into()]));
        assert_eq!(store.selection("pr"), Some(vec!["c".into()]));
        let recent = store.best_recent("km", 10);
        assert_eq!(recent.len(), 2);
        assert_eq!(recent[0].1, 90.25, "best-first order survives reload");
        assert_eq!(recent[0].0, sample_config());
        let status = store.status();
        assert!(status.persistent);
        assert_eq!(status.shards.len(), 4, "meta shard count wins over opts");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn v1_store_migrates_on_first_open() {
        // The v1 golden fixtures (pinned in the previous format test):
        // one open must migrate them into the sharded layout losslessly.
        let dir = temp_dir("migrate");
        fs::create_dir_all(&dir).unwrap();
        fs::write(
            dir.join(SNAPSHOT_FILE),
            r#"{
  "version": 1,
  "selections": { "km": ["spark.executor.cores", "spark.executor.memory"] },
  "configs": {
    "km": [
      { "time_s": 101.5,
        "values": [ {"t":"i","v":8}, {"t":"f","v":0.6}, {"t":"b","v":true}, {"t":"c","v":2} ] }
    ]
  }
}"#,
        )
        .unwrap();
        fs::write(
            dir.join(V1_WAL_FILE),
            concat!(
                r#"{"op":"sel","workload":"pr","names":["spark.default.parallelism"]}"#,
                "\n",
                r#"{"op":"cfg","workload":"pr","time_s":55.0,"values":[{"t":"i","v":4},{"t":"f","v":0.25},{"t":"b","v":false},{"t":"c","v":0}]}"#,
                "\n",
            ),
        )
        .unwrap();

        let store = PersistentMemoStore::open_with(&dir, small_opts(4)).unwrap();
        assert_eq!(
            store.selection("km"),
            Some(vec![
                "spark.executor.cores".into(),
                "spark.executor.memory".into()
            ])
        );
        assert_eq!(
            store.selection("pr"),
            Some(vec!["spark.default.parallelism".into()])
        );
        assert_eq!(store.best_recent("km", 1)[0].1, 101.5);
        assert_eq!(store.best_recent("km", 1)[0].0, sample_config());
        assert_eq!(store.best_recent("pr", 1)[0].1, 55.0);
        assert_eq!(store.workloads(), vec!["km".to_string(), "pr".to_string()]);
        assert!(
            dir.join("memo.snapshot.json.v1-migrated").is_file(),
            "v1 snapshot must be retired, not deleted"
        );
        assert!(dir.join("memo.wal.jsonl.v1-migrated").is_file());
        assert!(dir.join(META_FILE).is_file());
        drop(store);

        // Second open takes the v2 path and sees identical data.
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.workloads(), vec!["km".to_string(), "pr".to_string()]);
        assert_eq!(store.best_recent("pr", 1)[0].1, 55.0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn golden_v2_layout_and_record_format_parse() {
        // Pinned v2 wire format: meta, per-shard snapshot with LSN, and
        // checksummed [crc, payload] record lines. If this test breaks,
        // the on-disk schema changed and FORMAT_VERSION must be bumped
        // with a migration.
        let dir = temp_dir("golden-v2");
        let sdir = dir.join("shard-00");
        fs::create_dir_all(&sdir).unwrap();
        fs::write(dir.join(META_FILE), r#"{ "version": 2, "shards": 1 }"#).unwrap();
        fs::write(
            sdir.join(SNAPSHOT_FILE),
            r#"{
  "version": 2,
  "lsn": 2,
  "selections": { "km": ["spark.executor.cores"] },
  "configs": {
    "km": [
      { "time_s": 101.5,
        "values": [ {"t":"i","v":8}, {"t":"f","v":0.6}, {"t":"b","v":true}, {"t":"c","v":2} ] }
    ]
  }
}"#,
        )
        .unwrap();
        let payloads = [
            r#"{"kind":"hdr","version":2,"shard":0,"seq":1}"#,
            r#"{"lsn":3,"op":"sel","workload":"pr","names":["spark.default.parallelism"]}"#,
            r#"{"lsn":4,"op":"cfg","workload":"pr","time_s":55.0,"values":[{"t":"i","v":4},{"t":"f","v":0.25},{"t":"b","v":false},{"t":"c","v":0}]}"#,
        ];
        let mut wal = String::new();
        for p in payloads {
            // The crc32 function itself is pinned by its own test
            // vector, so building the checksum here still pins bytes.
            let line = serde_json::to_string(&Value::Array(vec![
                Value::from(format!("{:08x}", crc32(p.as_bytes()))),
                Value::from(p),
            ]))
            .unwrap();
            wal.push_str(&line);
            wal.push('\n');
        }
        fs::write(sdir.join("wal-00000001.jsonl"), wal).unwrap();

        let report = verify_store(&dir).unwrap();
        assert_eq!(
            report["ok"].as_bool(),
            Some(true),
            "report: {}",
            serde_json::to_string(&report).unwrap()
        );

        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("km"), Some(vec!["spark.executor.cores".into()]));
        assert_eq!(
            store.selection("pr"),
            Some(vec!["spark.default.parallelism".into()])
        );
        assert_eq!(store.best_recent("km", 1)[0].1, 101.5);
        assert_eq!(store.best_recent("km", 1)[0].0, sample_config());
        assert_eq!(store.best_recent("pr", 1)[0].1, 55.0);
        assert_eq!(store.wal_lag(), 2, "snapshot lsn 2, wal through lsn 4");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_final_line_is_truncated_and_tolerated() {
        let dir = temp_dir("torn");
        {
            let store = PersistentMemoStore::open_with(&dir, small_opts(1)).unwrap();
            store.put_selection("km", vec!["a".into()]);
            store.put_selection("pr", vec!["b".into()]);
        }
        // Simulate a crash mid-append: garbage partial line at the tail.
        let seg = dir.join("shard-00").join("wal-00000001.jsonl");
        let clean_len = fs::metadata(&seg).unwrap().len();
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(br#"["dead,"{\"lsn\":"#);
        fs::write(&seg, &bytes).unwrap();

        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("km"), Some(vec!["a".into()]));
        assert_eq!(store.selection("pr"), Some(vec!["b".into()]));
        let status = store.status();
        assert_eq!(status.shards[0].torn_tails, 1);
        assert_eq!(status.corrupt_segments(), 0, "a torn tail is not corruption");
        assert_eq!(
            fs::metadata(&seg).unwrap().len(),
            clean_len,
            "the torn bytes must be truncated away"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_segment_quarantines_and_keeps_the_prefix() {
        let dir = temp_dir("corrupt-mid");
        {
            let store = PersistentMemoStore::open_with(&dir, small_opts(1)).unwrap();
            store.put_selection("aa", vec!["first".into()]);
            store.put_selection("bb", vec!["second".into()]);
            store.put_selection("cc", vec!["third".into()]);
        }
        // Flip bytes inside the *middle* record (line 3: header, aa, bb).
        let seg = dir.join("shard-00").join("wal-00000001.jsonl");
        let text = fs::read_to_string(&seg).unwrap();
        let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
        assert_eq!(lines.len(), 4);
        lines[2] = lines[2].replace("bb", "xx");
        fs::write(&seg, format!("{}\n", lines.join("\n"))).unwrap();

        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(
            store.selection("aa"),
            Some(vec!["first".into()]),
            "the valid prefix survives"
        );
        assert_eq!(store.selection("bb"), None, "the corrupt record is dropped");
        assert_eq!(
            store.selection("cc"),
            None,
            "records after the corruption point are not trusted"
        );
        let status = store.status();
        assert_eq!(status.corrupt_segments(), 1);
        assert!(!seg.exists(), "the bad segment must be moved, not left in place");
        let quarantined = dir.join(CORRUPT_DIR).join("shard-00.wal-00000001.jsonl");
        assert!(quarantined.is_file(), "quarantine keeps the evidence");
        drop(store);

        // The recovered prefix was checkpointed immediately: a second
        // crashless reopen still has it, from the snapshot alone.
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.selection("aa"), Some(vec!["first".into()]));
        assert_eq!(store.status().corrupt_segments(), 0, "already quarantined");

        let report = verify_store(&dir).unwrap();
        assert_eq!(report["ok"].as_bool(), Some(false));
        let explained = serde_json::to_string(&report["problems"]).unwrap();
        assert!(
            explained.contains("shard-00.wal-00000001.jsonl"),
            "verify must point at the quarantined file: {explained}"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn unwritable_wal_degrades_but_keeps_serving() {
        let dir = temp_dir("degraded");
        let opts = StoreOptions {
            shards: 1,
            // Every append seals the segment, so the next one must
            // create a fresh file — an open handle on an unlinked file
            // would otherwise keep succeeding forever.
            segment_max_bytes: 1,
            compact_after_sealed: u64::MAX,
        };
        let store = PersistentMemoStore::open_with(&dir, opts).unwrap();
        store.put_selection("km", vec!["a".into()]);
        assert!(!store.status().degraded());
        // Make every future WAL create fail: the shard directory
        // becomes a plain file. (chmod is useless here — tests run as
        // root in CI containers.)
        let sdir = dir.join("shard-00");
        fs::remove_dir_all(&sdir).unwrap();
        fs::write(&sdir, b"not a directory").unwrap();

        store.put_selection("pr", vec!["b".into()]);
        let status = store.status();
        assert!(status.degraded(), "lost durability must be reported");
        assert_eq!(status.degraded_shards(), 1);
        assert_eq!(
            store.selection("pr"),
            Some(vec!["b".into()]),
            "a degraded shard still serves from memory"
        );
        assert!(store.checkpoint().is_err());
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_file(&dir);
    }

    #[test]
    fn wal_lag_tracks_appends_and_resets_on_checkpoint() {
        let dir = temp_dir("lag");
        {
            let store = PersistentMemoStore::open_with(&dir, small_opts(1)).unwrap();
            assert_eq!(store.wal_lag(), 0);
            store.put_selection("km", vec!["a".into()]);
            store.record_config("km", sample_config(), 10.0);
            assert_eq!(store.wal_lag(), 2);
            store.checkpoint().unwrap();
            assert_eq!(store.wal_lag(), 0);
            store.record_config("km", sample_config(), 9.0);
            assert_eq!(store.wal_lag(), 1);
        }
        // A reopened store owes exactly the replayed WAL entries.
        let store = PersistentMemoStore::open(&dir).unwrap();
        assert_eq!(store.wal_lag(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn meta_rejects_unknown_versions() {
        let dir = temp_dir("version");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(META_FILE), r#"{"version": 99, "shards": 4}"#).unwrap();
        assert!(PersistentMemoStore::open(&dir).is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_shard_snapshot_quarantines_and_boots_empty() {
        let dir = temp_dir("badsnap");
        {
            let store = PersistentMemoStore::open_with(&dir, small_opts(1)).unwrap();
            store.put_selection("km", vec!["a".into()]);
            store.checkpoint().unwrap();
        }
        let snap = dir.join("shard-00").join(SNAPSHOT_FILE);
        fs::write(&snap, b"{ definitely not json").unwrap();
        let store = PersistentMemoStore::open(&dir).unwrap();
        // The snapshot was the only copy (WAL already compacted), so
        // the shard is empty — but the boot survives and the evidence
        // is preserved.
        assert_eq!(store.selection("km"), None);
        assert!(dir
            .join(CORRUPT_DIR)
            .join("shard-00.memo.snapshot.json")
            .is_file());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segments_rotate_and_compaction_bounds_them() {
        let dir = temp_dir("rotate");
        let opts = StoreOptions {
            shards: 1,
            segment_max_bytes: 256,
            compact_after_sealed: 2,
        };
        let store = PersistentMemoStore::open_with(&dir, opts).unwrap();
        for i in 0..40 {
            store.put_selection(&format!("wl-{i:02}"), vec![format!("param-{i}")]);
        }
        let status = store.status();
        assert!(
            status.shards[0].last_lsn == 40,
            "every op journaled: {:?}",
            status.shards[0]
        );
        assert!(
            status.segments() <= 3,
            "compaction must bound live segments, got {}",
            status.segments()
        );
        assert!(
            status.wal_lag() < 40,
            "checkpoints must have folded most of the log"
        );
        drop(store);
        let store = PersistentMemoStore::open(&dir).unwrap();
        for i in 0..40 {
            assert_eq!(
                store.selection(&format!("wl-{i:02}")),
                Some(vec![format!("param-{i}")]),
                "wl-{i:02} must survive rotation + compaction + reboot"
            );
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn workloads_stripe_across_shards() {
        let dir = temp_dir("stripe");
        let store = PersistentMemoStore::open_with(&dir, small_opts(8)).unwrap();
        let mut expect = Vec::new();
        for i in 0..24 {
            let wl = format!("wl-{i}");
            store.put_selection(&wl, vec!["p".into()]);
            expect.push(wl);
        }
        expect.sort_unstable();
        assert_eq!(store.workloads(), expect, "reads merge across shards");
        let populated = store
            .status()
            .shards
            .iter()
            .filter(|s| s.workloads > 0)
            .count();
        assert!(
            populated > 1,
            "fingerprint striping must spread 24 workloads over >1 of 8 shards"
        );
        let inspected = inspect_store(&dir).unwrap();
        assert_eq!(inspected["shards"].as_u64(), Some(8));
        let _ = fs::remove_dir_all(&dir);
    }
}
