//! A small blocking client for the service protocol, plus the drive
//! loop the load generator and the integration tests share.

use crate::protocol::{config_from_wire, ObservedStatus, Profile};
use robotune_space::{ConfigSpace, Configuration};
use robotune_tuners::Objective;
use serde_json::{Map, Value};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::{Duration, Instant};

/// What a client call can fail with.
#[derive(Debug)]
pub enum ClientError {
    /// Transport-level failure (connect, read, write, EOF).
    Io(std::io::Error),
    /// The server answered, but with `ok: false`. Carries the typed
    /// code and message.
    Protocol {
        /// The wire error code (e.g. `"overloaded"`).
        code: String,
        /// The human-oriented message.
        message: String,
    },
    /// The server's frame didn't have the promised shape.
    BadResponse(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol { code, message } => write!(f, "{code}: {message}"),
            ClientError::BadResponse(m) => write!(f, "bad response: {m}"),
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// One `suggest` answer.
#[derive(Debug, Clone)]
pub enum Suggestion {
    /// The session is still waiting for a worker.
    Queued,
    /// Run this configuration and observe the result.
    Config {
        /// Suggestion index to echo back in `observe`.
        index: u64,
        /// The decoded configuration.
        config: Configuration,
        /// Evaluation cap in seconds.
        cap_s: f64,
    },
    /// The session completed.
    Finished {
        /// Evaluations the BO session recorded.
        evals: u64,
        /// Best completed time.
        best_time_s: Option<f64>,
        /// Whether the initial design reused memoized configurations.
        warm_start: bool,
        /// Whether the parameter selection came from the shared cache.
        cache_hit: bool,
    },
}

/// A blocking NDJSON client over one TCP connection.
pub struct TuningClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    next_id: u64,
}

impl TuningClient {
    /// Connects to a running service.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let writer = stream.try_clone()?;
        Ok(TuningClient { reader: BufReader::new(stream), writer, next_id: 0 })
    }

    /// Sends one request object and reads the matching response frame.
    /// Fills in a fresh `id` and checks the echo.
    pub fn request(&mut self, mut frame: Map) -> Result<Value, ClientError> {
        self.next_id += 1;
        let id = self.next_id;
        frame.insert("id".into(), Value::from(id));
        let mut line = serde_json::to_string(&Value::Object(frame))
            .map_err(|e| ClientError::BadResponse(format!("encode request: {e}")))?;
        line.push('\n');
        self.writer.write_all(line.as_bytes())?;
        self.writer.flush()?;
        let mut response = String::new();
        let n = self.reader.read_line(&mut response)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        let v: Value = serde_json::from_str(response.trim_end())
            .map_err(|e| ClientError::BadResponse(format!("parse response: {e}")))?;
        if v.get("id").and_then(Value::as_u64) != Some(id) {
            return Err(ClientError::BadResponse(format!(
                "response id mismatch (want {id})"
            )));
        }
        if v.get("ok").and_then(Value::as_bool) == Some(true) {
            return Ok(v);
        }
        let code = v["error"]["code"].as_str().unwrap_or("missing_code").to_string();
        let message = v["error"]["message"].as_str().unwrap_or("").to_string();
        Err(ClientError::Protocol { code, message })
    }

    fn verb(verb: &str) -> Map {
        let mut m = Map::new();
        m.insert("verb".into(), Value::from(verb));
        m
    }

    fn session_verb(verb: &str, session: &str) -> Map {
        let mut m = Self::verb(verb);
        m.insert("session".into(), Value::from(session));
        m
    }

    /// Opens a session; returns its id.
    pub fn create_session(
        &mut self,
        workload: &str,
        space: &str,
        seed: u64,
        budget: usize,
        profile: Profile,
    ) -> Result<String, ClientError> {
        let mut m = Self::verb("create_session");
        m.insert("workload".into(), Value::from(workload));
        m.insert("space".into(), Value::from(space));
        m.insert("seed".into(), Value::from(seed));
        m.insert("budget".into(), Value::from(budget as u64));
        m.insert("profile".into(), Value::from(profile.as_str()));
        let v = self.request(m)?;
        v.get("session")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::BadResponse("create_session: no session id".into()))
    }

    /// Pulls the next suggestion, decoding the configuration over
    /// `space` (which must match the session's space).
    pub fn suggest(
        &mut self,
        session: &str,
        space: &ConfigSpace,
    ) -> Result<Suggestion, ClientError> {
        let v = self.request(Self::session_verb("suggest", session))?;
        match v.get("type").and_then(Value::as_str) {
            Some("queued") => Ok(Suggestion::Queued),
            Some("config") => {
                let index = v
                    .get("index")
                    .and_then(Value::as_u64)
                    .ok_or_else(|| ClientError::BadResponse("suggest: no index".into()))?;
                let cap_s = v
                    .get("cap_s")
                    .and_then(Value::as_f64)
                    .ok_or_else(|| ClientError::BadResponse("suggest: no cap_s".into()))?;
                let config = v
                    .get("config")
                    .ok_or_else(|| ClientError::BadResponse("suggest: no config".into()))
                    .and_then(|c| {
                        config_from_wire(space, c)
                            .map_err(|e| ClientError::BadResponse(e.to_string()))
                    })?;
                Ok(Suggestion::Config { index, config, cap_s })
            }
            Some("finished") => Ok(Suggestion::Finished {
                evals: v.get("evals").and_then(Value::as_u64).unwrap_or(0),
                best_time_s: v.get("best_time_s").and_then(Value::as_f64),
                warm_start: v.get("warm_start").and_then(Value::as_bool).unwrap_or(false),
                cache_hit: v.get("cache_hit").and_then(Value::as_bool).unwrap_or(false),
            }),
            other => Err(ClientError::BadResponse(format!(
                "suggest: unexpected type {other:?}"
            ))),
        }
    }

    /// Reports a measurement for the pending suggestion.
    pub fn observe(
        &mut self,
        session: &str,
        index: u64,
        time_s: f64,
        status: ObservedStatus,
    ) -> Result<(), ClientError> {
        let mut m = Self::session_verb("observe", session);
        m.insert("index".into(), Value::from(index));
        m.insert("time_s".into(), Value::from(time_s));
        m.insert("status".into(), Value::from(status.as_str()));
        self.request(m).map(|_| ())
    }

    /// Fetches the best-so-far summary for a session.
    pub fn best(&mut self, session: &str) -> Result<Value, ClientError> {
        self.request(Self::session_verb("best", session))
    }

    /// Server-wide status frame.
    pub fn status(&mut self) -> Result<Value, ClientError> {
        self.request(Self::verb("status"))
    }

    /// Per-session status frame.
    pub fn session_status(&mut self, session: &str) -> Result<Value, ClientError> {
        self.request(Self::session_verb("status", session))
    }

    /// Cancels a session.
    pub fn close_session(&mut self, session: &str) -> Result<(), ClientError> {
        self.request(Self::session_verb("close_session", session)).map(|_| ())
    }

    /// Aggregate server metrics as structured JSON.
    pub fn metrics(&mut self) -> Result<Value, ClientError> {
        self.request(Self::verb("metrics"))
    }

    /// One session's scoped metrics as structured JSON.
    pub fn session_metrics(&mut self, session: &str) -> Result<Value, ClientError> {
        self.request(Self::session_verb("metrics", session))
    }

    /// Metrics rendered as Prometheus exposition text. `session` picks
    /// one session's scoped view; `None` is the aggregate registry.
    pub fn metrics_prometheus(&mut self, session: Option<&str>) -> Result<String, ClientError> {
        let mut m = Self::verb("metrics");
        if let Some(sid) = session {
            m.insert("session".into(), Value::from(sid));
        }
        m.insert("format".into(), Value::from("prometheus"));
        let v = self.request(m)?;
        v.get("body")
            .and_then(Value::as_str)
            .map(str::to_owned)
            .ok_or_else(|| ClientError::BadResponse("metrics: no body".into()))
    }

    /// The server's health frame (workers, queue, SLO windows, store).
    pub fn health(&mut self) -> Result<Value, ClientError> {
        self.request(Self::verb("health"))
    }

    /// One session's tuner-health diagnostics (`diag.*` series,
    /// whitelisted counters, derived summary) under the versioned
    /// diagnose schema.
    pub fn diagnose(&mut self, session: &str) -> Result<Value, ClientError> {
        self.request(Self::session_verb("diagnose", session))
    }

    /// Asks the server to drain, checkpoint, and exit.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(Self::verb("shutdown")).map(|_| ())
    }
}

/// What [`drive_session`] measured.
#[derive(Debug, Clone)]
pub struct DriveReport {
    /// The session id.
    pub session: String,
    /// Evaluations the client ran (asks observed).
    pub evals_run: u64,
    /// Evaluations the BO session recorded, per the finished summary.
    pub evals_recorded: u64,
    /// Best completed time per the finished summary.
    pub best_time_s: Option<f64>,
    /// Whether the session warm-started from memoized configurations.
    pub warm_start: bool,
    /// Whether the parameter selection came from the shared cache.
    pub cache_hit: bool,
    /// Wall-clock latency of each `suggest` round trip, seconds.
    pub suggest_latencies_s: Vec<f64>,
    /// Wall-clock latency of each `observe` round trip, seconds.
    pub observe_latencies_s: Vec<f64>,
}

/// Creates a session and drives it to completion against a local
/// objective: suggest → evaluate → observe until `finished`.
///
/// `queued` backoff is a short sleep; a `timeout` error retries the
/// suggest. Any other protocol error aborts the drive.
pub fn drive_session(
    client: &mut TuningClient,
    space: &ConfigSpace,
    objective: &mut dyn Objective,
    workload: &str,
    seed: u64,
    budget: usize,
    profile: Profile,
) -> Result<DriveReport, ClientError> {
    let session = client.create_session(workload, "spark", seed, budget, profile)?;
    let mut report = DriveReport {
        session: session.clone(),
        evals_run: 0,
        evals_recorded: 0,
        best_time_s: None,
        warm_start: false,
        cache_hit: false,
        suggest_latencies_s: Vec::new(),
        observe_latencies_s: Vec::new(),
    };
    loop {
        let t0 = Instant::now();
        let suggestion = match client.suggest(&session, space) {
            Ok(s) => s,
            Err(ClientError::Protocol { code, .. }) if code == "timeout" => continue,
            Err(e) => return Err(e),
        };
        report.suggest_latencies_s.push(t0.elapsed().as_secs_f64());
        match suggestion {
            Suggestion::Queued => std::thread::sleep(Duration::from_millis(5)),
            Suggestion::Config { index, config, cap_s } => {
                let eval = objective.evaluate(&config, cap_s);
                let status = ObservedStatus::of(&eval);
                let t1 = Instant::now();
                client.observe(&session, index, eval.time_s, status)?;
                report.observe_latencies_s.push(t1.elapsed().as_secs_f64());
                report.evals_run += 1;
            }
            Suggestion::Finished { evals, best_time_s, warm_start, cache_hit } => {
                report.evals_recorded = evals;
                report.best_time_s = best_time_s;
                report.warm_start = warm_start;
                report.cache_hit = cache_hit;
                return Ok(report);
            }
        }
    }
}
