//! The session manager: admission, the bounded worker pool, request
//! dispatch, and graceful shutdown.
//!
//! Concurrency model: `create_session` admits a session into a bounded
//! FIFO queue (backpressure — a full queue answers a typed
//! `overloaded` error). A fixed pool of worker threads (spawned by
//! [`serve`](crate::server::serve)) pops sessions and runs each
//! pipeline to completion; the number of concurrently *running*
//! sessions is therefore exactly the worker count. Request dispatch
//! itself never blocks on the pipeline except `suggest`, which waits up
//! to [`ServiceOptions::suggest_timeout`] for the next ask.
//!
//! Shutdown: the flag flips, every session is cancelled cooperatively
//! (running pipelines unblock and wind down, queued sessions are
//! skipped), workers drain, and the server checkpoints the shared
//! store. In-flight requests get responses; new sessions are refused.

use crate::flight::FlightRecorder;
use crate::protocol::{
    self, config_to_wire, error_frame, ok_frame, ErrorCode, MetricsFormat, ProtoError, Request,
};
use crate::session::{ServedSession, SessionOutcome, SessionSpec, SessionState, SuggestReply};
use robotune::SharedMemoStore;
use robotune_obs::{HistSummary, RollingWindow, Snapshot};
use robotune_space::spark::spark_space;
use robotune_space::ConfigSpace;
use serde_json::{Map, Value};
use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Tunables for the service.
#[derive(Debug, Clone)]
pub struct ServiceOptions {
    /// Worker threads — the max number of concurrently running
    /// sessions.
    pub workers: usize,
    /// Queued-session cap; admissions beyond it get `overloaded`.
    pub queue_capacity: usize,
    /// How long one `suggest` waits for the pipeline's next ask before
    /// answering a retryable `timeout` error.
    pub suggest_timeout: Duration,
    /// How many recent suggest/observe requests the rolling SLO
    /// percentiles in `health` cover.
    pub slo_window: usize,
    /// Where failure flight-recorder dumps are written; `None` disables
    /// the recorder.
    pub flight_dir: Option<PathBuf>,
    /// Dispatch threads the reactor hands decoded requests to. These
    /// execute `handle_line` (which can block up to `suggest_timeout`
    /// waiting on a session's pipeline) so the event loop never does;
    /// they are cheap threads, distinct from the GP-compute `workers`.
    pub dispatch_workers: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            workers: 4,
            queue_capacity: 64,
            suggest_timeout: Duration::from_secs(30),
            slo_window: 256,
            flight_dir: None,
            dispatch_workers: 8,
        }
    }
}

/// Rolling request-latency windows behind one lock; samples are
/// nanoseconds.
struct SloWindows {
    suggest: RollingWindow,
    observe: RollingWindow,
}

/// Which SLO window a request feeds.
enum SloVerb {
    Suggest,
    Observe,
}

/// Hosts every session and dispatches protocol requests.
pub struct SessionManager {
    opts: ServiceOptions,
    store: SharedMemoStore,
    spaces: Vec<(String, Arc<ConfigSpace>)>,
    sessions: Mutex<HashMap<String, Arc<ServedSession>>>,
    queue: Mutex<VecDeque<Arc<ServedSession>>>,
    queue_cv: Condvar,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    active: AtomicU64,
    slo: Mutex<SloWindows>,
    flight: Option<FlightRecorder>,
}

impl SessionManager {
    /// Builds a manager over a shared memo store. The Spark space is
    /// pre-registered as `"spark"`.
    pub fn new(opts: ServiceOptions, store: SharedMemoStore) -> Self {
        let flight = opts.flight_dir.as_ref().and_then(|dir| {
            FlightRecorder::new(dir)
                .map_err(|e| {
                    robotune_obs::incr("service.flight.errors", 1);
                    robotune_obs::mark("service.flight.errors", || {
                        serde_json::json!({ "error": e.clone() })
                    });
                })
                .ok()
        });
        let slo_window = opts.slo_window.max(1);
        SessionManager {
            opts,
            store,
            spaces: vec![("spark".to_string(), Arc::new(spark_space()))],
            sessions: Mutex::new(HashMap::new()),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            active: AtomicU64::new(0),
            slo: Mutex::new(SloWindows {
                suggest: RollingWindow::new(slo_window),
                observe: RollingWindow::new(slo_window),
            }),
            flight,
        }
    }

    /// The configured options.
    pub fn options(&self) -> &ServiceOptions {
        &self.opts
    }

    /// The shared memo store.
    pub fn store(&self) -> SharedMemoStore {
        self.store.clone()
    }

    /// Registers an additional named configuration space.
    pub fn register_space(&mut self, name: impl Into<String>, space: Arc<ConfigSpace>) {
        self.spaces.push((name.into(), space));
    }

    fn space(&self, name: &str) -> Option<Arc<ConfigSpace>> {
        self.spaces.iter().find(|(n, _)| n == name).map(|(_, s)| s.clone())
    }

    /// Whether shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown: refuse new sessions, cancel live ones, wake
    /// idle workers. The store checkpoint happens in
    /// [`serve`](crate::server::serve) once the workers have drained.
    pub fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::Relaxed) {
            return;
        }
        robotune_obs::incr("service.shutdowns", 1);
        for session in lock(&self.sessions).values() {
            session.close();
        }
        self.queue_cv.notify_all();
    }

    /// One worker: pop queued sessions and run each pipeline to
    /// completion until shutdown drains the queue.
    pub fn worker_loop(&self) {
        loop {
            let session = {
                let mut q = lock(&self.queue);
                loop {
                    if let Some(s) = q.pop_front() {
                        break Some(s);
                    }
                    if self.is_shutting_down() {
                        break None;
                    }
                    q = self
                        .queue_cv
                        .wait(q)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
            };
            let Some(session) = session else {
                return;
            };
            if self.is_shutting_down() {
                session.close();
                continue;
            }
            let active = self.active.fetch_add(1, Ordering::Relaxed) + 1;
            robotune_obs::record("service.sessions_active", active as f64);
            robotune_obs::incr("service.sessions_started", 1);
            session.run(self.store.clone());
            let active = self.active.fetch_sub(1, Ordering::Relaxed) - 1;
            robotune_obs::record("service.sessions_active", active as f64);
            match session.state() {
                SessionState::Finished => {
                    robotune_obs::incr("service.sessions_finished", 1);
                    // Finished but with failed evaluations: the fault
                    // paths fired — leave a black box anyway.
                    if session.stats().failed > 0 {
                        self.dump_flight(&session, "fault_injection");
                    }
                }
                _ => {
                    robotune_obs::incr("service.sessions_cancelled", 1);
                    self.dump_flight(&session, "cancelled");
                }
            }
        }
    }

    /// Writes a flight-recorder dump for `session`, if a recorder is
    /// configured. Never fails the caller.
    fn dump_flight(&self, session: &ServedSession, reason: &str) {
        let Some(flight) = self.flight.as_ref() else {
            return;
        };
        match flight.dump(session, reason) {
            Ok(path) => {
                robotune_obs::incr("service.flight.dumps", 1);
                robotune_obs::mark("service.flight.dump", || {
                    serde_json::json!({
                        "session": session.id.clone(),
                        "reason": reason,
                        "path": path.display().to_string(),
                    })
                });
            }
            Err(e) => {
                robotune_obs::incr("service.flight.errors", 1);
                robotune_obs::mark("service.flight.errors", || {
                    serde_json::json!({ "session": session.id.clone(), "error": e.clone() })
                });
            }
        }
    }

    /// Number of sessions admitted but not yet picked up by a worker.
    pub fn queue_depth(&self) -> usize {
        lock(&self.queue).len()
    }

    /// Handles one raw request line, returning the rendered response
    /// frame (without trailing newline).
    pub fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        let frame = match serde_json::from_str(line) {
            Ok(v) => v,
            Err(e) => {
                let code = match e.kind() {
                    serde_json::ErrorKind::SizeLimit => ErrorCode::FrameTooLarge,
                    _ => ErrorCode::MalformedFrame,
                };
                robotune_obs::incr("service.req_errors", 1);
                return render(error_frame(
                    &Value::Null,
                    &ProtoError::new(code, format!("bad frame: {e}")),
                ));
            }
        };
        let (id, parsed) = Request::parse(&frame);
        let response = match parsed {
            Ok(req) => {
                let verb = verb_metric(&req);
                let slo = match &req {
                    Request::Suggest { .. } => Some(SloVerb::Suggest),
                    Request::Observe { .. } => Some(SloVerb::Observe),
                    _ => None,
                };
                // Session-bearing verbs run inside the session's
                // telemetry scope, so the per-verb latency histograms
                // attribute per tenant as well as globally.
                let scope_session = req.session_id().and_then(|sid| self.session(sid).ok());
                let result = {
                    let _guard = scope_session.as_ref().map(|s| s.scope().enter());
                    let result = self.dispatch(&id, req);
                    robotune_obs::record(verb, started.elapsed().as_nanos() as f64);
                    result
                };
                if let Some(slo_verb) = slo {
                    let ns = started.elapsed().as_nanos() as f64;
                    let mut slo = lock(&self.slo);
                    match slo_verb {
                        SloVerb::Suggest => slo.suggest.push(ns),
                        SloVerb::Observe => slo.observe.push(ns),
                    }
                }
                robotune_obs::incr("service.requests", 1);
                result
            }
            Err(err) => {
                robotune_obs::incr("service.req_errors", 1);
                error_frame(&id, &err)
            }
        };
        render(response)
    }

    fn dispatch(&self, id: &Value, req: Request) -> Value {
        match req {
            Request::CreateSession { workload, space, seed, budget, profile } => {
                self.create_session(id, workload, &space, seed, budget, profile)
            }
            Request::Suggest { session } => match self.session(&session) {
                Err(e) => error_frame(id, &e),
                Ok(s) => match s.suggest(self.opts.suggest_timeout) {
                    Err(e) => error_frame(id, &e),
                    Ok(reply) => self.render_suggest(id, &s, reply),
                },
            },
            Request::Observe { session, index, time_s, status } => {
                match self.session(&session).and_then(|s| s.observe(index, time_s, status)) {
                    Err(e) => error_frame(id, &e),
                    Ok(observed) => {
                        let mut m = ok_frame(id);
                        m.insert("observed".into(), Value::from(observed));
                        Value::Object(m)
                    }
                }
            }
            Request::Best { session } => match self.session(&session) {
                Err(e) => error_frame(id, &e),
                Ok(s) => {
                    let (best_time_s, best_config) = s.best();
                    let mut m = ok_frame(id);
                    m.insert("state".into(), Value::from(s.state().as_str()));
                    m.insert(
                        "best_time_s".into(),
                        best_time_s.map_or(Value::Null, Value::from),
                    );
                    m.insert(
                        "best_config".into(),
                        best_config
                            .map_or(Value::Null, |c| config_to_wire(s.space(), &c)),
                    );
                    Value::Object(m)
                }
            },
            Request::Status { session: Some(session) } => match self.session(&session) {
                Err(e) => error_frame(id, &e),
                Ok(s) => {
                    let mut m = ok_frame(id);
                    extend_session_status(&mut m, &s);
                    Value::Object(m)
                }
            },
            Request::Status { session: None } => self.server_status(id),
            Request::CloseSession { session } => match self.session(&session) {
                Err(e) => error_frame(id, &e),
                Ok(s) => {
                    s.close();
                    let mut m = ok_frame(id);
                    m.insert("session".into(), Value::from(s.id.as_str()));
                    m.insert("state".into(), Value::from(s.state().as_str()));
                    Value::Object(m)
                }
            },
            Request::Metrics { session, format } => self.metrics(id, session.as_deref(), format),
            Request::Health => self.health(id),
            Request::Diagnose { session } => match self.session(&session) {
                Err(e) => error_frame(id, &e),
                Ok(s) => {
                    let mut m = ok_frame(id);
                    crate::diagnose::extend_diagnose(&mut m, &s);
                    Value::Object(m)
                }
            },
            Request::Shutdown => {
                self.begin_shutdown();
                let mut m = ok_frame(id);
                m.insert("draining".into(), Value::Bool(true));
                Value::Object(m)
            }
        }
    }

    /// Answers `metrics`: the aggregate registry view, or one session's
    /// scoped view, as JSON or Prometheus text.
    fn metrics(&self, id: &Value, session: Option<&str>, format: MetricsFormat) -> Value {
        let (snap, scope_name, labels): (Snapshot, String, Vec<(String, String)>) = match session {
            None => (robotune_obs::snapshot(), "aggregate".to_string(), Vec::new()),
            Some(sid) => match self.session(sid) {
                Err(e) => return error_frame(id, &e),
                Ok(s) => {
                    let labels = vec![
                        ("session".to_string(), s.id.clone()),
                        ("workload".to_string(), s.spec.workload.clone()),
                    ];
                    (s.scope().snapshot(), s.id.clone(), labels)
                }
            },
        };
        let mut m = ok_frame(id);
        m.insert("scope".into(), Value::from(scope_name));
        m.insert("tracing_enabled".into(), Value::Bool(robotune_obs::is_enabled()));
        match format {
            MetricsFormat::Json => {
                let mut counters = Map::new();
                for (name, total) in &snap.counters {
                    counters.insert(name.clone(), Value::from(*total));
                }
                let mut hists = Map::new();
                for (name, summary) in &snap.hists {
                    hists.insert(name.clone(), summary_to_json(summary));
                }
                let mut spans = Map::new();
                for (name, summary) in &snap.spans {
                    spans.insert(name.clone(), summary_to_json(summary));
                }
                m.insert("counters".into(), Value::Object(counters));
                m.insert("hists".into(), Value::Object(hists));
                m.insert("spans".into(), Value::Object(spans));
            }
            MetricsFormat::Prometheus => {
                let label_refs: Vec<(&str, &str)> =
                    labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).collect();
                m.insert("format".into(), Value::from("prometheus"));
                m.insert(
                    "body".into(),
                    Value::from(robotune_obs::render_prometheus_labeled(&snap, &label_refs)),
                );
            }
        }
        Value::Object(m)
    }

    /// Answers `health`: liveness, worker/queue pressure, rolling SLO
    /// percentiles, and store durability lag.
    fn health(&self, id: &Value) -> Value {
        let snap = robotune_obs::snapshot();
        let store_status = self.store.status();
        let wal_lag = self.store.wal_lag();
        let store_workloads = self.store.workloads().len() as u64;
        // Degradation comes from the store itself (a shard whose WAL
        // appends are failing), not from telemetry counters: counters
        // are no-ops when tracing is disabled, and they never reset, so
        // a long-recovered hiccup would pin health at degraded forever.
        let degraded = store_status.degraded()
            || snap.counter("service.store.checkpoint_error") > 0;
        let status = if self.is_shutting_down() {
            "draining"
        } else if degraded {
            "degraded"
        } else {
            "ok"
        };
        let active = self.active.load(Ordering::Relaxed);
        let workers = self.opts.workers.max(1) as u64;

        let slo_json = {
            let slo = lock(&self.slo);
            let mut s = Map::new();
            s.insert("window".into(), Value::from(slo.suggest.capacity() as u64));
            s.insert("suggest".into(), window_to_json(&slo.suggest));
            s.insert("observe".into(), window_to_json(&slo.observe));
            Value::Object(s)
        };

        let mut store_json = Map::new();
        store_json.insert("wal_lag".into(), Value::from(wal_lag));
        store_json.insert("workloads".into(), Value::from(store_workloads));
        store_json
            .insert("checkpoints".into(), Value::from(snap.counter("service.store.checkpoints")));
        store_json
            .insert("wal_errors".into(), Value::from(snap.counter("service.store.wal_error")));
        store_json.insert(
            "checkpoint_errors".into(),
            Value::from(snap.counter("service.store.checkpoint_error")),
        );
        store_json.insert("persistent".into(), Value::Bool(store_status.persistent));
        store_json.insert("shards".into(), Value::from(store_status.shards.len() as u64));
        store_json.insert("degraded".into(), Value::Bool(store_status.degraded()));
        store_json.insert(
            "degraded_shards".into(),
            Value::from(store_status.degraded_shards()),
        );
        store_json.insert("segments".into(), Value::from(store_status.segments()));
        store_json.insert(
            "corrupt_segments".into(),
            Value::from(store_status.corrupt_segments()),
        );
        store_json.insert(
            "shard_detail".into(),
            Value::Array(
                store_status
                    .shards
                    .iter()
                    .map(|s| {
                        let mut d = Map::new();
                        d.insert("shard".into(), Value::from(s.shard as u64));
                        d.insert("wal_lag".into(), Value::from(s.wal_lag));
                        d.insert("segments".into(), Value::from(s.segments));
                        d.insert("corrupt_segments".into(), Value::from(s.corrupt_segments));
                        d.insert("torn_tails".into(), Value::from(s.torn_tails));
                        d.insert("degraded".into(), Value::Bool(s.degraded));
                        d.insert("workloads".into(), Value::from(s.workloads));
                        Value::Object(d)
                    })
                    .collect(),
            ),
        );

        let mut m = ok_frame(id);
        m.insert("status".into(), Value::from(status));
        m.insert("workers".into(), Value::from(workers));
        m.insert("sessions_active".into(), Value::from(active));
        m.insert(
            "worker_utilization".into(),
            Value::from((active as f64 / workers as f64).min(1.0)),
        );
        m.insert("queue_depth".into(), Value::from(self.queue_depth() as u64));
        m.insert("queue_capacity".into(), Value::from(self.opts.queue_capacity as u64));
        m.insert("slo".into(), slo_json);
        m.insert("store".into(), Value::Object(store_json));
        m.insert("tracing_enabled".into(), Value::Bool(robotune_obs::is_enabled()));
        m.insert(
            "flight_recorder".into(),
            self.flight
                .as_ref()
                .map_or(Value::Null, |f| Value::from(f.dir().display().to_string())),
        );
        Value::Object(m)
    }

    fn create_session(
        &self,
        id: &Value,
        workload: String,
        space_name: &str,
        seed: u64,
        budget: usize,
        profile: protocol::Profile,
    ) -> Value {
        if self.is_shutting_down() {
            return error_frame(
                id,
                &ProtoError::new(ErrorCode::ShuttingDown, "server is draining"),
            );
        }
        let Some(space) = self.space(space_name) else {
            return error_frame(
                id,
                &ProtoError::new(
                    ErrorCode::UnknownSpace,
                    format!("no space named {space_name:?}"),
                ),
            );
        };
        let session_id = format!("s-{}", self.next_id.fetch_add(1, Ordering::Relaxed) + 1);
        let session = ServedSession::new(
            session_id.clone(),
            SessionSpec { workload, budget, seed, profile },
            space,
        );
        {
            let mut q = lock(&self.queue);
            if q.len() >= self.opts.queue_capacity {
                robotune_obs::incr("service.overloaded", 1);
                return error_frame(
                    id,
                    &ProtoError::new(
                        ErrorCode::Overloaded,
                        format!("admission queue is full ({} sessions)", q.len()),
                    ),
                );
            }
            lock(&self.sessions).insert(session_id.clone(), session.clone());
            q.push_back(session);
        }
        self.queue_cv.notify_one();
        robotune_obs::incr("service.sessions_created", 1);
        let mut m = ok_frame(id);
        m.insert("session".into(), Value::from(session_id));
        m.insert("state".into(), Value::from(SessionState::Queued.as_str()));
        Value::Object(m)
    }

    fn session(&self, id: &str) -> Result<Arc<ServedSession>, ProtoError> {
        lock(&self.sessions).get(id).cloned().ok_or_else(|| {
            ProtoError::new(ErrorCode::UnknownSession, format!("no session {id:?}"))
        })
    }

    fn render_suggest(&self, id: &Value, s: &ServedSession, reply: SuggestReply) -> Value {
        let mut m = ok_frame(id);
        match reply {
            SuggestReply::Queued => {
                m.insert("type".into(), Value::from("queued"));
            }
            SuggestReply::Ask(ask) => {
                m.insert("type".into(), Value::from("config"));
                m.insert("index".into(), Value::from(ask.index));
                m.insert("cap_s".into(), Value::from(ask.cap_s));
                m.insert("config".into(), config_to_wire(s.space(), &ask.config));
            }
            SuggestReply::Finished(out) => {
                m.insert("type".into(), Value::from("finished"));
                extend_outcome(&mut m, s, &out);
            }
        }
        Value::Object(m)
    }

    fn server_status(&self, id: &Value) -> Value {
        let sessions = lock(&self.sessions);
        let mut rows: Vec<(String, Value)> = sessions
            .values()
            .map(|s| {
                let mut row = Map::new();
                extend_session_status(&mut row, s);
                (s.id.clone(), Value::Object(row))
            })
            .collect();
        drop(sessions);
        // HashMap iteration order is arbitrary; sort for stable output.
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        let store_workloads = self.store.workloads();
        let mut m = ok_frame(id);
        m.insert("shutting_down".into(), Value::Bool(self.is_shutting_down()));
        m.insert("workers".into(), Value::from(self.opts.workers as u64));
        m.insert("queue_depth".into(), Value::from(self.queue_depth() as u64));
        m.insert(
            "sessions_active".into(),
            Value::from(self.active.load(Ordering::Relaxed)),
        );
        m.insert(
            "sessions".into(),
            Value::Array(rows.into_iter().map(|(_, v)| v).collect()),
        );
        m.insert(
            "store_workloads".into(),
            Value::Array(store_workloads.into_iter().map(Value::from).collect()),
        );
        Value::Object(m)
    }
}

fn extend_session_status(m: &mut Map, s: &ServedSession) {
    let stats = s.stats();
    m.insert("session".into(), Value::from(s.id.as_str()));
    m.insert("state".into(), Value::from(s.state().as_str()));
    m.insert("workload".into(), Value::from(s.spec.workload.as_str()));
    m.insert("seed".into(), Value::from(s.spec.seed));
    m.insert("budget".into(), Value::from(s.spec.budget as u64));
    m.insert("profile".into(), Value::from(s.spec.profile.as_str()));
    m.insert("asked".into(), Value::from(stats.asked));
    m.insert("observed".into(), Value::from(stats.observed));
    m.insert("completed".into(), Value::from(stats.completed));
    m.insert("failed".into(), Value::from(stats.failed));
    m.insert("capped".into(), Value::from(stats.capped));
    m.insert(
        "best_time_s".into(),
        stats.best_time_s.map_or(Value::Null, Value::from),
    );
    if let Some(out) = s.outcome() {
        let mut o = Map::new();
        extend_outcome(&mut o, s, &out);
        m.insert("outcome".into(), Value::Object(o));
    } else {
        m.insert("outcome".into(), Value::Null);
    }
}

fn extend_outcome(m: &mut Map, s: &ServedSession, out: &SessionOutcome) {
    m.insert("evals".into(), Value::from(out.evals as u64));
    m.insert(
        "best_time_s".into(),
        out.best_time_s.map_or(Value::Null, Value::from),
    );
    m.insert(
        "best_config".into(),
        out.best_config
            .as_ref()
            .map_or(Value::Null, |c| config_to_wire(s.space(), c)),
    );
    m.insert("warm_start".into(), Value::Bool(out.warm_start));
    m.insert("cache_hit".into(), Value::Bool(out.cache_hit));
    m.insert("selection_cost_s".into(), Value::from(out.selection_cost_s));
    m.insert("search_cost_s".into(), Value::from(out.search_cost_s));
}

/// Renders a histogram summary as a JSON object (non-finite fields
/// serialize as `null`).
fn summary_to_json(s: &HistSummary) -> Value {
    let mut m = Map::new();
    m.insert("count".into(), Value::from(s.count));
    m.insert("sum".into(), Value::from(s.sum));
    m.insert("mean".into(), Value::from(s.mean));
    m.insert("min".into(), Value::from(s.min));
    m.insert("max".into(), Value::from(s.max));
    m.insert("p50".into(), Value::from(s.p50));
    m.insert("p90".into(), Value::from(s.p90));
    m.insert("p99".into(), Value::from(s.p99));
    Value::Object(m)
}

/// Renders a rolling latency window (ns samples) as millisecond
/// percentiles.
fn window_to_json(w: &RollingWindow) -> Value {
    let mut m = Map::new();
    m.insert("count".into(), Value::from(w.len() as u64));
    m.insert("total".into(), Value::from(w.total()));
    m.insert("p50_ms".into(), w.p50().map_or(Value::Null, |ns| Value::from(ns / 1e6)));
    m.insert("p99_ms".into(), w.p99().map_or(Value::Null, |ns| Value::from(ns / 1e6)));
    Value::Object(m)
}

fn verb_metric(req: &Request) -> &'static str {
    match req {
        Request::CreateSession { .. } => "service.req_ns.create_session",
        Request::Suggest { .. } => "service.req_ns.suggest",
        Request::Observe { .. } => "service.req_ns.observe",
        Request::Best { .. } => "service.req_ns.best",
        Request::Status { .. } => "service.req_ns.status",
        Request::CloseSession { .. } => "service.req_ns.close_session",
        Request::Metrics { .. } => "service.req_ns.metrics",
        Request::Health => "service.req_ns.health",
        Request::Diagnose { .. } => "service.req_ns.diagnose",
        Request::Shutdown => "service.req_ns.shutdown",
    }
}

fn render(v: Value) -> String {
    serde_json::to_string(&v).unwrap_or_else(|_| {
        // The value was built by us from valid pieces; this cannot
        // fail, but degrade to a protocol-shaped literal regardless.
        r#"{"id":null,"ok":false,"error":{"code":"internal","message":"render failure"}}"#
            .to_string()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune::InMemoryMemoStore;

    fn manager() -> SessionManager {
        SessionManager::new(
            ServiceOptions { workers: 2, queue_capacity: 2, ..ServiceOptions::default() },
            InMemoryMemoStore::new().into_shared(),
        )
    }

    fn parse(s: &str) -> Value {
        serde_json::from_str(s).unwrap()
    }

    #[test]
    fn create_reports_queued_and_backpressure_is_typed() {
        let m = manager();
        let r1 = parse(&m.handle_line(
            r#"{"id":1,"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":5}"#,
        ));
        assert_eq!(r1["ok"], Value::Bool(true));
        assert_eq!(r1["state"].as_str(), Some("queued"));
        let _ = m.handle_line(
            r#"{"verb":"create_session","workload":"pr","space":"spark","seed":2,"budget":5}"#,
        );
        // Capacity 2: the third admission bounces.
        let r3 = parse(&m.handle_line(
            r#"{"verb":"create_session","workload":"cc","space":"spark","seed":3,"budget":5}"#,
        ));
        assert_eq!(r3["ok"], Value::Bool(false));
        assert_eq!(r3["error"]["code"].as_str(), Some("overloaded"));
    }

    #[test]
    fn typed_errors_for_bad_frames_and_unknown_things() {
        let m = manager();
        for (line, code) in [
            ("{nope", "malformed_frame"),
            ("[]", "malformed_frame"),
            (r#"{"verb":"zap"}"#, "unknown_verb"),
            (r#"{"verb":"suggest","session":"s-99"}"#, "unknown_session"),
            (
                r#"{"verb":"create_session","workload":"x","space":"flink","seed":1,"budget":5}"#,
                "unknown_space",
            ),
        ] {
            let r = parse(&m.handle_line(line));
            assert_eq!(r["ok"], Value::Bool(false), "{line}");
            assert_eq!(r["error"]["code"].as_str(), Some(code), "{line}");
        }
    }

    #[test]
    fn shutdown_refuses_new_sessions_and_echoes_ids() {
        let m = manager();
        let r = parse(&m.handle_line(r#"{"id":"x-1","verb":"shutdown"}"#));
        assert_eq!(r["id"].as_str(), Some("x-1"));
        assert_eq!(r["draining"], Value::Bool(true));
        assert!(m.is_shutting_down());
        let r = parse(&m.handle_line(
            r#"{"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":5}"#,
        ));
        assert_eq!(r["error"]["code"].as_str(), Some("shutting_down"));
    }

    #[test]
    fn metrics_answers_aggregate_and_per_session_views() {
        let m = manager();
        let agg = parse(&m.handle_line(r#"{"verb":"metrics"}"#));
        assert_eq!(agg["ok"], Value::Bool(true));
        assert_eq!(agg["scope"].as_str(), Some("aggregate"));
        assert!(agg["counters"].as_object().is_some());
        assert!(agg["hists"].as_object().is_some());
        assert!(agg["spans"].as_object().is_some());

        let r = parse(&m.handle_line(
            r#"{"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":5}"#,
        ));
        let sid = r["session"].as_str().unwrap().to_string();
        let one = parse(&m.handle_line(&format!(r#"{{"verb":"metrics","session":"{sid}"}}"#)));
        assert_eq!(one["scope"].as_str(), Some(sid.as_str()));

        let prom = parse(&m.handle_line(
            &format!(r#"{{"verb":"metrics","session":"{sid}","format":"prometheus"}}"#),
        ));
        assert_eq!(prom["format"].as_str(), Some("prometheus"));
        assert!(prom["body"].as_str().is_some());

        let missing = parse(&m.handle_line(r#"{"verb":"metrics","session":"s-404"}"#));
        assert_eq!(missing["error"]["code"].as_str(), Some("unknown_session"));
    }

    #[test]
    fn health_reports_pressure_slo_and_store() {
        let m = manager();
        let _ = m.handle_line(
            r#"{"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":5}"#,
        );
        let h = parse(&m.handle_line(r#"{"verb":"health"}"#));
        assert_eq!(h["ok"], Value::Bool(true));
        assert_eq!(h["status"].as_str(), Some("ok"));
        assert_eq!(h["workers"].as_u64(), Some(2));
        assert_eq!(h["queue_depth"].as_u64(), Some(1));
        assert_eq!(h["queue_capacity"].as_u64(), Some(2));
        assert_eq!(h["sessions_active"].as_u64(), Some(0));
        assert_eq!(h["worker_utilization"].as_f64(), Some(0.0));
        assert_eq!(h["slo"]["window"].as_u64(), Some(256));
        assert_eq!(h["slo"]["suggest"]["count"].as_u64(), Some(0));
        assert_eq!(h["store"]["wal_lag"].as_u64(), Some(0));
        assert_eq!(h["flight_recorder"], Value::Null);

        // A suggest against the queued session feeds the SLO window.
        let sid = {
            let server = parse(&m.handle_line(r#"{"verb":"status"}"#));
            server["sessions"][0]["session"].as_str().unwrap().to_string()
        };
        let _ = m.handle_line(&format!(r#"{{"verb":"suggest","session":"{sid}"}}"#));
        let h = parse(&m.handle_line(r#"{"verb":"health"}"#));
        assert_eq!(h["slo"]["suggest"]["count"].as_u64(), Some(1));
        assert!(h["slo"]["suggest"]["p50_ms"].as_f64().is_some());

        m.begin_shutdown();
        let h = parse(&m.handle_line(r#"{"verb":"health"}"#));
        assert_eq!(h["status"].as_str(), Some("draining"));
    }

    #[test]
    fn status_covers_the_server_and_single_sessions() {
        let m = manager();
        let r = parse(&m.handle_line(
            r#"{"verb":"create_session","workload":"km","space":"spark","seed":1,"budget":5}"#,
        ));
        let sid = r["session"].as_str().unwrap().to_string();
        let server = parse(&m.handle_line(r#"{"verb":"status"}"#));
        assert_eq!(server["queue_depth"].as_u64(), Some(1));
        assert_eq!(server["sessions"][0]["session"].as_str(), Some(sid.as_str()));
        let one =
            parse(&m.handle_line(&format!(r#"{{"verb":"status","session":"{sid}"}}"#)));
        assert_eq!(one["state"].as_str(), Some("queued"));
        assert_eq!(one["workload"].as_str(), Some("km"));
        assert_eq!(one["outcome"], Value::Null);
    }
}
