//! One served tuning session: the ask/tell bridge over the unmodified
//! ROBOTune pipeline.
//!
//! The pipeline is a *push* loop — it calls
//! [`Objective::evaluate`] and blocks until a measurement returns. A
//! [`ServedSession`] runs that loop on a worker thread against a
//! [`ChannelObjective`] whose `evaluate` publishes the configuration as
//! an **ask** on a rendezvous channel and parks until the client's
//! `observe` sends the matching **tell** back. Nothing in the selection,
//! sampling, or BO layers changes, so the served trajectory at seed `S`
//! is bit-identical to an in-process `tune_workload` run at seed `S` —
//! the integration tests assert exactly that.
//!
//! Lifecycle: `Queued` (admitted, waiting for a worker) → `Running`
//! (pipeline live) → `Finished` (budget exhausted, outcome recorded) or
//! `Closed` (client close / server shutdown; the pipeline is cancelled
//! cooperatively via the engine's cancel flag and unblocked by dropping
//! the tell sender).

use crate::protocol::{ErrorCode, ObservedStatus, Profile, ProtoError};
use robotune::{RoboTune, SharedMemoStore};
use robotune_obs::{Scope, ScopeLabels};
use robotune_space::{ConfigSpace, Configuration};
use robotune_stats::rng_from_seed;
use robotune_tuners::{Evaluation, Objective};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{mpsc, Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Hard cap on a session's recorded config trajectory (asks + tells).
/// Oldest entries roll off; the drop count is kept for the flight dump.
pub const TRAJECTORY_CAPACITY: usize = 4096;

fn lock<'a, T: ?Sized>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Where a session is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionState {
    /// Admitted; waiting for a worker slot.
    Queued,
    /// The pipeline is live on a worker.
    Running,
    /// The pipeline completed its budget.
    Finished,
    /// Cancelled by `close_session` or shutdown.
    Closed,
}

impl SessionState {
    /// The wire spelling.
    pub fn as_str(self) -> &'static str {
        match self {
            SessionState::Queued => "queued",
            SessionState::Running => "running",
            SessionState::Finished => "finished",
            SessionState::Closed => "closed",
        }
    }
}

/// What a session asked the client to run.
#[derive(Debug, Clone)]
pub struct Ask {
    /// Monotonic per-session evaluation index (selection samples and
    /// retry attempts included — every objective call is one ask).
    pub index: u64,
    /// The configuration to run.
    pub config: Configuration,
    /// The evaluation cap the pipeline wants enforced, in seconds.
    pub cap_s: f64,
}

/// Immutable description of a session, fixed at creation.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// Memo-store workload key.
    pub workload: String,
    /// BO evaluation budget.
    pub budget: usize,
    /// RNG seed.
    pub seed: u64,
    /// Options profile.
    pub profile: Profile,
}

/// Counters a session maintains as the client drives it.
#[derive(Debug, Clone, Default)]
pub struct SessionStats {
    /// Asks handed out.
    pub asked: u64,
    /// Tells accepted.
    pub observed: u64,
    /// Tells with status `completed`.
    pub completed: u64,
    /// Tells with a failure status.
    pub failed: u64,
    /// Tells with status `capped`.
    pub capped: u64,
    /// Best completed time seen via tells.
    pub best_time_s: Option<f64>,
}

/// The pipeline's summary once a session finishes.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// Evaluations recorded in the BO session (selection excluded).
    pub evals: usize,
    /// Best completed time.
    pub best_time_s: Option<f64>,
    /// Best configuration.
    pub best_config: Option<Configuration>,
    /// Whether the initial design reused memoized configurations.
    pub warm_start: bool,
    /// Whether the parameter selection came from the shared cache.
    pub cache_hit: bool,
    /// Time charged to parameter selection (0 on a cache hit).
    pub selection_cost_s: f64,
    /// Total simulated seconds the search consumed.
    pub search_cost_s: f64,
}

/// One step of a session's configuration trajectory, recorded for the
/// flight recorder.
#[derive(Debug, Clone)]
pub enum TrajectoryEntry {
    /// The pipeline asked the client to run `config` under `cap_s`.
    Ask {
        /// Per-session evaluation index.
        index: u64,
        /// Evaluation cap in seconds.
        cap_s: f64,
        /// The configuration handed out.
        config: Configuration,
    },
    /// The client reported a measurement back.
    Tell {
        /// Index of the ask this answers.
        index: u64,
        /// Measured wall-clock seconds.
        time_s: f64,
        /// How the run ended.
        status: ObservedStatus,
    },
}

/// Bounded ask/tell history plus the count of rolled-off entries.
#[derive(Debug, Default)]
struct Trajectory {
    entries: VecDeque<TrajectoryEntry>,
    dropped: u64,
}

impl Trajectory {
    fn push(&mut self, entry: TrajectoryEntry) {
        if self.entries.len() == TRAJECTORY_CAPACITY {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(entry);
    }
}

/// What `suggest` can answer.
#[derive(Debug, Clone)]
pub enum SuggestReply {
    /// Still waiting for a worker; retry shortly.
    Queued,
    /// Run this configuration and `observe` the result.
    Ask(Ask),
    /// The session completed; here is the summary.
    Finished(SessionOutcome),
}

/// One measurement travelling back to the pipeline, together with the
/// causal trace context of the `observe` request that carried it. The
/// worker thread re-roots its ambient context to `ctx` so the spans of
/// the continuation (the GP fit feeding the *next* ask) link back to
/// the observing request across the thread crossing.
struct Tell {
    eval: Evaluation,
    ctx: robotune_obs::TraceCtx,
}

/// The channel-backed [`Objective`] the pipeline runs against.
struct ChannelObjective {
    ask_tx: SyncSender<Ask>,
    tell_rx: Receiver<Tell>,
    /// Shared with the session's cancel flag: once set, evaluations
    /// short-circuit to deterministic failures so the selector or
    /// engine can wind down without further client input.
    aborted: Arc<AtomicBool>,
    next_index: u64,
}

impl Objective for ChannelObjective {
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        if self.aborted.load(Ordering::Relaxed) {
            return Evaluation::failed(0.0);
        }
        let ask = Ask { index: self.next_index, config: config.clone(), cap_s };
        self.next_index += 1;
        if self.ask_tx.send(ask).is_err() {
            self.aborted.store(true, Ordering::Relaxed);
            return Evaluation::failed(0.0);
        }
        match self.tell_rx.recv() {
            Ok(tell) => {
                // The "current request" of this worker thread is now the
                // observe that delivered the measurement.
                robotune_obs::set_ambient(tell.ctx);
                tell.eval
            }
            Err(_) => {
                // The server dropped the tell sender: session closed.
                self.aborted.store(true, Ordering::Relaxed);
                Evaluation::failed(0.0)
            }
        }
    }
}

/// One multi-tenant session hosted by the service.
pub struct ServedSession {
    /// Session id (`s-<n>`).
    pub id: String,
    /// Creation-time parameters.
    pub spec: SessionSpec,
    space: Arc<ConfigSpace>,
    state: Mutex<SessionState>,
    state_cv: Condvar,
    cancel: Arc<AtomicBool>,
    ask_rx: Mutex<Option<Receiver<Ask>>>,
    tell_tx: Mutex<Option<SyncSender<Tell>>>,
    /// Causal context of the `create_session` request; the worker thread
    /// adopts it as its ambient context when the pipeline starts.
    created_ctx: robotune_obs::TraceCtx,
    pending: Mutex<Option<Ask>>,
    stats: Mutex<SessionStats>,
    outcome: Mutex<Option<SessionOutcome>>,
    /// Telemetry scope: everything the pipeline (and the connection
    /// threads serving this session) emits attributes here too.
    scope: Scope,
    trajectory: Mutex<Trajectory>,
}

impl ServedSession {
    /// Creates a session in the `Queued` state.
    pub fn new(id: String, spec: SessionSpec, space: Arc<ConfigSpace>) -> Arc<Self> {
        let scope = Scope::new(ScopeLabels {
            session_id: id.clone(),
            workload: spec.workload.clone(),
        });
        Arc::new(ServedSession {
            id,
            spec,
            space,
            state: Mutex::new(SessionState::Queued),
            state_cv: Condvar::new(),
            cancel: Arc::new(AtomicBool::new(false)),
            ask_rx: Mutex::new(None),
            tell_tx: Mutex::new(None),
            created_ctx: robotune_obs::TraceCtx::current(),
            pending: Mutex::new(None),
            stats: Mutex::new(SessionStats::default()),
            outcome: Mutex::new(None),
            scope,
            trajectory: Mutex::new(Trajectory::default()),
        })
    }

    /// The session's telemetry scope.
    pub fn scope(&self) -> &Scope {
        &self.scope
    }

    /// A copy of the recorded ask/tell trajectory plus the number of
    /// entries that rolled off the bounded history.
    pub fn trajectory(&self) -> (Vec<TrajectoryEntry>, u64) {
        let t = lock(&self.trajectory);
        (t.entries.iter().cloned().collect(), t.dropped)
    }

    /// The space this session tunes over.
    pub fn space(&self) -> &Arc<ConfigSpace> {
        &self.space
    }

    /// Current lifecycle state.
    pub fn state(&self) -> SessionState {
        *lock(&self.state)
    }

    /// A copy of the client-side counters.
    pub fn stats(&self) -> SessionStats {
        lock(&self.stats).clone()
    }

    /// The finished summary, if the pipeline has completed.
    pub fn outcome(&self) -> Option<SessionOutcome> {
        lock(&self.outcome).clone()
    }

    /// Runs the pipeline to completion on the calling (worker) thread.
    ///
    /// Returns immediately if the session was closed while queued.
    pub fn run(&self, store: SharedMemoStore) {
        let (ask_tx, ask_rx) = mpsc::sync_channel::<Ask>(1);
        let (tell_tx, tell_rx) = mpsc::sync_channel::<Tell>(1);
        {
            // Install the channel ends *before* announcing `Running`,
            // so a racing `suggest` never observes a running session
            // with no receiver.
            let mut st = lock(&self.state);
            if *st != SessionState::Queued {
                return;
            }
            *lock(&self.ask_rx) = Some(ask_rx);
            *lock(&self.tell_tx) = Some(tell_tx);
            *st = SessionState::Running;
            self.state_cv.notify_all();
        }

        // Attribute everything the pipeline emits (gp.*, bo.*, retry.*,
        // eval.*) to this session's scope. A no-op while tracing is
        // disabled, so served trajectories stay bit-identical either way.
        let _scope = self.scope.enter();
        // The worker's ambient trace context starts at the creating
        // request and is re-rooted to each observe's context as tells
        // arrive, so pipeline spans always link to the request that
        // caused them. Telemetry only — never touches the RNG or data.
        robotune_obs::set_ambient(self.created_ctx);
        let mut objective = ChannelObjective {
            ask_tx,
            tell_rx,
            aborted: self.cancel.clone(),
            next_index: 0,
        };
        let mut opts = self.spec.profile.options();
        opts.engine.cancel = Some(self.cancel.clone());
        let mut tuner = RoboTune::with_store(opts, store);
        let mut rng = rng_from_seed(self.spec.seed);
        let out = tuner.tune_workload(
            &self.space,
            &self.spec.workload,
            &mut objective,
            self.spec.budget,
            &mut rng,
        );

        *lock(&self.outcome) = Some(SessionOutcome {
            evals: out.session.len(),
            best_time_s: out.session.best_time(),
            best_config: out.session.best().map(|r| r.config.clone()),
            warm_start: out.warm_start,
            cache_hit: out.selection.is_none(),
            selection_cost_s: out.selection_cost_s,
            search_cost_s: out.session.search_cost() + out.selection_cost_s,
        });
        // The worker thread outlives the session: clear its ambient
        // context so the next session starts with a clean slate.
        robotune_obs::set_ambient(robotune_obs::TraceCtx::NONE);
        // Drop our tell sender so late `observe`s get a typed
        // session_closed/finished answer instead of feeding a dead loop.
        lock(&self.tell_tx).take();
        let mut st = lock(&self.state);
        if *st == SessionState::Running {
            *st = SessionState::Finished;
        }
        self.state_cv.notify_all();
    }

    /// Pulls the next ask, waiting up to `timeout` for the pipeline.
    pub fn suggest(&self, timeout: Duration) -> Result<SuggestReply, ProtoError> {
        match self.state() {
            SessionState::Queued => return Ok(SuggestReply::Queued),
            SessionState::Closed => {
                return Err(ProtoError::new(ErrorCode::SessionClosed, "session is closed"))
            }
            SessionState::Finished => return Ok(self.finished_reply()),
            SessionState::Running => {}
        }
        let rx_guard = lock(&self.ask_rx);
        // Serialise concurrent suggests on one session: whoever holds
        // the receiver checks again that no ask is outstanding.
        if lock(&self.pending).is_some() {
            return Err(ProtoError::new(
                ErrorCode::SuggestionPending,
                "previous suggestion not yet observed",
            ));
        }
        let Some(rx) = rx_guard.as_ref() else {
            return match self.state() {
                SessionState::Finished => Ok(self.finished_reply()),
                _ => Err(ProtoError::new(ErrorCode::SessionClosed, "session is closed")),
            };
        };
        match rx.recv_timeout(timeout) {
            Ok(ask) => {
                *lock(&self.pending) = Some(ask.clone());
                lock(&self.stats).asked += 1;
                lock(&self.trajectory).push(TrajectoryEntry::Ask {
                    index: ask.index,
                    cap_s: ask.cap_s,
                    config: ask.config.clone(),
                });
                Ok(SuggestReply::Ask(ask))
            }
            Err(RecvTimeoutError::Timeout) => Err(ProtoError::new(
                ErrorCode::Timeout,
                "pipeline produced no suggestion in time; retry",
            )),
            Err(RecvTimeoutError::Disconnected) => {
                drop(rx_guard);
                // The pipeline wound down; wait briefly for the worker
                // to record the outcome and settle the state.
                let st = self.wait_settled(Duration::from_secs(5));
                match st {
                    SessionState::Finished => Ok(self.finished_reply()),
                    _ => Err(ProtoError::new(ErrorCode::SessionClosed, "session is closed")),
                }
            }
        }
    }

    fn wait_settled(&self, timeout: Duration) -> SessionState {
        let (st, _) = self
            .state_cv
            .wait_timeout_while(lock(&self.state), timeout, |st| *st == SessionState::Running)
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *st
    }

    fn finished_reply(&self) -> SuggestReply {
        match self.outcome() {
            Some(out) => SuggestReply::Finished(out),
            // Settled state without an outcome cannot happen; degrade
            // to an empty summary rather than panic.
            None => SuggestReply::Finished(SessionOutcome {
                evals: 0,
                best_time_s: None,
                best_config: None,
                warm_start: false,
                cache_hit: false,
                selection_cost_s: 0.0,
                search_cost_s: 0.0,
            }),
        }
    }

    /// Feeds the client's measurement back to the pipeline. Returns the
    /// total number of observations accepted so far.
    pub fn observe(
        &self,
        index: Option<u64>,
        time_s: f64,
        status: ObservedStatus,
    ) -> Result<u64, ProtoError> {
        if !time_s.is_finite() || time_s < 0.0 {
            return Err(ProtoError::new(
                ErrorCode::InvalidField,
                "time_s must be a finite non-negative number",
            ));
        }
        let mut pending = lock(&self.pending);
        let Some(ask) = pending.as_ref() else {
            return Err(ProtoError::new(
                ErrorCode::NoPendingSuggestion,
                "no suggestion outstanding",
            ));
        };
        if let Some(i) = index {
            if i != ask.index {
                return Err(ProtoError::new(
                    ErrorCode::InvalidField,
                    format!("index {i} does not match pending suggestion {}", ask.index),
                ));
            }
        }
        let tx_guard = lock(&self.tell_tx);
        let Some(tx) = tx_guard.as_ref() else {
            pending.take();
            return Err(ProtoError::new(ErrorCode::SessionClosed, "session is closed"));
        };
        let tell =
            Tell { eval: status.to_evaluation(time_s), ctx: robotune_obs::TraceCtx::current() };
        if tx.send(tell).is_err() {
            pending.take();
            return Err(ProtoError::new(ErrorCode::SessionClosed, "session is closed"));
        }
        let answered = pending.take().map(|a| a.index);
        drop(tx_guard);
        if let Some(index) = answered {
            lock(&self.trajectory).push(TrajectoryEntry::Tell { index, time_s, status });
        }
        let mut stats = lock(&self.stats);
        stats.observed += 1;
        match status {
            ObservedStatus::Completed => {
                stats.completed += 1;
                stats.best_time_s = Some(match stats.best_time_s {
                    Some(b) if b <= time_s => b,
                    _ => time_s,
                });
            }
            ObservedStatus::Capped => stats.capped += 1,
            ObservedStatus::Failed | ObservedStatus::Transient => stats.failed += 1,
        }
        Ok(stats.observed)
    }

    /// The best completed configuration reported so far (from the
    /// finished outcome when available, else the live tell counters).
    pub fn best(&self) -> (Option<f64>, Option<Configuration>) {
        if let Some(out) = self.outcome() {
            return (out.best_time_s, out.best_config);
        }
        (lock(&self.stats).best_time_s, None)
    }

    /// Cancels the session: flags the pipeline, unblocks it, and drops
    /// any outstanding ask. Finished sessions stay `Finished`.
    pub fn close(&self) {
        self.cancel.store(true, Ordering::Relaxed);
        {
            let mut st = lock(&self.state);
            match *st {
                SessionState::Finished | SessionState::Closed => return,
                _ => *st = SessionState::Closed,
            }
            self.state_cv.notify_all();
        }
        lock(&self.tell_tx).take();
        lock(&self.pending).take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune::InMemoryMemoStore;
    use robotune_space::spark::spark_space;

    fn spec() -> SessionSpec {
        SessionSpec {
            workload: "km".into(),
            budget: 4,
            seed: 9,
            profile: Profile::Fast,
        }
    }

    #[test]
    fn closed_while_queued_never_runs() {
        let s = ServedSession::new("s-1".into(), spec(), Arc::new(spark_space()));
        s.close();
        s.run(InMemoryMemoStore::new().into_shared());
        assert_eq!(s.state(), SessionState::Closed);
        assert!(s.outcome().is_none());
    }

    #[test]
    fn suggest_before_running_reports_queued_and_observe_is_typed() {
        let s = ServedSession::new("s-2".into(), spec(), Arc::new(spark_space()));
        assert!(matches!(s.suggest(Duration::from_millis(1)), Ok(SuggestReply::Queued)));
        let err = s.observe(None, 1.0, ObservedStatus::Completed).unwrap_err();
        assert_eq!(err.code, ErrorCode::NoPendingSuggestion);
        let err = s.observe(None, f64::NAN, ObservedStatus::Completed).unwrap_err();
        assert_eq!(err.code, ErrorCode::InvalidField);
    }

    #[test]
    fn ask_tell_drives_a_session_to_finished() {
        let s = ServedSession::new("s-3".into(), spec(), Arc::new(spark_space()));
        let store = InMemoryMemoStore::new().into_shared();
        std::thread::scope(|scope| {
            let session = &s;
            scope.spawn(move || session.run(store));
            let mut last_index = None;
            loop {
                match s.suggest(Duration::from_secs(30)).unwrap() {
                    SuggestReply::Queued => std::thread::sleep(Duration::from_millis(2)),
                    SuggestReply::Ask(ask) => {
                        // Indexes are monotonic and double-suggest is typed.
                        if let Some(prev) = last_index {
                            assert_eq!(ask.index, prev + 1);
                        }
                        last_index = Some(ask.index);
                        let err = s.suggest(Duration::from_millis(1)).unwrap_err();
                        assert_eq!(err.code, ErrorCode::SuggestionPending);
                        // A mismatched echo index is rejected, the right one lands.
                        let err =
                            s.observe(Some(ask.index + 7), 10.0, ObservedStatus::Completed);
                        assert_eq!(err.unwrap_err().code, ErrorCode::InvalidField);
                        s.observe(Some(ask.index), 10.0, ObservedStatus::Completed).unwrap();
                    }
                    SuggestReply::Finished(out) => {
                        assert_eq!(out.evals, spec().budget);
                        assert!(!out.cache_hit, "cold store cannot hit the selection cache");
                        break;
                    }
                }
            }
        });
        assert_eq!(s.state(), SessionState::Finished);
        let stats = s.stats();
        assert_eq!(stats.asked, stats.observed);
        assert!(stats.observed > 0);
    }

    #[test]
    fn close_mid_session_releases_the_worker() {
        let s = ServedSession::new("s-4".into(), spec(), Arc::new(spark_space()));
        let store = InMemoryMemoStore::new().into_shared();
        std::thread::scope(|scope| {
            let session = &s;
            let worker = scope.spawn(move || session.run(store));
            // Take one ask, then abandon the session.
            loop {
                match s.suggest(Duration::from_secs(30)).unwrap() {
                    SuggestReply::Queued => std::thread::sleep(Duration::from_millis(2)),
                    SuggestReply::Ask(_) => break,
                    SuggestReply::Finished(_) => panic!("cannot finish after one ask"),
                }
            }
            s.close();
            worker.join().unwrap();
        });
        assert_eq!(s.state(), SessionState::Closed);
        let err = s.suggest(Duration::from_millis(1)).unwrap_err();
        assert_eq!(err.code, ErrorCode::SessionClosed);
        // The cancelled cold run must not have polluted the shared store.
        assert!(s.outcome().is_none() || s.state() == SessionState::Closed);
    }
}
