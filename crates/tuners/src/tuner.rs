//! The tuner interface.

use rand::rngs::StdRng;
use robotune_space::SearchSpace;

use crate::objective::Objective;
use crate::session::TuningSession;

/// A budgeted configuration tuner.
///
/// Implementations sample unit-cube points from `space`, decode them, run
/// them through `objective` under whatever stop-threshold policy they use,
/// and return the full [`TuningSession`] trace. The budget counts
/// *evaluations* (the paper uses 100), not seconds — seconds are what
/// [`TuningSession::search_cost`] reports afterwards.
pub trait Tuner {
    /// Human-readable tuner name for reports.
    fn name(&self) -> &str;

    /// Runs one tuning session.
    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession;
}

/// Shared helper: evaluate a unit-cube point (retrying transient failures
/// under `retry`) and record the budget-charged result, tagged with the
/// fidelity the objective is currently running at.
pub(crate) fn evaluate_point(
    session: &mut TuningSession,
    space: &dyn SearchSpace,
    objective: &mut dyn Objective,
    point: Vec<f64>,
    cap_s: f64,
    retry: &crate::retry::RetryPolicy,
) -> crate::objective::Evaluation {
    let config = space.decode(&point);
    let eval = crate::retry::evaluate_with_retry(objective, &config, cap_s, retry);
    session.push_at(point, config, eval, cap_s, objective.fidelity());
    eval
}
