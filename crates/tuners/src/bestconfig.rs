//! BestConfig (Zhu et al., SoCC '17).
//!
//! Two cooperating pieces:
//!
//! * **Divide & Diverge Sampling (DDS)** — divide every parameter range
//!   into `k` intervals and take one sample per interval combination
//!   "diverging" across dimensions — operationally Latin Hypercube
//!   sampling with `k` strata;
//! * **Recursive Bound and Search (RBS)** — bound the space to the
//!   neighbourhood (± one stratum) of the best sample and resample inside
//!   it; if a round fails to improve, *diverge* back to the full space.
//!
//! With the authors' recommended sample-set size of 100 and a 100-run
//! budget only the initial DDS round executes — the paper's explanation
//! (§5.2) for why BestConfig behaves like pure exploration. BestConfig
//! also modifies its stop threshold at runtime (§5.3): after the first
//! round the cap tracks a generous multiple of the best time seen.

use rand::rngs::StdRng;
use robotune_sampling::lhs;
use robotune_space::SearchSpace;

use crate::objective::Objective;
use crate::session::TuningSession;
use crate::retry::RetryPolicy;
use crate::tuner::{evaluate_point, Tuner};

/// The BestConfig baseline.
#[derive(Debug, Clone)]
pub struct BestConfig {
    /// Samples per DDS round (authors' recommendation: 100).
    pub sample_set_size: usize,
    /// Hard cap on any single run (the 480 s evaluation limit).
    pub max_cap_s: f64,
    /// Runtime threshold policy: later rounds cap runs at this multiple of
    /// the best completed time so far.
    pub adaptive_cap_multiple: f64,
    /// Retry policy for transient evaluation failures.
    pub retry: RetryPolicy,
}

impl BestConfig {
    /// Creates the tuner with the paper's settings.
    pub fn new(sample_set_size: usize, max_cap_s: f64) -> Self {
        BestConfig {
            sample_set_size,
            max_cap_s,
            adaptive_cap_multiple: 4.0,
            retry: RetryPolicy::default(),
        }
    }
}

impl Default for BestConfig {
    fn default() -> Self {
        BestConfig::new(100, 480.0)
    }
}

impl Tuner for BestConfig {
    fn name(&self) -> &str {
        "BestConfig"
    }

    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession {
        let dim = space.dim();
        let mut session = TuningSession::new(self.name());
        let mut remaining = budget;
        // Current bounded subregion, initially the whole cube.
        let mut bounds: Vec<(f64, f64)> = vec![(0.0, 1.0); dim];
        let mut overall_best: Option<(f64, Vec<f64>)> = None;

        while remaining > 0 {
            let round_size = self.sample_set_size.min(remaining);
            remaining -= round_size;

            // Runtime-modified threshold: generous in round one, tied to
            // the incumbent afterwards.
            let cap = match &overall_best {
                None => self.max_cap_s,
                Some((t, _)) => (t * self.adaptive_cap_multiple).min(self.max_cap_s),
            };

            // DDS: stratified samples mapped into the current bounds.
            let mut round_best: Option<(f64, Vec<f64>)> = None;
            for unit in lhs(round_size, dim, rng) {
                let point: Vec<f64> = unit
                    .iter()
                    .zip(&bounds)
                    .map(|(&u, &(lo, hi))| lo + u * (hi - lo))
                    .collect();
                let eval = evaluate_point(&mut session, space, objective, point.clone(), cap, &self.retry);
                if eval.completed
                    && round_best
                        .as_ref()
                        .is_none_or(|(t, _)| eval.time_s < *t)
                {
                    round_best = Some((eval.time_s, point));
                }
            }

            let improved = match (&round_best, &overall_best) {
                (Some((rt, _)), Some((bt, _))) => rt < bt,
                (Some(_), None) => true,
                _ => false,
            };
            if let Some((rt, rp)) = &round_best {
                if overall_best.as_ref().is_none_or(|(bt, _)| rt < bt) {
                    overall_best = Some((*rt, rp.clone()));
                }
            }

            if remaining == 0 {
                break;
            }

            if let (true, Some((_, best_point))) = (improved, round_best) {
                // Bound: shrink to ± one stratum around the round's best.
                let new_bounds: Vec<(f64, f64)> = best_point
                    .iter()
                    .zip(&bounds)
                    .map(|(&c, &(lo, hi))| {
                        let w = (hi - lo) / round_size.max(1) as f64;
                        ((c - w).max(0.0), (c + w).min(1.0))
                    })
                    .collect();
                bounds = new_bounds;
            } else {
                // Diverge: restart from the whole space.
                bounds = vec![(0.0, 1.0); dim];
            }
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use robotune_space::spark::spark_space;
    use robotune_space::Configuration;
    use robotune_stats::rng_from_seed;

    fn sphere_objective() -> impl FnMut(&Configuration) -> f64 {
        let space = spark_space();
        move |c: &Configuration| {
            // Distance of the first few encoded coordinates from an
            // arbitrary optimum; scaled to stay well under the 480 s cap.
            let p = robotune_space::SearchSpace::encode(&space, c);
            50.0 + 100.0 * p.iter().take(4).map(|&v| (v - 0.37).powi(2)).sum::<f64>()
        }
    }

    #[test]
    fn budget_is_respected_exactly() {
        let space = spark_space();
        let mut obj = FnObjective::new(sphere_objective());
        let mut rng = rng_from_seed(1);
        for budget in [1usize, 50, 100, 137, 250] {
            let s = BestConfig::default().tune(&space, &mut obj, budget, &mut rng);
            assert_eq!(s.len(), budget, "budget {budget}");
        }
    }

    #[test]
    fn single_round_with_default_settings_and_100_budget() {
        // 100-sample rounds + 100 budget ⇒ one DDS round, all caps static.
        let space = spark_space();
        let mut obj = FnObjective::new(sphere_objective());
        let mut rng = rng_from_seed(2);
        let s = BestConfig::default().tune(&space, &mut obj, 100, &mut rng);
        assert!(s.records.iter().all(|r| r.cap_s == 480.0));
    }

    #[test]
    fn multi_round_bounds_improve_the_best() {
        // Small rounds on a smooth objective: RBS should refine.
        let space = spark_space();
        let mut obj = FnObjective::new(sphere_objective());
        let mut rng = rng_from_seed(3);
        let mut tuner = BestConfig::new(20, 480.0);
        let s = tuner.tune(&space, &mut obj, 100, &mut rng);
        let first_round_best = s.records[..20]
            .iter()
            .filter(|r| r.eval.completed)
            .map(|r| r.eval.time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            s.best_time().unwrap() <= first_round_best,
            "RBS must not lose the round-one incumbent"
        );
    }

    #[test]
    fn later_rounds_use_adaptive_caps() {
        let space = spark_space();
        let mut obj = FnObjective::new(sphere_objective());
        let mut rng = rng_from_seed(4);
        let mut tuner = BestConfig::new(10, 480.0);
        let s = tuner.tune(&space, &mut obj, 30, &mut rng);
        // Round 2 onwards: cap = 4 × best-so-far < 480 for this objective.
        assert!(s.records[10..].iter().all(|r| r.cap_s < 480.0));
    }
}
