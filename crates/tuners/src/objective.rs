//! The objective-function abstraction.

use robotune_space::Configuration;

use crate::fidelity::Fidelity;

/// Outcome of evaluating one configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Evaluation {
    /// Wall-clock seconds actually spent on the run. For capped or failed
    /// runs this is the time burned before the stop, which is what search
    /// cost must account (§5.3).
    pub time_s: f64,
    /// Whether the run finished within the cap.
    pub completed: bool,
    /// Whether the run died of its own accord (OOM, submit failure, …)
    /// rather than hitting the cap.
    pub failed: bool,
    /// Whether the failure looks transient (submit/launch hiccup, flaky
    /// measurement) and is worth retrying, as opposed to a deterministic
    /// crash like an OOM from an oversized executor heap.
    pub transient: bool,
    /// How many attempts this evaluation consumed (≥ 1). Retried runs
    /// charge every attempt's burned time to `time_s`.
    pub attempts: u32,
}

impl Evaluation {
    /// A run that completed in `time_s`.
    pub fn completed(time_s: f64) -> Self {
        Evaluation {
            time_s,
            completed: true,
            failed: false,
            transient: false,
            attempts: 1,
        }
    }

    /// A run stopped by the threshold after `time_s`.
    pub fn capped(time_s: f64) -> Self {
        Evaluation {
            time_s,
            completed: false,
            failed: false,
            transient: false,
            attempts: 1,
        }
    }

    /// A run that crashed after `time_s` for a deterministic reason (OOM,
    /// invalid configuration): retrying the same point will crash again.
    pub fn failed(time_s: f64) -> Self {
        Evaluation {
            time_s,
            completed: false,
            failed: true,
            transient: false,
            attempts: 1,
        }
    }

    /// A run that failed after `time_s` for a *transient* reason (submit
    /// rejection, launch hiccup, lost measurement): a retry may succeed.
    pub fn transient_failure(time_s: f64) -> Self {
        Evaluation {
            time_s,
            completed: false,
            failed: true,
            transient: true,
            attempts: 1,
        }
    }

    /// The value a minimising tuner should ingest: the measured time for a
    /// completed run, and a penalty (the spent time, floored at the cap)
    /// for anything else, so surrogate models learn to avoid the region.
    pub fn objective_value(&self, cap_s: f64) -> f64 {
        if self.completed {
            self.time_s
        } else {
            self.time_s.max(cap_s)
        }
    }
}

/// Something that can run a configuration and measure it — a real cluster
/// in the paper, the Spark simulator here, or a closure in tests.
pub trait Objective {
    /// Evaluates `config`, stopping the run once `cap_s` seconds have been
    /// consumed (the "guard against bad configurations" of §4).
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation;

    /// Switches subsequent evaluations to run on a `fidelity` fraction of
    /// the target dataset. Returns `false` (the default) if this objective
    /// has no fidelity axis — multi-fidelity tuners must then fall back to
    /// full-fidelity evaluation rather than assume the switch took effect.
    fn set_fidelity(&mut self, fidelity: Fidelity) -> bool {
        let _ = fidelity;
        false
    }

    /// The fidelity subsequent evaluations will run at. Objectives without
    /// a fidelity axis always report [`Fidelity::FULL`].
    fn fidelity(&self) -> Fidelity {
        Fidelity::FULL
    }
}

/// Adapter turning a plain `FnMut(&Configuration) -> f64` (an idealised,
/// noise-free runtime function) into an [`Objective`] with cap semantics.
pub struct FnObjective<F: FnMut(&Configuration) -> f64> {
    f: F,
}

impl<F: FnMut(&Configuration) -> f64> FnObjective<F> {
    /// Wraps the closure.
    pub fn new(f: F) -> Self {
        FnObjective { f }
    }
}

impl<F: FnMut(&Configuration) -> f64> Objective for FnObjective<F> {
    fn evaluate(&mut self, config: &Configuration, cap_s: f64) -> Evaluation {
        let t = (self.f)(config);
        debug_assert!(t >= 0.0, "negative runtime from objective closure");
        if t <= cap_s {
            Evaluation::completed(t)
        } else {
            Evaluation::capped(cap_s)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::{ParamDef, ParamKind, ParamValue, Unit};

    fn one_param_config(v: i64) -> Configuration {
        let _ = ParamDef::new(
            "p",
            ParamKind::Int { min: 0, max: 100, log: false },
            ParamValue::Int(0),
            Unit::Count,
        );
        Configuration::new(vec![ParamValue::Int(v)])
    }

    #[test]
    fn fn_objective_caps() {
        let mut obj = FnObjective::new(|c: &Configuration| c.get(0).as_int() as f64);
        let fast = obj.evaluate(&one_param_config(10), 50.0);
        assert!(fast.completed && fast.time_s == 10.0);
        let slow = obj.evaluate(&one_param_config(99), 50.0);
        assert!(!slow.completed && !slow.failed);
        assert_eq!(slow.time_s, 50.0);
    }

    #[test]
    fn objective_value_penalises_incomplete_runs() {
        assert_eq!(Evaluation::completed(30.0).objective_value(480.0), 30.0);
        assert_eq!(Evaluation::capped(480.0).objective_value(480.0), 480.0);
        // A fast crash is still penalised at the cap so the model avoids it.
        assert_eq!(Evaluation::failed(5.0).objective_value(480.0), 480.0);
    }

    #[test]
    fn constructors_set_flags() {
        assert!(Evaluation::completed(1.0).completed);
        assert!(Evaluation::failed(1.0).failed);
        let capped = Evaluation::capped(1.0);
        assert!(!capped.completed && !capped.failed);
    }
}
