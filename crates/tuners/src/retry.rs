//! Retry-with-backoff for transiently failing evaluations.
//!
//! On a real cluster a configuration run can die for reasons that have
//! nothing to do with the configuration: the submit gateway times out, an
//! executor fails to launch, the measurement harness loses the timing.
//! Treating those as ordinary failures both wastes an observation and
//! teaches the surrogate that a perfectly good region is bad. The retry
//! policy re-runs *transient* failures a bounded number of times, charging
//! every attempt's burned time — plus the exponential backoff a real
//! resubmission loop would sleep through — to the evaluation's search
//! cost, so resilience never makes a tuner look cheaper than it is.
//!
//! Deterministic failures (OOM from an oversized heap, invalid configs)
//! are never retried: the same point would die the same way.

use robotune_space::Configuration;

use crate::objective::{Evaluation, Objective};

/// Bounded retry-with-exponential-backoff for transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per evaluation, including the first (≥ 1).
    pub max_attempts: u32,
    /// Simulated sleep before the first retry, in seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied to the backoff after each failed retry.
    pub backoff_multiplier: f64,
}

impl RetryPolicy {
    /// No retries at all: every failure is final. This reproduces the
    /// pre-resilience behaviour exactly.
    pub const NONE: RetryPolicy = RetryPolicy {
        max_attempts: 1,
        backoff_base_s: 0.0,
        backoff_multiplier: 1.0,
    };

    /// The simulated sleep before retry number `retry` (1-based), in
    /// seconds: `base · multiplier^(retry − 1)`.
    pub fn backoff_s(&self, retry: u32) -> f64 {
        if retry == 0 {
            return 0.0;
        }
        self.backoff_base_s * self.backoff_multiplier.powi(retry as i32 - 1)
    }
}

impl Default for RetryPolicy {
    /// Three attempts with a 5 s → 10 s backoff, mirroring common Spark
    /// submit-retry settings.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff_base_s: 5.0,
            backoff_multiplier: 2.0,
        }
    }
}

/// Evaluates `config`, retrying transient failures under `policy`.
///
/// The returned [`Evaluation`] is a single budget-charged record: its
/// `time_s` includes every attempt's burned time plus all backoff sleeps,
/// and `attempts` counts how many runs it took. Deterministic failures,
/// capped runs and completions are returned as-is (plus any earlier burned
/// time) — only `failed && transient` outcomes trigger another attempt.
pub fn evaluate_with_retry(
    objective: &mut dyn Objective,
    config: &Configuration,
    cap_s: f64,
    policy: &RetryPolicy,
) -> Evaluation {
    let max_attempts = policy.max_attempts.max(1);
    let mut burned_s = 0.0;
    let mut attempt = 1u32;
    loop {
        let eval = objective.evaluate(config, cap_s);
        if !(eval.failed && eval.transient) || attempt >= max_attempts {
            if attempt > 1 {
                robotune_obs::incr("retry.evals_retried", 1);
                if eval.completed {
                    robotune_obs::incr("retry.recovered", 1);
                } else {
                    robotune_obs::incr("retry.exhausted", 1);
                }
            }
            return Evaluation {
                time_s: eval.time_s + burned_s,
                attempts: attempt,
                ..eval
            };
        }
        let backoff = policy.backoff_s(attempt);
        robotune_obs::incr("retry.attempt", 1);
        robotune_obs::record("retry.backoff_s", backoff);
        burned_s += eval.time_s + backoff;
        attempt += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::ParamValue;

    fn cfg() -> Configuration {
        Configuration::new(vec![ParamValue::Int(1)])
    }

    /// Fails transiently `fail_first` times, then completes in `time_s`.
    struct FlakyObjective {
        fail_first: u32,
        calls: u32,
        time_s: f64,
    }

    impl Objective for FlakyObjective {
        fn evaluate(&mut self, _config: &Configuration, _cap_s: f64) -> Evaluation {
            self.calls += 1;
            if self.calls <= self.fail_first {
                Evaluation::transient_failure(3.0)
            } else {
                Evaluation::completed(self.time_s)
            }
        }
    }

    #[test]
    fn transient_failures_recover_and_charge_the_budget() {
        let mut obj = FlakyObjective { fail_first: 2, calls: 0, time_s: 40.0 };
        let e = evaluate_with_retry(&mut obj, &cfg(), 480.0, &RetryPolicy::default());
        assert!(e.completed);
        assert_eq!(e.attempts, 3);
        // 2 failed attempts × 3 s + backoffs 5 s and 10 s + final 40 s run.
        assert!((e.time_s - (3.0 + 5.0 + 3.0 + 10.0 + 40.0)).abs() < 1e-9, "{}", e.time_s);
    }

    #[test]
    fn retries_are_bounded() {
        let mut obj = FlakyObjective { fail_first: 99, calls: 0, time_s: 40.0 };
        let e = evaluate_with_retry(&mut obj, &cfg(), 480.0, &RetryPolicy::default());
        assert!(e.failed && e.transient && !e.completed);
        assert_eq!(e.attempts, 3);
        assert_eq!(obj.calls, 3);
        // All three burns plus two backoffs are accounted.
        assert!((e.time_s - (3.0 * 3.0 + 5.0 + 10.0)).abs() < 1e-9, "{}", e.time_s);
    }

    #[test]
    fn deterministic_failures_are_never_retried() {
        struct AlwaysOom;
        impl Objective for AlwaysOom {
            fn evaluate(&mut self, _c: &Configuration, _cap: f64) -> Evaluation {
                Evaluation::failed(7.0)
            }
        }
        let e = evaluate_with_retry(&mut AlwaysOom, &cfg(), 480.0, &RetryPolicy::default());
        assert_eq!(e.attempts, 1);
        assert_eq!(e.time_s, 7.0);
    }

    #[test]
    fn none_policy_reproduces_single_attempt_semantics() {
        let mut obj = FlakyObjective { fail_first: 1, calls: 0, time_s: 40.0 };
        let e = evaluate_with_retry(&mut obj, &cfg(), 480.0, &RetryPolicy::NONE);
        assert!(e.failed && e.transient);
        assert_eq!(e.attempts, 1);
        assert_eq!(e.time_s, 3.0);
    }

    #[test]
    fn zero_max_attempts_is_treated_as_one() {
        let mut obj = FlakyObjective { fail_first: 0, calls: 0, time_s: 12.0 };
        let p = RetryPolicy { max_attempts: 0, ..RetryPolicy::default() };
        let e = evaluate_with_retry(&mut obj, &cfg(), 480.0, &p);
        assert!(e.completed);
        assert_eq!(e.attempts, 1);
    }

    #[test]
    fn backoff_schedule_is_exponential() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_s(1), 5.0);
        assert_eq!(p.backoff_s(2), 10.0);
        assert_eq!(p.backoff_s(3), 20.0);
        assert_eq!(p.backoff_s(0), 0.0);
    }
}
