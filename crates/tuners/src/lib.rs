//! Tuner abstractions and the paper's baseline tuners.
//!
//! Everything a configuration tuner needs, independent of the system being
//! tuned:
//!
//! * [`objective`] — the [`objective::Objective`] trait: evaluate a
//!   [`robotune_space::Configuration`] under a time cap and report what
//!   happened (the Spark simulator implements it; so can closures in
//!   tests);
//! * [`fidelity`] — [`fidelity::Fidelity`]: the fraction of the target
//!   dataset an evaluation processes, the axis multi-fidelity tuners
//!   (crates/mf) schedule over; single-fidelity tuners always run at
//!   [`fidelity::Fidelity::FULL`];
//! * [`session`] — [`session::TuningSession`]: the complete evaluation
//!   trace of one tuning run, with the derived metrics every experiment in
//!   the paper reports (best configuration, search cost, best-so-far
//!   curves, iterations-to-within-x%);
//! * [`threshold`] — the stop-threshold policies of §5.1 (static cap for
//!   Gunther/RS; median-multiple for ROBOTune; BestConfig's runtime-
//!   modified variant);
//! * [`tuner`] — the [`tuner::Tuner`] trait binding it together;
//! * [`random`] — Random Search (Bergstra & Bengio 2012);
//! * [`bestconfig`] — BestConfig's divide-&-diverge sampling + recursive
//!   bound-and-search (Zhu et al., SoCC '17);
//! * [`gunther`] — Gunther's genetic algorithm with aggressive selection
//!   and mutation (Liao et al., Euro-Par '13);
//! * [`pattern`] — a Hooke–Jeeves pattern-search tuner (an extension; the
//!   paper cites pattern search but does not evaluate it).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod bestconfig;
pub mod fidelity;
pub mod gunther;
pub mod objective;
pub mod pattern;
pub mod random;
pub mod retry;
pub mod session;
pub mod threshold;
pub mod tuner;

pub use bestconfig::BestConfig;
pub use fidelity::{Fidelity, FidelityError};
pub use gunther::Gunther;
pub use objective::{Evaluation, FnObjective, Objective};
pub use pattern::PatternSearch;
pub use random::RandomSearch;
pub use retry::{evaluate_with_retry, RetryPolicy};
pub use session::{EvalRecord, TuningSession};
pub use threshold::ThresholdPolicy;
pub use tuner::Tuner;
