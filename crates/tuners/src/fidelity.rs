//! The fidelity axis: what fraction of the target dataset an evaluation
//! actually processes.
//!
//! Multi-fidelity tuners (MFTune-style successive halving, Hyperband)
//! probe most configurations on a small subsample of the real input and
//! promote only survivors to larger fractions. [`Fidelity`] is that
//! fraction, validated once at construction so the rest of the stack can
//! trust it: finite, `> 0`, `≤ 1`. There is no clamping anywhere — an
//! out-of-range fraction is an error at the call site, never a silent
//! full-fidelity run.

/// A fraction of the target dataset, in `(0, 1]`.
///
/// `Fidelity::FULL` (fraction 1.0) is the implicit fidelity of every
/// single-fidelity evaluation; the ordinary tuners never see anything
/// else. Ordering and equality are plain `f64` comparisons on the
/// fraction, which is safe because construction rejects NaN.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Fidelity(f64);

/// Why a fraction was rejected by [`Fidelity::new`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityError {
    /// NaN or infinite.
    NotFinite,
    /// `≤ 0`: an evaluation must process *some* data.
    NotPositive,
    /// `> 1`: fidelity is a subsample, never an upsample.
    AboveFull,
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FidelityError::NotFinite => write!(f, "fidelity fraction must be finite"),
            FidelityError::NotPositive => write!(f, "fidelity fraction must be > 0"),
            FidelityError::AboveFull => write!(f, "fidelity fraction must be <= 1"),
        }
    }
}

impl std::error::Error for FidelityError {}

impl Fidelity {
    /// The full target dataset: the fidelity of every ordinary evaluation.
    pub const FULL: Fidelity = Fidelity(1.0);

    /// Validates `fraction` into a fidelity. Rejects (rather than clamps)
    /// anything outside `(0, 1]`.
    pub fn new(fraction: f64) -> Result<Fidelity, FidelityError> {
        if !fraction.is_finite() {
            Err(FidelityError::NotFinite)
        } else if fraction <= 0.0 {
            Err(FidelityError::NotPositive)
        } else if fraction > 1.0 {
            Err(FidelityError::AboveFull)
        } else {
            Ok(Fidelity(fraction))
        }
    }

    /// The validated fraction in `(0, 1]`.
    pub fn fraction(self) -> f64 {
        self.0
    }

    /// Whether this is the full dataset.
    pub fn is_full(self) -> bool {
        self.0 == 1.0
    }

    /// A short human label: `full`, or the fraction as `1/16`-style text
    /// when it is (close to) a unit fraction, else the decimal. Used as a
    /// metric-name suffix (`mf.budget_spent.<label>`), so it avoids
    /// characters the Prometheus sanitiser would mangle ambiguously.
    pub fn label(self) -> String {
        if self.is_full() {
            return "full".to_owned();
        }
        let inv = 1.0 / self.0;
        let rounded = inv.round();
        if rounded >= 2.0 && (inv - rounded).abs() < 1e-9 {
            format!("1_{}", rounded as u64)
        } else {
            format!("{:.4}", self.0)
        }
    }

    /// Total order on fidelities (fraction order); safe because NaN cannot
    /// be constructed.
    pub fn total_cmp(&self, other: &Fidelity) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl std::fmt::Display for Fidelity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_full() {
            write!(f, "full")
        } else {
            let inv = 1.0 / self.0;
            let rounded = inv.round();
            if rounded >= 2.0 && (inv - rounded).abs() < 1e-9 {
                write!(f, "1/{}", rounded as u64)
            } else {
                write!(f, "{:.4}", self.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validates_range() {
        assert!(Fidelity::new(1.0).is_ok());
        assert!(Fidelity::new(1.0 / 16.0).is_ok());
        assert_eq!(Fidelity::new(0.0), Err(FidelityError::NotPositive));
        assert_eq!(Fidelity::new(-0.5), Err(FidelityError::NotPositive));
        assert_eq!(Fidelity::new(1.5), Err(FidelityError::AboveFull));
        assert_eq!(Fidelity::new(f64::NAN), Err(FidelityError::NotFinite));
        assert_eq!(Fidelity::new(f64::INFINITY), Err(FidelityError::NotFinite));
    }

    #[test]
    fn full_is_full() {
        assert!(Fidelity::FULL.is_full());
        assert_eq!(Fidelity::FULL.fraction(), 1.0);
        assert!(!Fidelity::new(0.5).unwrap().is_full());
    }

    #[test]
    fn labels_are_metric_safe() {
        assert_eq!(Fidelity::FULL.label(), "full");
        assert_eq!(Fidelity::new(0.0625).unwrap().label(), "1_16");
        assert_eq!(Fidelity::new(0.25).unwrap().label(), "1_4");
        assert_eq!(Fidelity::new(0.5).unwrap().label(), "1_2");
        assert_eq!(Fidelity::new(0.3).unwrap().label(), "0.3000");
    }

    #[test]
    fn display_is_human() {
        assert_eq!(Fidelity::FULL.to_string(), "full");
        assert_eq!(Fidelity::new(0.0625).unwrap().to_string(), "1/16");
        assert_eq!(Fidelity::new(0.3).unwrap().to_string(), "0.3000");
    }

    #[test]
    fn ordering_follows_fraction() {
        let lo = Fidelity::new(0.25).unwrap();
        let hi = Fidelity::new(0.5).unwrap();
        assert!(lo < hi);
        assert_eq!(lo.total_cmp(&hi), std::cmp::Ordering::Less);
        assert_eq!(hi.total_cmp(&Fidelity::FULL), std::cmp::Ordering::Less);
    }
}
