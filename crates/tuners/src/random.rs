//! Random Search (Bergstra & Bengio 2012).
//!
//! Samples the space uniformly at random — surprisingly competitive in
//! high dimensions (§5.1) and the yardstick every figure in the paper is
//! scaled against. Augmented, per §5.1, with a static stop threshold.

use rand::rngs::StdRng;
use robotune_sampling::uniform;
use robotune_space::SearchSpace;

use crate::objective::Objective;
use crate::session::TuningSession;
use crate::retry::RetryPolicy;
use crate::threshold::ThresholdPolicy;
use crate::tuner::{evaluate_point, Tuner};

/// The Random Search baseline.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    threshold: ThresholdPolicy,
    /// Retry policy for transient evaluation failures.
    pub retry: RetryPolicy,
}

impl RandomSearch {
    /// Creates the tuner with the given stop threshold (the paper's
    /// augmentation uses a static 480 s cap).
    pub fn new(threshold: ThresholdPolicy) -> Self {
        RandomSearch {
            threshold,
            retry: RetryPolicy::default(),
        }
    }
}

impl Default for RandomSearch {
    fn default() -> Self {
        RandomSearch::new(ThresholdPolicy::Static(480.0))
    }
}

impl Tuner for RandomSearch {
    fn name(&self) -> &str {
        "RandomSearch"
    }

    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession {
        let mut session = TuningSession::new(self.name());
        let cap = self.threshold.max_cap();
        for point in uniform(budget, space.dim(), rng) {
            evaluate_point(&mut session, space, objective, point, cap, &self.retry);
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use robotune_space::spark::spark_space;
    use robotune_space::Configuration;
    use robotune_stats::rng_from_seed;

    #[test]
    fn consumes_exactly_the_budget() {
        let space = spark_space();
        let mut obj = FnObjective::new(|_: &Configuration| 10.0);
        let mut rng = rng_from_seed(1);
        let session = RandomSearch::default().tune(&space, &mut obj, 25, &mut rng);
        assert_eq!(session.len(), 25);
        assert_eq!(session.best_time(), Some(10.0));
        assert_eq!(session.tuner, "RandomSearch");
    }

    #[test]
    fn caps_slow_configurations() {
        let space = spark_space();
        let mut obj = FnObjective::new(|_: &Configuration| 10_000.0);
        let mut rng = rng_from_seed(2);
        let session = RandomSearch::default().tune(&space, &mut obj, 5, &mut rng);
        assert!(session.best_time().is_none(), "nothing should complete");
        assert!((session.search_cost() - 5.0 * 480.0).abs() < 1e-9);
    }

    #[test]
    fn deterministic_under_seed() {
        let space = spark_space();
        let run = |seed| {
            let mut obj =
                FnObjective::new(|c: &Configuration| c.to_features().iter().sum::<f64>());
            let mut rng = rng_from_seed(seed);
            RandomSearch::default()
                .tune(&space, &mut obj, 10, &mut rng)
                .best_time()
        };
        assert_eq!(run(3), run(3));
    }
}
