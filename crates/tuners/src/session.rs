//! Tuning-session traces and the metrics the evaluation derives from them.

use robotune_space::Configuration;

use crate::fidelity::Fidelity;
use crate::objective::Evaluation;

/// One evaluated configuration inside a session.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// Zero-based evaluation index (the paper's "iteration").
    pub index: usize,
    /// Unit-cube point the tuner proposed (dimension of the tuner's
    /// search space, which may be a subspace of the full one).
    pub point: Vec<f64>,
    /// The decoded full configuration that was run.
    pub config: Configuration,
    /// What happened.
    pub eval: Evaluation,
    /// The cap that was in force for this run.
    pub cap_s: f64,
    /// The dataset fraction the run processed. [`Fidelity::FULL`] for
    /// every single-fidelity tuner; multi-fidelity schedules tag each
    /// record so derived metrics can tell a 1/16-sample probe from a
    /// real measurement.
    pub fidelity: Fidelity,
}

/// The complete trace of one tuning run.
#[derive(Debug, Clone)]
pub struct TuningSession {
    /// Which tuner produced it.
    pub tuner: String,
    /// Every evaluation, in order.
    pub records: Vec<EvalRecord>,
}

impl TuningSession {
    /// Creates an empty session for `tuner`.
    pub fn new(tuner: impl Into<String>) -> Self {
        TuningSession {
            tuner: tuner.into(),
            records: Vec::new(),
        }
    }

    /// Appends a full-fidelity evaluation.
    pub fn push(&mut self, point: Vec<f64>, config: Configuration, eval: Evaluation, cap_s: f64) {
        self.push_at(point, config, eval, cap_s, Fidelity::FULL);
    }

    /// Appends an evaluation that ran at `fidelity`. Partial-fidelity
    /// completions never count as session improvements (their times are
    /// not comparable with full-dataset runs), but their burned time is
    /// charged like everything else.
    pub fn push_at(
        &mut self,
        point: Vec<f64>,
        config: Configuration,
        eval: Evaluation,
        cap_s: f64,
        fidelity: Fidelity,
    ) {
        if eval.failed {
            robotune_obs::incr("eval.failed", 1);
        } else if !eval.completed {
            // Capped = killed by the threshold policy before completing.
            robotune_obs::incr("threshold.kill", 1);
        } else if fidelity.is_full() {
            let prior_best = self.best_time();
            if prior_best.is_none_or(|b| eval.time_s < b) {
                robotune_obs::incr("session.improvement", 1);
            }
        }
        robotune_obs::record("eval.time_s", eval.time_s);
        self.records.push(EvalRecord {
            index: self.records.len(),
            point,
            config,
            eval,
            cap_s,
            fidelity,
        });
    }

    /// Number of evaluations consumed.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the session is empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The best (fastest **completed**) evaluation, if any run completed.
    ///
    /// Only runs that completed with a finite measured time *at full
    /// fidelity* are eligible: a run killed by the threshold policy,
    /// crashed by a fault, or executed on a fractional subsample can
    /// never be reported as the incumbent, whatever its recorded time.
    pub fn best(&self) -> Option<&EvalRecord> {
        self.records
            .iter()
            .filter(|r| {
                r.eval.completed
                    && !r.eval.failed
                    && r.eval.time_s.is_finite()
                    && r.fidelity.is_full()
            })
            .min_by(|a, b| a.eval.time_s.total_cmp(&b.eval.time_s))
    }

    /// Execution time of the best completed configuration.
    pub fn best_time(&self) -> Option<f64> {
        self.best().map(|r| r.eval.time_s)
    }

    /// Total search cost: the wall-clock seconds spent generating and
    /// evaluating configurations (§5.3's definition). Capped and failed
    /// runs contribute the time they actually burned.
    pub fn search_cost(&self) -> f64 {
        self.records.iter().map(|r| r.eval.time_s).sum()
    }

    /// All observed per-evaluation times (for the Fig. 5 distributions).
    pub fn times(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.eval.time_s).collect()
    }

    /// Best *completed, full-fidelity* time seen up to and including each
    /// iteration (`f64::INFINITY` until the first such completion) —
    /// Fig. 6's curves. Subsampled probes burn budget without ever moving
    /// the curve: only full-dataset measurements count as results.
    pub fn best_so_far(&self) -> Vec<f64> {
        let mut best = f64::INFINITY;
        self.records
            .iter()
            .map(|r| {
                if r.eval.completed && r.fidelity.is_full() {
                    best = best.min(r.eval.time_s);
                }
                best
            })
            .collect()
    }

    /// Number of iterations (1-based) needed to reach within `frac`
    /// (e.g. 0.05 for 5%) of the session's own best achieved time —
    /// Table 2's metric. `None` if nothing completed.
    pub fn iterations_to_within(&self, frac: f64) -> Option<usize> {
        let best = self.best_time()?;
        let target = best * (1.0 + frac);
        self.best_so_far()
            .iter()
            .position(|&t| t <= target)
            .map(|i| i + 1)
    }

    /// Search cost broken down by fidelity level, sorted from the smallest
    /// fraction to full. Single-fidelity sessions report one `(FULL, …)`
    /// entry; multi-fidelity schedules use this (and the mirrored
    /// `mf.budget_spent.<fidelity>` metric) to show where the budget went.
    pub fn cost_by_fidelity(&self) -> Vec<(Fidelity, f64)> {
        let mut groups: Vec<(Fidelity, f64)> = Vec::new();
        for r in &self.records {
            match groups.iter_mut().find(|(f, _)| *f == r.fidelity) {
                Some((_, cost)) => *cost += r.eval.time_s,
                None => groups.push((r.fidelity, r.eval.time_s)),
            }
        }
        groups.sort_by(|a, b| a.0.total_cmp(&b.0));
        groups
    }

    /// Cumulative search cost (seconds, *all* fidelities) spent up to and
    /// including the first full-fidelity completed run within `frac` of
    /// `target_s` — the evaluation-cost-to-target metric of the
    /// multi-fidelity comparison. `None` if the session never got there.
    pub fn cost_to_within_of(&self, target_s: f64, frac: f64) -> Option<f64> {
        let threshold = target_s * (1.0 + frac);
        let mut spent = 0.0;
        for r in &self.records {
            spent += r.eval.time_s;
            if r.eval.completed && !r.eval.failed && r.fidelity.is_full() && r.eval.time_s <= threshold
            {
                return Some(spent);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use robotune_space::ParamValue;

    fn cfg() -> Configuration {
        Configuration::new(vec![ParamValue::Int(1)])
    }

    fn session_with(times: &[(f64, bool)]) -> TuningSession {
        let mut s = TuningSession::new("test");
        for &(t, ok) in times {
            let e = if ok {
                Evaluation::completed(t)
            } else {
                Evaluation::capped(t)
            };
            s.push(vec![0.5], cfg(), e, 480.0);
        }
        s
    }

    #[test]
    fn best_ignores_incomplete_runs() {
        let s = session_with(&[(100.0, true), (10.0, false), (50.0, true)]);
        assert_eq!(s.best_time(), Some(50.0));
        assert_eq!(s.best().unwrap().index, 2);
    }

    #[test]
    fn search_cost_counts_everything() {
        let s = session_with(&[(100.0, true), (480.0, false), (50.0, true)]);
        assert!((s.search_cost() - 630.0).abs() < 1e-12);
    }

    #[test]
    fn best_so_far_is_monotone() {
        let s = session_with(&[(100.0, true), (200.0, true), (40.0, true), (90.0, true)]);
        assert_eq!(s.best_so_far(), vec![100.0, 100.0, 40.0, 40.0]);
    }

    #[test]
    fn best_so_far_before_first_completion_is_infinite() {
        let s = session_with(&[(480.0, false), (30.0, true)]);
        let curve = s.best_so_far();
        assert!(curve[0].is_infinite());
        assert_eq!(curve[1], 30.0);
    }

    #[test]
    fn iterations_to_within() {
        // Best = 40 at iteration 3; within 10% means ≤ 44.
        let s = session_with(&[(100.0, true), (44.0, true), (40.0, true)]);
        assert_eq!(s.iterations_to_within(0.10), Some(2));
        assert_eq!(s.iterations_to_within(0.0), Some(3));
        assert_eq!(s.iterations_to_within(2.0), Some(1));
    }

    #[test]
    fn empty_session_metrics() {
        let s = TuningSession::new("empty");
        assert!(s.is_empty());
        assert!(s.best().is_none());
        assert_eq!(s.search_cost(), 0.0);
        assert!(s.iterations_to_within(0.05).is_none());
    }

    #[test]
    fn all_failed_session_has_no_best() {
        let s = session_with(&[(480.0, false), (480.0, false)]);
        assert!(s.best_time().is_none());
        assert!((s.search_cost() - 960.0).abs() < 1e-12);
    }

    #[test]
    fn partial_fidelity_runs_never_become_the_incumbent() {
        let mut s = TuningSession::new("mf");
        let quarter = Fidelity::new(0.25).unwrap();
        // A 1/4-sample run is much faster than any full run — it must not win.
        s.push_at(vec![0.1], cfg(), Evaluation::completed(9.0), 480.0, quarter);
        s.push(vec![0.2], cfg(), Evaluation::completed(80.0), 480.0);
        assert_eq!(s.best_time(), Some(80.0));
        assert_eq!(s.best().unwrap().index, 1);
        // …but its cost is still charged.
        assert!((s.search_cost() - 89.0).abs() < 1e-12);
        // And the best-so-far curve ignores it too.
        assert!(s.best_so_far()[0].is_infinite());
        assert_eq!(s.best_so_far()[1], 80.0);
    }

    #[test]
    fn cost_by_fidelity_groups_and_sorts() {
        let mut s = TuningSession::new("mf");
        let lo = Fidelity::new(0.25).unwrap();
        s.push(vec![0.2], cfg(), Evaluation::completed(100.0), 480.0);
        s.push_at(vec![0.1], cfg(), Evaluation::completed(10.0), 480.0, lo);
        s.push_at(vec![0.3], cfg(), Evaluation::capped(5.0), 480.0, lo);
        let by_fid = s.cost_by_fidelity();
        assert_eq!(by_fid.len(), 2);
        assert_eq!(by_fid[0].0, lo);
        assert!((by_fid[0].1 - 15.0).abs() < 1e-12);
        assert_eq!(by_fid[1].0, Fidelity::FULL);
        assert!((by_fid[1].1 - 100.0).abs() < 1e-12);
        let total: f64 = by_fid.iter().map(|(_, c)| c).sum();
        assert!((total - s.search_cost()).abs() < 1e-12);
    }

    #[test]
    fn cost_to_within_counts_all_burned_time() {
        let mut s = TuningSession::new("mf");
        let lo = Fidelity::new(0.25).unwrap();
        s.push_at(vec![0.1], cfg(), Evaluation::completed(10.0), 480.0, lo);
        s.push(vec![0.2], cfg(), Evaluation::completed(200.0), 480.0);
        s.push(vec![0.3], cfg(), Evaluation::completed(100.0), 480.0);
        // Target 100 ± 5%: the low-fidelity probe at 10 s does not qualify
        // (not full fidelity), the 200 s run is above threshold; the 100 s
        // run hits it with 310 s cumulative spend.
        assert_eq!(s.cost_to_within_of(100.0, 0.05), Some(310.0));
        // Unreachable target.
        assert!(s.cost_to_within_of(10.0, 0.05).is_none());
    }
}
