//! Gunther (Liao, Datta & Willke, Euro-Par '13).
//!
//! A genetic algorithm with *aggressive* selection and mutation, built for
//! budget-constrained Hadoop tuning and re-targeted at Spark exactly as
//! the paper did (§5.1). Following the Gunther paper, the random initial
//! population grows by two individuals per tuned parameter — which on a
//! 44-parameter space consumes most of a 100-run budget, the behaviour
//! §5.2 calls out ("initial configurations … comprise a significant
//! portion of the allocated budget"). Augmented with the static stop
//! threshold of §5.1.

use rand::rngs::StdRng;
use rand::Rng;
use robotune_sampling::uniform;
use robotune_space::SearchSpace;

use crate::objective::Objective;
use crate::session::TuningSession;
use crate::threshold::ThresholdPolicy;
use crate::retry::RetryPolicy;
use crate::tuner::{evaluate_point, Tuner};

/// The Gunther baseline.
#[derive(Debug, Clone)]
pub struct Gunther {
    /// Initial population size; `None` → `2 × dim` (the Gunther rule).
    pub population: Option<usize>,
    /// Fraction of the population kept as parents (aggressive truncation).
    pub elite_fraction: f64,
    /// Per-gene mutation probability (aggressive mutation).
    pub mutation_rate: f64,
    /// Stop threshold (static, per §5.1).
    pub threshold: ThresholdPolicy,
    /// Retry policy for transient evaluation failures.
    pub retry: RetryPolicy,
}

impl Gunther {
    /// Creates the tuner with the paper-faithful defaults.
    pub fn new(threshold: ThresholdPolicy) -> Self {
        Gunther {
            population: None,
            elite_fraction: 0.25,
            mutation_rate: 0.2,
            threshold,
            retry: RetryPolicy::default(),
        }
    }
}

impl Default for Gunther {
    fn default() -> Self {
        Gunther::new(ThresholdPolicy::Static(480.0))
    }
}

impl Tuner for Gunther {
    fn name(&self) -> &str {
        "Gunther"
    }

    fn tune(
        &mut self,
        space: &dyn SearchSpace,
        objective: &mut dyn Objective,
        budget: usize,
        rng: &mut StdRng,
    ) -> TuningSession {
        let dim = space.dim();
        let mut session = TuningSession::new(self.name());
        let cap = self.threshold.max_cap();

        // (fitness, genome); lower fitness = better. Capped/failed runs
        // get the cap as fitness so selection weeds them out.
        let mut population: Vec<(f64, Vec<f64>)> = Vec::new();

        let init = self.population.unwrap_or(2 * dim).min(budget).max(1);
        for point in uniform(init, dim, rng) {
            let eval = evaluate_point(&mut session, space, objective, point.clone(), cap, &self.retry);
            population.push((eval.objective_value(cap), point));
        }

        let pop_cap = init;
        while session.len() < budget {
            population
                .sort_by(|a, b| a.0.total_cmp(&b.0));
            population.truncate(pop_cap);
            let elite = ((population.len() as f64 * self.elite_fraction).ceil() as usize)
                .clamp(1, population.len());

            // Uniform crossover of two elite parents + aggressive mutation.
            let pa = &population[rng.gen_range(0..elite)].1;
            let pb = &population[rng.gen_range(0..elite)].1;
            let mut child: Vec<f64> = pa
                .iter()
                .zip(pb)
                .map(|(&a, &b)| if rng.gen::<bool>() { a } else { b })
                .collect();
            for gene in &mut child {
                if rng.gen::<f64>() < self.mutation_rate {
                    *gene = rng.gen::<f64>();
                }
            }

            let eval = evaluate_point(&mut session, space, objective, child.clone(), cap, &self.retry);
            population.push((eval.objective_value(cap), child));
        }
        session
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::objective::FnObjective;
    use robotune_space::spark::spark_space;
    use robotune_space::Configuration;
    use robotune_stats::rng_from_seed;
    use std::sync::Arc;

    fn quadratic() -> impl FnMut(&Configuration) -> f64 {
        let space = spark_space();
        move |c: &Configuration| {
            let p = robotune_space::SearchSpace::encode(&space, c);
            20.0 + 300.0 * p.iter().take(6).map(|&v| (v - 0.6).powi(2)).sum::<f64>()
        }
    }

    #[test]
    fn initial_population_is_two_per_dimension() {
        let space = spark_space(); // 44 dims → 88 initial individuals
        let mut obj = FnObjective::new(quadratic());
        let mut rng = rng_from_seed(1);
        let s = Gunther::default().tune(&space, &mut obj, 100, &mut rng);
        assert_eq!(s.len(), 100);
        // The first 88 evaluations are the random init; detectable because
        // they were pushed before any child: just sanity-check count ≥ 88
        // via the documented rule.
        assert!(2 * space.dim() == 88);
    }

    #[test]
    fn init_clamps_to_small_budgets() {
        let space = spark_space();
        let mut obj = FnObjective::new(quadratic());
        let mut rng = rng_from_seed(2);
        let s = Gunther::default().tune(&space, &mut obj, 10, &mut rng);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn ga_improves_over_its_initial_population_on_low_dim() {
        // On a low-dimensional subspace the GA phase has budget to work.
        let space = Arc::new(spark_space());
        let sub = space.subspace(&[0, 1, 2, 3], space.default_configuration());
        let mut obj = FnObjective::new(quadratic());
        let mut rng = rng_from_seed(3);
        let s = Gunther::default().tune(&sub, &mut obj, 60, &mut rng);
        let init = 2 * sub.selected().len(); // 8
        let init_best = s.records[..init]
            .iter()
            .map(|r| r.eval.time_s)
            .fold(f64::INFINITY, f64::min);
        assert!(
            s.best_time().unwrap() <= init_best,
            "GA should not lose its initial best"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let space = spark_space();
        let run = |seed| {
            let mut obj = FnObjective::new(quadratic());
            let mut rng = rng_from_seed(seed);
            Gunther::default()
                .tune(&space, &mut obj, 30, &mut rng)
                .best_time()
        };
        assert_eq!(run(4), run(4));
    }
}
